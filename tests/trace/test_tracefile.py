"""Trace record/replay round trips."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.trace.profiles import get_profile
from repro.trace.synthetic import make_trace
from repro.trace.tracefile import (
    RecordedTrace,
    load_trace,
    record_trace,
    save_trace,
)


def small_trace(seed=3):
    return make_trace(get_profile("gcc").scaled(256), 20_000, seed=seed)


def materialize(trace):
    out = []
    for chunk in trace.chunks():
        out.extend(zip(chunk.gaps, chunk.addrs, chunk.writes))
    return out


class TestRecord:
    def test_record_preserves_stream(self):
        refs = materialize(small_trace())
        recorded = record_trace(small_trace())
        assert materialize(recorded) == refs

    def test_record_captures_source(self):
        recorded = record_trace(small_trace())
        assert recorded.source == "gcc"

    def test_len_and_expected_refs(self):
        recorded = record_trace(small_trace())
        assert len(recorded) == recorded.expected_refs > 0

    def test_chunk_instruction_accounting(self):
        recorded = record_trace(small_trace())
        total = sum(chunk.instructions for chunk in recorded.chunks())
        assert total >= 20_000

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordedTrace([1, 2], [64], [True, False], 10)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "gcc.npz"
        original = save_trace(path, small_trace())
        loaded = load_trace(path)
        assert np.array_equal(loaded.gaps, original.gaps)
        assert np.array_equal(loaded.addrs, original.addrs)
        assert np.array_equal(loaded.writes, original.writes)
        assert loaded.n_instructions == original.n_instructions
        assert loaded.source == "gcc"

    def test_loaded_trace_drives_simulation(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import Simulation

        path = tmp_path / "gcc.npz"
        save_trace(path, small_trace())
        config = SystemConfig().scaled(256)
        sim = Simulation(config, "picl", ["gcc"], 20_000)
        sim.traces[0] = load_trace(path)
        result = sim.run()
        assert result.instructions >= 20_000

    def test_replay_gives_identical_results(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import Simulation

        path = tmp_path / "t.npz"
        save_trace(path, small_trace(seed=9))

        def run_with(trace):
            config = SystemConfig().scaled(256)
            sim = Simulation(config, "picl", ["gcc"], 20_000, seed=9)
            sim.traces[0] = trace
            return sim.run()

        a = run_with(load_trace(path))
        b = run_with(load_trace(path))
        assert a.cycles == b.cycles
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            gaps=np.array([0]),
            addrs=np.array([0]),
            writes=np.array([True]),
            n_instructions=np.int64(1),
            source=np.str_(""),
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)
