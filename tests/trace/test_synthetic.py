"""Synthetic trace generation: determinism, budgets, locality structure."""

import dataclasses

import numpy as np
import pytest

from repro.common.address import LINE_SIZE, page_address
from repro.common.errors import ConfigurationError
from repro.trace.profiles import get_profile
from repro.trace.synthetic import SyntheticTrace, make_trace


def collect(trace):
    gaps, addrs, writes = [], [], []
    for chunk in trace.chunks():
        gaps.extend(chunk.gaps)
        addrs.extend(chunk.addrs)
        writes.extend(chunk.writes)
    return gaps, addrs, writes


def profile_with(**overrides):
    base = get_profile("gcc").scaled(128)
    base = dataclasses.replace(base, write_seq_bias=0.0, write_zipf_bias=0.0)
    return dataclasses.replace(base, **overrides)


class TestBudget:
    def test_instruction_budget_respected(self):
        trace = make_trace(profile_with(), 50_000, seed=1)
        total = sum(chunk.instructions for chunk in trace.chunks())
        assert total >= 50_000
        # No more than one chunk of overshoot... the generator trims.
        assert total <= 50_000 + 10_000

    def test_instructions_match_gap_sum(self):
        trace = make_trace(profile_with(), 30_000, seed=2)
        for chunk in trace.chunks():
            assert chunk.instructions == sum(chunk.gaps) + len(chunk)

    def test_expected_refs(self):
        profile = profile_with()
        trace = make_trace(profile, 100_000)
        gaps, _addrs, _writes = collect(trace)
        expected = trace.expected_refs
        assert abs(len(gaps) - expected) < expected * 0.2

    def test_zero_instructions_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace(profile_with(), 0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = collect(make_trace(profile_with(), 20_000, seed=7))
        b = collect(make_trace(profile_with(), 20_000, seed=7))
        assert a == b

    def test_different_seed_different_trace(self):
        a = collect(make_trace(profile_with(), 20_000, seed=7))
        b = collect(make_trace(profile_with(), 20_000, seed=8))
        assert a != b


class TestAddresses:
    def test_line_aligned(self):
        _gaps, addrs, _writes = collect(make_trace(profile_with(), 20_000))
        assert all(addr % LINE_SIZE == 0 for addr in addrs)

    def test_within_working_set(self):
        profile = profile_with()
        _gaps, addrs, _writes = collect(make_trace(profile, 20_000))
        assert max(addrs) < profile.working_set_bytes

    def test_addr_base_offsets_everything(self):
        base = 1 << 40
        _g, addrs, _w = collect(make_trace(profile_with(), 20_000, addr_base=base))
        assert all(addr >= base for addr in addrs)

    def test_write_fraction_approximate(self):
        profile = profile_with()
        _g, _a, writes = collect(make_trace(profile, 200_000))
        observed = sum(writes) / len(writes)
        assert abs(observed - profile.write_frac) < 0.05

    def test_mem_ratio_approximate(self):
        profile = profile_with()
        trace = make_trace(profile, 200_000)
        n_refs = 0
        n_instr = 0
        for chunk in trace.chunks():
            n_refs += len(chunk)
            n_instr += chunk.instructions
        assert abs(n_refs / n_instr - profile.mem_ratio) < 0.05


class TestLocalityStructure:
    def test_pure_sequential_walk(self):
        profile = profile_with(seq_frac=1.0, chase_frac=0.0, seq_run=1)
        _g, addrs, _w = collect(make_trace(profile, 5_000))
        n_lines = profile.working_set_bytes // LINE_SIZE
        expected = [(i % n_lines) * LINE_SIZE for i in range(len(addrs))]
        assert addrs == expected

    def test_seq_run_repeats_lines(self):
        profile = profile_with(seq_frac=1.0, chase_frac=0.0, seq_run=8)
        _g, addrs, _w = collect(make_trace(profile, 3_000))
        # Each line appears in runs of 8 consecutive references.
        assert addrs[0] == addrs[7]
        assert addrs[8] == addrs[0] + LINE_SIZE

    def test_zipf_concentrates_references(self):
        profile = profile_with(seq_frac=0.0, chase_frac=0.0, zipf_alpha=1.5)
        _g, addrs, _w = collect(make_trace(profile, 100_000))
        unique = len(set(addrs))
        assert unique < len(addrs) * 0.2

    def test_chase_scatters_references(self):
        profile = profile_with(seq_frac=0.0, chase_frac=1.0)
        _g, addrs, _w = collect(make_trace(profile, 100_000))
        n_lines = profile.working_set_bytes // LINE_SIZE
        unique = len(set(addrs))
        assert unique > n_lines * 0.5

    def test_write_seq_bias_concentrates_written_pages(self):
        scattered = profile_with(
            seq_frac=0.3,
            chase_frac=0.5,
            working_set_bytes=2 * 1024 * 1024,
        )
        biased = dataclasses.replace(scattered, write_seq_bias=0.9)
        pages = {}
        for name, profile in (("scattered", scattered), ("biased", biased)):
            _g, addrs, writes = collect(make_trace(profile, 100_000, seed=3))
            pages[name] = len(
                {page_address(a) for a, w in zip(addrs, writes) if w}
            )
        assert pages["biased"] < pages["scattered"]

    def test_write_zipf_bias_shrinks_write_set(self):
        flat = profile_with(
            seq_frac=0.1,
            chase_frac=0.5,
            working_set_bytes=2 * 1024 * 1024,
        )
        hot = dataclasses.replace(flat, write_zipf_bias=0.8)
        sets = {}
        for name, profile in (("flat", flat), ("hot", hot)):
            _g, addrs, writes = collect(make_trace(profile, 100_000, seed=4))
            sets[name] = len({a for a, w in zip(addrs, writes) if w})
        assert sets["hot"] < sets["flat"]
