"""Table V multiprogram mixes."""

import pytest

from repro.trace.mixes import MULTIPROGRAM_MIXES, mix_names, mix_profiles


class TestTableV:
    def test_eight_mixes(self):
        assert mix_names() == ["W0", "W1", "W2", "W3", "W4", "W5", "W6", "W7"]

    @pytest.mark.parametrize("mix", sorted(MULTIPROGRAM_MIXES))
    def test_each_mix_has_eight_benchmarks(self, mix):
        assert len(MULTIPROGRAM_MIXES[mix]) == 8

    @pytest.mark.parametrize("mix", sorted(MULTIPROGRAM_MIXES))
    def test_profiles_resolve(self, mix):
        profiles = mix_profiles(mix)
        assert len(profiles) == 8
        assert [p.name for p in profiles] == MULTIPROGRAM_MIXES[mix]

    def test_w0_matches_paper(self):
        assert MULTIPROGRAM_MIXES["W0"] == [
            "h264ref", "soplex", "hmmer", "bzip2",
            "gcc", "sjeng", "perlbench", "hmmer",
        ]

    def test_w7_matches_paper(self):
        assert MULTIPROGRAM_MIXES["W7"] == [
            "gcc", "wrf", "gcc", "bzip2",
            "gamess", "gromacs", "gcc", "perlbench",
        ]

    def test_duplicates_allowed_within_mix(self):
        # The paper's random draws repeat benchmarks (e.g. W5 has bzip2 x3).
        assert MULTIPROGRAM_MIXES["W5"].count("bzip2") == 3
