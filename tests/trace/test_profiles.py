"""Workload profiles: coverage, invariants, scaling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.trace.profiles import (
    BENCHMARKS,
    FIG12_BENCHMARKS,
    WorkloadProfile,
    get_profile,
)


class TestCoverage:
    def test_29_benchmarks(self):
        # The union of Fig 9's x-axis, Fig 11's extras, and Table V.
        assert len(BENCHMARKS) == 29

    def test_fig12_selection_is_subset(self):
        assert set(FIG12_BENCHMARKS) <= set(BENCHMARKS)

    def test_fig12_has_13_benchmarks(self):
        assert len(FIG12_BENCHMARKS) == 13

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_every_profile_resolves(self, name):
        assert get_profile(name).name == name

    def test_lookup_case_insensitive(self):
        assert get_profile("LBM").name == "lbm"
        assert get_profile("cactusadm").name == "cactusADM"

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")


class TestInvariants:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_fractions_valid(self, name):
        profile = get_profile(name)
        assert 0 < profile.mem_ratio <= 1
        assert 0 <= profile.write_frac <= 1
        assert profile.seq_frac + profile.chase_frac <= 1
        assert profile.write_seq_bias + profile.write_zipf_bias <= 1

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_category_known(self, name):
        assert get_profile(name).category in {
            "pointer",
            "memory",
            "mixed",
            "compute",
            "stream",
        }

    def test_compute_benchmarks_are_light(self):
        computes = [p for p in map(get_profile, BENCHMARKS) if p.category == "compute"]
        streams = [p for p in map(get_profile, BENCHMARKS) if p.category == "stream"]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean([p.mem_ratio for p in computes]) < mean(
            [p.mem_ratio for p in streams]
        )
        assert mean([p.working_set_bytes for p in computes]) < mean(
            [p.working_set_bytes for p in streams]
        )

    def test_pointer_benchmarks_have_low_spatial_locality(self):
        for name in ("astar", "omnetpp", "xalancbmk"):
            assert get_profile(name).chase_frac >= 0.5

    def test_mcf_writes_are_sequential(self):
        # "Workloads with sequential write traffic (e.g., mcf) favor
        # Shadow-Paging."
        assert get_profile("mcf").write_seq_bias >= 0.8


class TestValidation:
    def test_bad_mem_ratio(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", 0.0, 0.5, 1024, 0.1, 0.1, 1.0, "mixed")

    def test_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", 0.5, 0.5, 1024, 0.7, 0.6, 1.0, "mixed")

    def test_bad_biases(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(
                "x", 0.5, 0.5, 1024, 0.1, 0.1, 1.0, "mixed",
                write_seq_bias=0.6, write_zipf_bias=0.6,
            )

    def test_bad_working_set(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", 0.5, 0.5, 0, 0.1, 0.1, 1.0, "mixed")


class TestScaling:
    def test_scaled_divides_working_set(self):
        profile = get_profile("gcc")
        scaled = profile.scaled(16)
        assert scaled.working_set_bytes == profile.working_set_bytes // 16

    def test_scaled_has_floor(self):
        profile = get_profile("gamess")
        scaled = profile.scaled(1 << 20)
        assert scaled.working_set_bytes == 2048

    def test_scaled_preserves_other_fields(self):
        profile = get_profile("lbm")
        scaled = profile.scaled(8)
        assert scaled.mem_ratio == profile.mem_ratio
        assert scaled.write_seq_bias == profile.write_seq_bias
        assert scaled.name == profile.name

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            get_profile("gcc").mem_ratio = 0.5
