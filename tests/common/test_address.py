"""Address arithmetic: lines and pages."""

import pytest
from hypothesis import given, strategies as st

from repro.common.address import (
    LINE_SIZE,
    PAGE_SIZE,
    iter_page_lines,
    line_address,
    line_offset,
    lines_in_page,
    page_address,
    page_offset,
)


class TestLineArithmetic:
    def test_aligned_address_unchanged(self):
        assert line_address(128) == 128

    def test_unaligned_rounds_down(self):
        assert line_address(130) == 128

    def test_offset(self):
        assert line_offset(130) == 2

    def test_offset_of_aligned_is_zero(self):
        assert line_offset(192) == 0

    def test_custom_line_size(self):
        assert line_address(17, line_size=16) == 16

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_decomposition_is_lossless(self, addr):
        assert line_address(addr) + line_offset(addr) == addr

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_line_address_is_aligned(self, addr):
        assert line_address(addr) % LINE_SIZE == 0


class TestPageArithmetic:
    def test_page_address(self):
        assert page_address(4097) == 4096

    def test_page_offset(self):
        assert page_offset(4097) == 1

    def test_lines_in_page(self):
        assert lines_in_page() == 64

    def test_lines_in_page_custom(self):
        assert lines_in_page(page_size=1024, line_size=64) == 16

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_decomposition_is_lossless(self, addr):
        assert page_address(addr) + page_offset(addr) == addr


class TestIterPageLines:
    def test_yields_all_lines(self):
        lines = list(iter_page_lines(4096 + 100))
        assert len(lines) == 64
        assert lines[0] == 4096
        assert lines[-1] == 4096 + PAGE_SIZE - LINE_SIZE

    def test_lines_are_aligned_and_unique(self):
        lines = list(iter_page_lines(12345))
        assert all(addr % LINE_SIZE == 0 for addr in lines)
        assert len(set(lines)) == len(lines)

    def test_all_lines_in_same_page(self):
        lines = list(iter_page_lines(99999))
        assert {page_address(addr) for addr in lines} == {page_address(99999)}
