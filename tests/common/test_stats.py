"""StatCounters behaviour."""

from repro.common.stats import StatCounters


class TestBasics:
    def test_counter_starts_at_zero(self):
        stats = StatCounters()
        assert stats.get("anything") == 0

    def test_add_default_increment(self):
        stats = StatCounters()
        stats.add("hits")
        stats.add("hits")
        assert stats.get("hits") == 2

    def test_add_amount(self):
        stats = StatCounters()
        stats.add("bytes", 100)
        stats.add("bytes", 28)
        assert stats.get("bytes") == 128

    def test_set_overwrites(self):
        stats = StatCounters()
        stats.add("x", 5)
        stats.set("x", 1)
        assert stats.get("x") == 1

    def test_get_default(self):
        stats = StatCounters()
        assert stats.get("missing", default=7) == 7

    def test_contains(self):
        stats = StatCounters()
        assert "x" not in stats
        stats.add("x")
        assert "x" in stats

    def test_prefix(self):
        stats = StatCounters(prefix="nvm.")
        stats.add("reads")
        assert stats.snapshot() == {"nvm.reads": 1}


class TestSnapshotDiff:
    def test_snapshot_is_frozen(self):
        stats = StatCounters()
        stats.add("a")
        snap = stats.snapshot()
        stats.add("a")
        assert snap["a"] == 1
        assert stats.get("a") == 2

    def test_diff_reports_only_changes(self):
        stats = StatCounters()
        stats.add("a", 1)
        stats.add("b", 2)
        snap = stats.snapshot()
        stats.add("b", 3)
        stats.add("c", 1)
        assert stats.diff(snap) == {"b": 3, "c": 1}

    def test_diff_against_empty(self):
        stats = StatCounters()
        stats.add("a")
        assert stats.diff({}) == {"a": 1}


class TestMergeReset:
    def test_merge_from(self):
        a = StatCounters()
        b = StatCounters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge_from(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_reset(self):
        stats = StatCounters()
        stats.add("x")
        stats.reset()
        assert stats.get("x") == 0
        assert stats.snapshot() == {}

    def test_repr_sorted(self):
        stats = StatCounters()
        stats.add("b")
        stats.add("a")
        assert repr(stats) == "StatCounters(a=1, b=1)"
