"""StatCounters behaviour."""

from repro.common.stats import StatCounters


class TestBasics:
    def test_counter_starts_at_zero(self):
        stats = StatCounters()
        assert stats.get("anything") == 0

    def test_add_default_increment(self):
        stats = StatCounters()
        stats.add("hits")
        stats.add("hits")
        assert stats.get("hits") == 2

    def test_add_amount(self):
        stats = StatCounters()
        stats.add("bytes", 100)
        stats.add("bytes", 28)
        assert stats.get("bytes") == 128

    def test_set_overwrites(self):
        stats = StatCounters()
        stats.add("x", 5)
        stats.set("x", 1)
        assert stats.get("x") == 1

    def test_get_default(self):
        stats = StatCounters()
        assert stats.get("missing", default=7) == 7

    def test_contains(self):
        stats = StatCounters()
        assert "x" not in stats
        stats.add("x")
        assert "x" in stats

    def test_prefix(self):
        stats = StatCounters(prefix="nvm.")
        stats.add("reads")
        assert stats.snapshot() == {"nvm.reads": 1}


class TestSnapshotDiff:
    def test_snapshot_is_frozen(self):
        stats = StatCounters()
        stats.add("a")
        snap = stats.snapshot()
        stats.add("a")
        assert snap["a"] == 1
        assert stats.get("a") == 2

    def test_diff_reports_only_changes(self):
        stats = StatCounters()
        stats.add("a", 1)
        stats.add("b", 2)
        snap = stats.snapshot()
        stats.add("b", 3)
        stats.add("c", 1)
        assert stats.diff(snap) == {"b": 3, "c": 1}

    def test_diff_against_empty(self):
        stats = StatCounters()
        stats.add("a")
        assert stats.diff({}) == {"a": 1}


class TestMergeReset:
    def test_merge_from(self):
        a = StatCounters()
        b = StatCounters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge_from(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_reset(self):
        stats = StatCounters()
        stats.add("x")
        stats.reset()
        assert stats.get("x") == 0
        assert stats.snapshot() == {}

    def test_repr_sorted(self):
        stats = StatCounters()
        stats.add("b")
        stats.add("a")
        assert repr(stats) == "StatCounters(a=1, b=1)"


class TestSlots:
    def test_slot_value_visible_through_get(self):
        stats = StatCounters()
        cell = stats.slot("hits")
        cell.value += 3
        assert stats.get("hits") == 3
        assert stats.snapshot() == {"hits": 3}

    def test_slot_adopts_existing_counter_value(self):
        stats = StatCounters()
        stats.add("hits", 5)
        cell = stats.slot("hits")
        assert cell.value == 5
        cell.value += 1
        assert stats.get("hits") == 6

    def test_same_name_returns_same_slot(self):
        stats = StatCounters()
        assert stats.slot("x") is stats.slot("x")

    def test_add_and_set_reach_slots(self):
        stats = StatCounters()
        cell = stats.slot("x")
        stats.add("x", 2)
        assert cell.value == 2
        stats.set("x", 9)
        assert cell.value == 9

    def test_zero_slot_invisible(self):
        # A never-incremented slot must not invent a counter: snapshots
        # and membership keep the created-on-first-use semantics.
        stats = StatCounters()
        stats.slot("idle")
        assert stats.snapshot() == {}
        assert "idle" not in stats

    def test_items_spans_counters_and_slots(self):
        stats = StatCounters()
        stats.add("plain", 1)
        stats.slot("slotted").value = 2
        assert dict(stats.items()) == {"plain": 1, "slotted": 2}

    def test_merge_from_includes_slots(self):
        a = StatCounters()
        b = StatCounters()
        a.add("x", 1)
        b.slot("x").value = 2
        b.slot("y").value = 3
        b.add("z", 4)
        a.merge_from(b)
        assert a.get("x") == 3
        assert a.get("y") == 3
        assert a.get("z") == 4

    def test_reset_zeroes_but_keeps_slots(self):
        stats = StatCounters()
        cell = stats.slot("x")
        cell.value = 5
        stats.reset()
        assert stats.snapshot() == {}
        assert cell.value == 0
        cell.value += 1
        assert stats.get("x") == 1

    def test_prefix_applies_to_slots(self):
        stats = StatCounters(prefix="llc.")
        stats.slot("hits").value = 2
        assert stats.snapshot() == {"llc.hits": 2}
