"""Unit conversions: sizes and cycle arithmetic."""

import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    cycles_from_ns,
    is_power_of_two,
    ns_from_cycles,
)


class TestSizes:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024 ** 3


class TestCycleConversion:
    def test_table_iv_row_read(self):
        # 128 ns at 2 GHz = 256 cycles.
        assert cycles_from_ns(128) == 256

    def test_table_iv_row_write(self):
        assert cycles_from_ns(368) == 736

    def test_rounds_up(self):
        assert cycles_from_ns(0.6) == 2  # 1.2 cycles -> 2

    def test_exact_value_not_rounded(self):
        assert cycles_from_ns(1.0) == 2

    def test_zero(self):
        assert cycles_from_ns(0) == 0

    def test_custom_frequency(self):
        assert cycles_from_ns(100, ghz=1.0) == 100

    def test_roundtrip(self):
        assert ns_from_cycles(cycles_from_ns(368)) == pytest.approx(368)

    def test_ns_from_cycles_fractional(self):
        assert ns_from_cycles(1) == pytest.approx(0.5)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 1 << 30])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 4095, 100])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)
