"""EID wraparound-tag arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.eid import (
    EpochId,
    check_window_fits,
    eid_distance,
    eid_in_window,
    eid_le,
    max_window,
    resolve_tag,
    tags_equal,
    to_tag,
)
from repro.common.errors import ConfigurationError


class TestTags:
    def test_small_eid_is_its_own_tag(self):
        assert to_tag(5) == 5

    def test_wraparound(self):
        assert to_tag(16) == 0
        assert to_tag(17) == 1

    def test_custom_width(self):
        assert to_tag(9, bits=3) == 1

    def test_none_sentinel_rejected(self):
        with pytest.raises(ValueError):
            to_tag(EpochId.NONE)

    def test_tags_equal_across_wrap(self):
        assert tags_equal(3, 19)
        assert not tags_equal(3, 18)


class TestWindow:
    def test_max_window_4_bits(self):
        assert max_window(4) == 15

    def test_default_acs_gap_fits(self):
        # The paper's gap of 3 plus the executing epoch fits easily.
        assert check_window_fits(3) == 4

    def test_oversized_window_rejected(self):
        with pytest.raises(ConfigurationError):
            check_window_fits(acs_gap=15, extra_inflight=1, bits=4)

    def test_boundary_window_accepted(self):
        assert check_window_fits(acs_gap=14, extra_inflight=1, bits=4) == 15


class TestResolveTag:
    def test_identity_at_small_eids(self):
        assert resolve_tag(3, system_eid=5) == 3

    def test_across_wraparound(self):
        # SystemEID 18, a line tagged 15 was modified at full EID 15.
        assert resolve_tag(15, system_eid=18) == 15

    def test_tag_of_system_eid(self):
        assert resolve_tag(to_tag(18), system_eid=18) == 18

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=15),
    )
    def test_roundtrip_within_window(self, system_eid, age):
        eid = system_eid - age
        if eid < 0:
            return
        assert resolve_tag(to_tag(eid), system_eid) == eid

    def test_out_of_range_tag_rejected(self):
        with pytest.raises(ValueError):
            resolve_tag(16, system_eid=20)

    def test_negative_resolution_rejected(self):
        # Tag 5 at SystemEID 3 would denote epoch -11.
        with pytest.raises(ValueError):
            resolve_tag(5, system_eid=3)


class TestOrderingHelpers:
    def test_eid_le(self):
        assert eid_le(1, 2)
        assert eid_le(2, 2)
        assert not eid_le(3, 2)

    def test_distance(self):
        assert eid_distance(3, 7) == 4
        assert eid_distance(7, 3) == 4

    def test_in_window(self):
        assert eid_in_window(5, 3, 7)
        assert eid_in_window(3, 3, 7)
        assert eid_in_window(7, 3, 7)
        assert not eid_in_window(8, 3, 7)
