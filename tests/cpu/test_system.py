"""System container: tokens, commits, snapshots, stalls."""

import pytest

from helpers import SchemeHarness, tiny_config
from repro.cpu.core import CoreState
from repro.cpu.system import System


def bare_system(n_cores=1, track_reference=True, reference_depth=4):
    harness = SchemeHarness("ideal", config=tiny_config(n_cores=n_cores))
    system = harness.system
    system.track_reference = track_reference
    system._reference_depth = reference_depth
    return system


class TestTokens:
    def test_tokens_are_unique_and_increasing(self):
        system = bare_system()
        tokens = [system.new_token() for _ in range(10)]
        assert tokens == sorted(tokens)
        assert len(set(tokens)) == 10

    def test_tokens_start_nonzero(self):
        # Token 0 means "initial contents"; stores must never produce it.
        assert bare_system().new_token() != 0


class TestArchImage:
    def test_note_store_tracks(self):
        system = bare_system()
        system.note_store(0x40, 5)
        assert system.arch_image[0x40] == 5

    def test_note_store_ignored_without_tracking(self):
        system = bare_system(track_reference=False)
        system.note_store(0x40, 5)
        assert system.arch_image == {}


class TestCommitSnapshots:
    def test_snapshot_taken_at_commit(self):
        system = bare_system()
        system.note_store(0x40, 5)
        system.record_commit(0)
        system.note_store(0x40, 6)
        assert system.commit_snapshot(0) == {0x40: 5}

    def test_commit_counter_and_stat(self):
        system = bare_system()
        system.record_commit(0)
        system.record_commit(1)
        assert system.commit_count == 2
        assert system.stats.get("commits") == 2

    def test_snapshot_window_is_bounded(self):
        system = bare_system(reference_depth=2)
        for commit in range(5):
            system.record_commit(commit)
        assert system.commit_snapshot(0) is None
        assert system.commit_snapshot(4) is not None

    def test_unknown_commit_returns_none(self):
        assert bare_system().commit_snapshot(99) is None


class TestStalls:
    def test_broadcast_hits_every_core(self):
        system = bare_system(n_cores=1)
        system.broadcast_stall(100)
        assert all(core.commit_stall_cycles == 100 for core in system.cores)
        assert system.stats.get("stall.stop_the_world_cycles") == 100

    def test_zero_stall_is_free(self):
        system = bare_system()
        system.broadcast_stall(0)
        assert system.stats.get("stall.stop_the_world_cycles") == 0

    def test_handler_stall_from_config(self):
        system = bare_system()
        assert system.handler_stall() == system.epoch_handler_cycles


class TestClocks:
    def test_max_min_cycle(self):
        controller = bare_system().controller
        cores = [CoreState(0), CoreState(1)]
        cores[0].advance_compute(10)
        cores[1].advance_compute(30)
        system = System(controller, None, cores)
        assert system.max_cycle() == 30
        assert system.min_cycle() == 10
        assert system.n_cores == 2


class TestCrash:
    def test_crash_wipes_caches(self):
        harness = SchemeHarness("ideal")
        harness.store(0x40)
        assert len(harness.hierarchy.llc) > 0
        harness.system.crash()
        assert len(harness.hierarchy.llc) == 0
