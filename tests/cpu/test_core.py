"""Core timing accounting."""

from repro.cpu.core import CoreState


class TestAccounting:
    def test_compute_advances_cycle_and_instructions(self):
        core = CoreState(0)
        core.advance_compute(100)
        assert core.cycle == 100
        assert core.instructions == 100

    def test_memory_counts_one_instruction(self):
        core = CoreState(0)
        core.advance_memory(50)
        assert core.cycle == 50
        assert core.instructions == 1
        assert core.mem_stall_cycles == 50

    def test_commit_stall_does_not_retire(self):
        core = CoreState(0)
        core.stall_commit(1000)
        assert core.cycle == 1000
        assert core.instructions == 0
        assert core.commit_stall_cycles == 1000

    def test_mixed_sequence(self):
        core = CoreState(3)
        core.advance_compute(10)
        core.advance_memory(5)
        core.stall_commit(7)
        assert core.cycle == 22
        assert core.instructions == 11
        assert core.core_id == 3

    def test_repr(self):
        core = CoreState(1)
        assert "core=1" in repr(core)
