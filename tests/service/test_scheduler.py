"""Scheduler unit tests: dedupe, fairness, write-through, failure.

These drive the :class:`~repro.service.scheduler.Scheduler` directly on
an event loop with an *injected* runner — no worker processes — so every
property is asserted deterministically: a digest asked for by N clients
executes once; pending work round-robins across clients; results are
journaled before futures resolve; a failing unit fails exactly its own
points and leaves the digests retryable.
"""

import asyncio
import threading
import time

import pytest

from repro.service.events import EventLog, executions_per_digest
from repro.service.scheduler import Scheduler
from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    PointExecutionError,
    ResultCache,
    RunPoint,
    SweepCheckpoint,
    point_digest,
)

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


def make_points(*seeds):
    """Distinct seeds -> distinct traces -> one dispatch unit per point."""
    return [
        RunPoint.single(CONFIG, "picl", "gcc", N, seed=seed) for seed in seeds
    ]


class RecordingRunner:
    """An injected runner: echoes per-point markers, counts executions."""

    def __init__(self, delay=0.0, fail=False):
        self.delay = delay
        self.fail = fail
        self.calls = []  # one entry per unit dispatched to a worker
        self._lock = threading.Lock()

    def __call__(self, points):
        with self._lock:
            self.calls.append([point_digest(p) for p in points])
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise ValueError("injected unit failure")
        return ["result-%d" % p.seed for p in points]

    @property
    def executed_digests(self):
        return [digest for call in self.calls for digest in call]


def run_async(coro):
    return asyncio.run(coro)


async def drive(scheduler, *submissions):
    """Start, submit each (client, points) pair, await all, close."""
    scheduler.start()
    entries = [
        scheduler.submit(client, points) for client, points in submissions
    ]
    gathered = []
    for client_entries in entries:
        gathered.append(
            await asyncio.gather(
                *(future for future, _source in client_entries),
                return_exceptions=True,
            )
        )
    await scheduler.close()
    return entries, gathered


class TestDedupe:
    def test_concurrent_identical_submissions_execute_once(self):
        runner = RecordingRunner()
        events = EventLog()
        points = make_points(1, 2, 3)

        async def scenario():
            scheduler = Scheduler(jobs=2, events=events, runner=runner)
            return await drive(
                scheduler, ("alice", points), ("bob", points), ("carol", points)
            )

        entries, gathered = run_async(scenario())
        # One execution per digest, no matter how many clients asked.
        assert sorted(runner.executed_digests) == sorted(
            point_digest(p) for p in points
        )
        # Every client got every result, identically.
        assert gathered[0] == ["result-1", "result-2", "result-3"]
        assert gathered[1] == gathered[0]
        assert gathered[2] == gathered[0]
        # The dedupe is visible in the sources and the event log.
        assert [source for _f, source in entries[0]] == ["queued"] * 3
        assert [source for _f, source in entries[1]] == ["joined"] * 3
        assert events.counts["enqueue"] == 3
        assert events.counts["join"] == 6
        assert executions_per_digest(events.tail(100)) == {
            point_digest(p): 1 for p in points
        }

    def test_duplicate_points_within_one_batch_join(self):
        runner = RecordingRunner()
        point = make_points(9)[0]

        async def scenario():
            scheduler = Scheduler(jobs=1, runner=runner)
            return await drive(scheduler, ("alice", [point, point]))

        _entries, gathered = run_async(scenario())
        assert gathered[0] == ["result-9", "result-9"]
        assert len(runner.executed_digests) == 1

    def test_journal_answers_without_execution(self, tmp_path):
        runner = RecordingRunner()
        checkpoint = SweepCheckpoint(str(tmp_path / "j.ckpt"))
        point = make_points(5)[0]
        checkpoint.record(point, "journaled-result")

        async def scenario():
            scheduler = Scheduler(
                jobs=1, checkpoint=checkpoint, runner=runner
            )
            return await drive(scheduler, ("alice", [point]))

        entries, gathered = run_async(scenario())
        assert gathered[0] == ["journaled-result"]
        assert entries[0][0][1] == "journal"
        assert runner.calls == []

    def test_cache_hit_is_recorded_into_journal(self, tmp_path):
        runner = RecordingRunner()
        cache = ResultCache(str(tmp_path / "cache"))
        checkpoint = SweepCheckpoint(str(tmp_path / "j.ckpt"))
        point = make_points(6)[0]
        cache.store(point, "cached-result")

        async def scenario():
            scheduler = Scheduler(
                jobs=1, cache=cache, checkpoint=checkpoint, runner=runner
            )
            return await drive(scheduler, ("alice", [point]))

        entries, gathered = run_async(scenario())
        assert gathered[0] == ["cached-result"]
        assert entries[0][0][1] == "cache"
        assert runner.calls == []
        # Write-through: a restart now answers from the journal alone.
        assert SweepCheckpoint(str(tmp_path / "j.ckpt")).lookup(point) == (
            "cached-result"
        )

    def test_results_journaled_before_futures_resolve(self, tmp_path):
        runner = RecordingRunner()
        checkpoint = SweepCheckpoint(str(tmp_path / "j.ckpt"))
        point = make_points(7)[0]

        async def scenario():
            scheduler = Scheduler(
                jobs=1, checkpoint=checkpoint, runner=runner
            )
            scheduler.start()
            (future, _source), = scheduler.submit("alice", [point])
            result = await future
            # At the instant the future resolved, the journal already
            # held the result (durability before visibility).
            assert checkpoint.lookup(point) == result
            await scheduler.close()

        run_async(scenario())


class TestFairness:
    def test_round_robin_across_clients(self):
        events = EventLog()
        runner = RecordingRunner(delay=0.01)

        async def scenario():
            # jobs=1 forces strictly sequential dispatch; both clients
            # submit before the dispatcher runs, so the dispatch order
            # is purely the scheduler's choice.
            scheduler = Scheduler(jobs=1, events=events, runner=runner)
            alice = scheduler.submit("alice", make_points(11, 12, 13))
            bob = scheduler.submit("bob", make_points(21))
            scheduler.start()
            await asyncio.gather(
                *(f for f, _s in alice), *(f for f, _s in bob)
            )
            await scheduler.close()

        run_async(scenario())
        order = [
            record["client"]
            for record in events.tail(100)
            if record["event"] == "dispatch"
        ]
        # Bob's single point is served second, not starved behind the
        # rest of Alice's batch.
        assert order == ["alice", "bob", "alice", "alice"]


class TestFailure:
    def test_unit_failure_fails_only_its_points(self):
        points = make_points(31)

        async def scenario():
            scheduler = Scheduler(
                jobs=1, runner=RecordingRunner(fail=True)
            )
            scheduler.start()
            (future, _source), = scheduler.submit("alice", points)
            with pytest.raises(PointExecutionError, match="injected"):
                await future
            # The digest is no longer in flight: a resubmission after a
            # (transient-in-reality) failure re-enqueues instead of
            # joining a dead future.
            assert scheduler.status()["inflight"] == 0
            (future2, source2), = scheduler.submit("alice", points)
            assert source2 == "queued"
            with pytest.raises(PointExecutionError):
                await future2
            await scheduler.close()

        run_async(scenario())

    def test_close_cancels_queued_work(self):
        runner = RecordingRunner(delay=0.2)

        async def scenario():
            scheduler = Scheduler(jobs=1, runner=runner)
            scheduler.start()
            entries = scheduler.submit("alice", make_points(41, 42, 43, 44))
            # Give the dispatcher a moment to start the first unit.
            await asyncio.sleep(0.05)
            await scheduler.close()
            outcomes = await asyncio.gather(
                *(f for f, _s in entries), return_exceptions=True
            )
            cancelled = [
                o for o in outcomes if isinstance(o, asyncio.CancelledError)
            ]
            assert cancelled, "queued futures should be cancelled on close"

        run_async(scenario())
