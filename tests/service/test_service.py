"""End-to-end daemon tests: real subprocess, real sockets, real workers.

Each test spawns ``python -m repro serve`` against a private spool and a
short unix-socket path (AF_UNIX caps paths at ~107 bytes, so the socket
lives in its own ``/tmp`` directory rather than pytest's deep tmp tree),
then talks to it with :class:`repro.service.client.ServiceClient` —
exactly the production transport.

The acceptance properties of the sweep service are asserted here:

* two clients submitting the same batch concurrently → every digest is
  executed exactly once (read back from the durable event log), and both
  clients receive results bit-identical to an in-process serial
  ``run_points`` of the same points;
* a warm resubmission is answered entirely from the journal with zero
  new executions;
* SIGKILL of the whole daemon mid-batch loses nothing: a restarted
  daemon on the same spool recovers the batch, finishes the remaining
  points, and never re-executes a completed digest.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

import repro
from repro.service.client import ServiceClient, wait_until_ready
from repro.service.events import executions_per_digest, read_events
from repro.sim.config import SystemConfig
from repro.sim.parallel import RunPoint, point_digest, run_points

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


def make_points(*seeds, n_instructions=N, scheme="picl"):
    return [
        RunPoint.single(CONFIG, scheme, "gcc", n_instructions, seed)
        for seed in seeds
    ]


def fingerprint(result):
    """Counters that must be bit-identical across execution modes."""
    return (
        result.scheme_name,
        result.cycles,
        result.instructions,
        tuple(sorted(result.stats.items())),
    )


class Daemon:
    """A ``repro serve`` subprocess bound to a private spool + socket."""

    def __init__(self, jobs=2):
        # Short base dir: the unix socket path must fit in sun_path.
        self.home = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
        self.spool = os.path.join(self.home, "spool")
        self.socket = os.path.join(self.home, "s.sock")
        self.cache_dir = os.path.join(self.home, "cache")
        self.jobs = jobs
        self.proc = None

    @property
    def events_path(self):
        return os.path.join(self.spool, "events.jsonl")

    def start(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_NO_CACHE"] = ""  # conftest disables caching; re-enable
        env["REPRO_CACHE_DIR"] = self.cache_dir
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--spool",
                self.spool,
                "--socket",
                self.socket,
                "--jobs",
                str(self.jobs),
            ],
            env=env,
            cwd=self.home,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        wait_until_ready(socket_path=self.socket, timeout=60)
        return self

    def client(self):
        return ServiceClient(socket_path=self.socket)

    def kill(self):
        """SIGKILL — the crash under test, nothing graceful about it."""
        if self.proc is not None:
            self.proc.kill()
            self.proc.wait()
            self.proc = None

    def stop(self):
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                with self.client() as client:
                    client.shutdown()
                self.proc.wait(timeout=30)
            except Exception:
                self.kill()
        self.proc = None

    def cleanup(self):
        self.stop()
        shutil.rmtree(self.home, ignore_errors=True)


@pytest.fixture
def daemon_factory():
    daemons = []

    def factory(jobs=2):
        daemon = Daemon(jobs=jobs).start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.cleanup()


class TestConcurrentClients:
    def test_dedupe_and_bit_identical_results(self, daemon_factory):
        points = make_points(1, 2) + make_points(1, 2, scheme="journaling")
        serial = [fingerprint(r) for r in run_points(points)]
        daemon = daemon_factory(jobs=2)

        outcomes = {}

        def submit(name):
            with daemon.client() as client:
                results = client.submit_points(points)
                outcomes[name] = (
                    [fingerprint(r) for r in results],
                    client.last_sources,
                )

        threads = [
            threading.Thread(target=submit, args=(name,))
            for name in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        # Both clients got the full batch, bit-identical to serial.
        assert outcomes["alice"][0] == serial
        assert outcomes["bob"][0] == serial
        # The durable event log shows exactly one execution per digest.
        counts = executions_per_digest(read_events(daemon.events_path))
        assert counts == {point_digest(p): 1 for p in points}
        # Between the two clients, every point was deduped one way or
        # another: the totals add up to exactly one execution's worth of
        # "queued" plus joins/journal hits for the other client.
        sources = [outcomes["alice"][1], outcomes["bob"][1]]
        assert sum(s["queued"] for s in sources) == len(points)
        assert sum(s["joined"] + s["journal"] for s in sources) == len(points)

        # Warm resubmission: answered entirely from the journal, with
        # zero new executions and sub-second latency.
        t0 = time.monotonic()
        with daemon.client() as client:
            warm = client.submit_points(points)
            warm_sources = client.last_sources
        elapsed = time.monotonic() - t0
        assert [fingerprint(r) for r in warm] == serial
        assert warm_sources["journal"] == len(points)
        counts_after = executions_per_digest(read_events(daemon.events_path))
        assert counts_after == counts
        assert elapsed < 5.0, "warm resubmit took %.2fs" % elapsed

    def test_submit_figure_keyed_results(self, daemon_factory):
        daemon = daemon_factory(jobs=2)
        with daemon.client() as client:
            results = client.submit_figure(
                "fig09", preset="ci", benchmarks=["gcc"], epochs=1
            )
        assert results
        for (benchmark, scheme), result in results.items():
            assert benchmark == "gcc"
            assert result.scheme_name == scheme
        schemes = {scheme for _benchmark, scheme in results}
        assert "picl" in schemes and "ideal" in schemes


class TestCrashRecovery:
    def test_daemon_sigkill_mid_batch_loses_nothing(self, daemon_factory):
        # ~1.2 s per point at 40 epochs of instructions, jobs=1: the
        # daemon is guaranteed to be mid-batch when the SIGKILL lands.
        points = make_points(1, 2, 3, 4, n_instructions=N * 40)
        serial = [fingerprint(r) for r in run_points(points)]
        daemon = daemon_factory(jobs=1)

        failure = []

        def doomed_submit():
            try:
                with daemon.client() as client:
                    client.submit_points(points)
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                failure.append(exc)

        thread = threading.Thread(target=doomed_submit)
        thread.start()

        # Wait for proof of partial progress, then SIGKILL the daemon.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            done = executions_per_digest(read_events(daemon.events_path))
            if done:
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon made no progress before kill")
        assert sum(done.values()) < len(points), "batch finished too fast"
        daemon.kill()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert failure, "client should see the connection die"

        # The batch spool survived the kill.
        spooled = os.listdir(os.path.join(daemon.spool, "batches"))
        assert any(name.endswith(".pkl") for name in spooled)

        # Restart on the same spool; recovery is automatic.
        daemon.start()
        records = read_events(daemon.events_path)
        assert any(r["event"] == "batch_recovered" for r in records)

        # A resubmission returns the complete batch, bit-identical.
        with daemon.client() as client:
            results = client.submit_points(points)
        assert [fingerprint(r) for r in results] == serial

        # No digest was ever executed twice, across both daemon lives.
        counts = executions_per_digest(read_events(daemon.events_path))
        assert set(counts) <= {point_digest(p) for p in points}
        assert all(count <= 1 for count in counts.values()), counts
