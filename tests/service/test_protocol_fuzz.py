"""Protocol robustness fuzzing: hostile frames against a live daemon.

Satellite of the fleet PR: truncated frames, non-JSON garbage, non-
base64 payloads, and frames at/over the 64 MiB ``STREAM_LIMIT`` must
each produce a *clean* protocol error — an ``error`` reply and/or a
closed connection — never a hung read loop or a dead daemon. Every test
finishes by pinging the daemon over a fresh connection to prove it
survived.
"""

import json
import socket

import pytest

from service.test_service import Daemon
from repro.service.client import ServiceClient
from repro.service.server import STREAM_LIMIT


@pytest.fixture(scope="module")
def daemon():
    daemon = Daemon(jobs=1).start()
    yield daemon
    daemon.cleanup()


class RawConnection:
    """A bare socket speaking newline frames (no client conveniences)."""

    def __init__(self, path, timeout=30.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.file = self.sock.makefile("rwb")

    def send_raw(self, data):
        self.file.write(data)
        self.file.flush()

    def recv_line(self):
        return self.file.readline()

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


def assert_daemon_alive(daemon):
    with ServiceClient(socket_path=daemon.socket) as client:
        assert client.ping()


class TestMalformedFrames:
    def test_non_json_garbage_gets_error_reply(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            conn.send_raw(b"\x00\xff\xfenot json at all\n")
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "error"
            assert "bad message" in reply["error"]
            # The connection is still usable for a valid op.
            conn.send_raw(b'{"op": "ping"}\n')
            assert json.loads(conn.recv_line())["event"] == "pong"
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_truncated_frame_gets_error_reply(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            # A submit cut off mid-object (still newline-terminated).
            conn.send_raw(b'{"op": "submit", "batch": "x", "points": ["A\n')
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "error"
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_non_object_json_rejected(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            conn.send_raw(b"[1, 2, 3]\n")
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "error"
            assert "JSON object" in reply["error"]
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_non_base64_points_rejected(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            message = {
                "op": "submit",
                "batch": "fuzz-b64",
                "points": ["!!!not base64!!!", "%%%"],
                "env": None,
            }
            conn.send_raw(json.dumps(message).encode() + b"\n")
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "error"
            assert "undecodable points" in reply["error"]
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_valid_base64_invalid_pickle_rejected(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            message = {
                "op": "submit",
                "batch": "fuzz-pickle",
                "points": ["QUJDREVG"],  # b"ABCDEF": not a pickle
                "env": None,
            }
            conn.send_raw(json.dumps(message).encode() + b"\n")
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "error"
            assert "undecodable points" in reply["error"]
        finally:
            conn.close()
        assert_daemon_alive(daemon)


class TestStreamLimit:
    def test_frame_near_limit_is_served(self, daemon):
        # A huge-but-legal frame parses and is answered normally.
        pad = "x" * (4 * 1024 * 1024)
        frame = (
            json.dumps({"op": "ping", "pad": pad}).encode() + b"\n"
        )
        assert len(frame) < STREAM_LIMIT
        conn = RawConnection(daemon.socket, timeout=120)
        try:
            conn.send_raw(frame)
            assert json.loads(conn.recv_line())["event"] == "pong"
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_frame_over_limit_clean_error_and_close(self, daemon):
        # One newline-less blob past STREAM_LIMIT: the daemon must
        # answer with a fatal protocol error (or just hang up) and
        # remain healthy — never crash or hang.
        conn = RawConnection(daemon.socket, timeout=120)
        try:
            blob = b"A" * (STREAM_LIMIT + 1024 * 1024)
            try:
                conn.send_raw(blob + b"\n")
            except (BrokenPipeError, ConnectionResetError):
                pass  # daemon already slammed the door mid-send: fine
            try:
                reply = conn.recv_line()
            except (ConnectionResetError, OSError):
                reply = b""
            if reply:
                parsed = json.loads(reply)
                assert parsed["event"] == "error"
                assert parsed.get("fatal")
            # Either way the connection ends instead of hanging.
            try:
                assert conn.recv_line() == b""
            except (ConnectionResetError, OSError):
                pass
        finally:
            conn.close()
        assert_daemon_alive(daemon)


class TestWorkerChannelFuzz:
    def test_garbled_worker_frame_drops_connection_not_daemon(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            conn.send_raw(
                json.dumps(
                    {"op": "register", "name": "fuzzer", "capabilities": {}}
                ).encode()
                + b"\n"
            )
            registered = json.loads(conn.recv_line())
            assert registered["event"] == "registered"
            # Now corrupt the channel: the daemon must drop us cleanly.
            conn.send_raw(b"\xde\xad\xbe\xef garbage frame\n")
            try:
                assert conn.recv_line() == b""
            except (ConnectionResetError, OSError):
                pass
        finally:
            conn.close()
        assert_daemon_alive(daemon)

    def test_results_from_unknown_worker_are_acked_unaccepted(self, daemon):
        conn = RawConnection(daemon.socket)
        try:
            conn.send_raw(
                json.dumps(
                    {"op": "register", "name": "fuzzer2", "capabilities": {}}
                ).encode()
                + b"\n"
            )
            assert json.loads(conn.recv_line())["event"] == "registered"
            # A result for a unit that was never assigned, under a
            # worker id that never existed: discarded, not crashed.
            conn.send_raw(
                json.dumps(
                    {
                        "op": "unit_result",
                        "worker": "ghost#999",
                        "unit": "u999",
                        "results": [],
                    }
                ).encode()
                + b"\n"
            )
            reply = json.loads(conn.recv_line())
            assert reply["event"] == "ack"
            assert reply["accepted"] is False
        finally:
            conn.close()
        assert_daemon_alive(daemon)
