"""``REPRO_VECTOR_MC`` rides the engine-flag channel like its siblings.

The multi-core sub-switch gates the horizon-batched N-core interpreter
(``Simulation._run_multi_core_vector``) underneath ``REPRO_VECTOR``; it
is read when the simulation runs, in the worker process. These tests
pin that the flag is a first-class member of :data:`ENGINE_FLAGS` —
captured from the submitting client, shipped with the batch, applied
authoritatively in the isolated child, and scrubbed when the client
left it unset — so pinning ``REPRO_VECTOR_MC=0`` to bisect a suspected
multi-core interpreter bug keeps meaning something on the service.
"""

import dataclasses
import os

from repro.service import protocol
from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ENGINE_FLAGS,
    RunPoint,
    apply_engine_env,
    engine_env,
    execute_batch_with_retry,
)

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


@dataclasses.dataclass(frozen=True)
class EnvProbePoint(RunPoint):
    """Runs no simulation; reports the engine flags its process sees."""

    def execute(self):
        return {name: os.environ.get(name) for name in ENGINE_FLAGS}


def test_mc_switch_is_an_engine_flag():
    assert "REPRO_VECTOR_MC" in ENGINE_FLAGS


def test_capture_picks_up_the_mc_switch(monkeypatch):
    for name in ENGINE_FLAGS:
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setenv("REPRO_VECTOR_MC", "0")
    assert engine_env() == {"REPRO_VECTOR_MC": "0"}


def test_apply_pins_and_scrubs_the_mc_switch(monkeypatch):
    # Register with monkeypatch first so the mutation is undone.
    monkeypatch.setenv("REPRO_VECTOR_MC", "sentinel")
    monkeypatch.setenv("REPRO_VECTOR", "1")
    apply_engine_env({"REPRO_VECTOR_MC": "0"})
    assert os.environ.get("REPRO_VECTOR_MC") == "0"
    # The capture is authoritative: unset siblings are scrubbed.
    assert "REPRO_VECTOR" not in os.environ


def test_protocol_round_trips_the_mc_switch():
    point = EnvProbePoint(CONFIG, "picl", ("gcc",), N, 11)
    message = protocol.submit_points(
        "b1", [point], env={"REPRO_VECTOR_MC": "0"}
    )
    decoded = protocol.loads(protocol.dumps(message))
    assert decoded["env"] == {"REPRO_VECTOR_MC": "0"}


def test_child_sees_the_submitted_mc_switch(monkeypatch):
    # The daemon's environment says batched; the client pinned scalar.
    monkeypatch.setenv("REPRO_VECTOR_MC", "1")
    point = EnvProbePoint(CONFIG, "picl", ("gcc",), N, 12)
    (seen,) = execute_batch_with_retry(
        [point], env={"REPRO_VECTOR_MC": "0"}
    )
    assert seen["REPRO_VECTOR_MC"] == "0"
    assert seen["REPRO_VECTOR"] is None
