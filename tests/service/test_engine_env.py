"""Engine-flag propagation: client environment governs worker processes.

``REPRO_VECTOR`` / ``REPRO_BATCH_MISS`` / ``REPRO_BRUTE_SCAN`` /
``REPRO_MISS_PROFILE`` select *how* a simulation executes (all modes are
bit-identical), and they are read when the hierarchy is built — in the
worker process. These tests pin the contract that a submitting client's
flags travel with its batch: captured by :func:`engine_env`, shipped
through the protocol, spooled for restart recovery, carried on scheduler
units, and finally pinned inside the isolated child by
:func:`apply_engine_env` — with flags the client left unset *scrubbed*
from whatever the daemon inherited.
"""

import asyncio
import dataclasses
import os
import pickle

from repro.service import protocol
from repro.service.scheduler import Scheduler
from repro.service.server import SweepService
from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ENGINE_FLAGS,
    RunPoint,
    apply_engine_env,
    engine_env,
    execute_batch_with_retry,
)

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


@dataclasses.dataclass(frozen=True)
class EnvProbePoint(RunPoint):
    """Runs no simulation; reports the engine flags its process sees."""

    def execute(self):
        return {name: os.environ.get(name) for name in ENGINE_FLAGS}


def probe(seed):
    return EnvProbePoint(CONFIG, "picl", ("gcc",), N, seed)


class TestCaptureAndApply:
    def test_engine_env_captures_only_set_engine_flags(self, monkeypatch):
        for name in ENGINE_FLAGS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv("REPRO_BATCH_MISS", "0")
        monkeypatch.setenv("REPRO_JOBS", "4")  # not an engine flag
        assert engine_env() == {"REPRO_BATCH_MISS": "0"}

    def test_engine_env_reads_an_explicit_mapping(self):
        captured = engine_env({"REPRO_VECTOR": "1", "PATH": "/bin"})
        assert captured == {"REPRO_VECTOR": "1"}

    def test_apply_none_leaves_environment_alone(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        apply_engine_env(None)
        assert os.environ["REPRO_VECTOR"] == "0"

    def test_apply_dict_is_authoritative_for_every_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        monkeypatch.setenv("REPRO_BRUTE_SCAN", "1")
        # Register with monkeypatch before apply_engine_env mutates it,
        # so the flag is restored (not leaked) after this test.
        monkeypatch.setenv("REPRO_BATCH_MISS", "sentinel")
        apply_engine_env({"REPRO_BATCH_MISS": "0"})
        assert os.environ.get("REPRO_BATCH_MISS") == "0"
        # Flags absent from the capture are scrubbed, not inherited.
        assert "REPRO_VECTOR" not in os.environ
        assert "REPRO_BRUTE_SCAN" not in os.environ


class TestIsolatedChild:
    def test_child_runs_under_the_submitted_env(self, monkeypatch):
        # The daemon's own environment disables the interpreter...
        monkeypatch.setenv("REPRO_VECTOR", "0")
        monkeypatch.delenv("REPRO_BATCH_MISS", raising=False)
        # ...but the client pinned only REPRO_BATCH_MISS=0.
        (seen,) = execute_batch_with_retry(
            [probe(1)], env={"REPRO_BATCH_MISS": "0"}
        )
        assert seen["REPRO_BATCH_MISS"] == "0"
        assert seen["REPRO_VECTOR"] is None  # daemon setting scrubbed

    def test_no_env_means_the_child_inherits(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        (seen,) = execute_batch_with_retry([probe(2)], env=None)
        assert seen["REPRO_VECTOR"] == "0"


class TestSchedulerUnits:
    def test_submitted_env_rides_on_the_unit(self):
        events = []

        async def scenario():
            scheduler = Scheduler(jobs=1, runner=lambda points: points)
            # Submit before start(): units queue without dispatching, so
            # the queue is inspectable.
            scheduler.submit(
                "client-a", [probe(3)], env={"REPRO_BATCH_MISS": "0"}
            )
            scheduler.submit("client-b", [probe(4)])
            for queue in scheduler._queues.values():
                for unit in queue:
                    events.append((unit.client, unit.env))
            scheduler.start()
            await scheduler.close()

        asyncio.run(scenario())
        assert ("client-a", {"REPRO_BATCH_MISS": "0"}) in events
        assert ("client-b", None) in events


class TestProtocolAndSpool:
    def test_submit_points_carries_env(self):
        message = protocol.submit_points(
            "b1", [probe(5)], env={"REPRO_VECTOR": "1"}
        )
        assert message["env"] == {"REPRO_VECTOR": "1"}
        decoded = protocol.loads(protocol.dumps(message))
        assert decoded["env"] == {"REPRO_VECTOR": "1"}

    def test_spool_recovery_reads_both_formats(self, tmp_path):
        seen = []

        async def scenario():
            service = SweepService(
                spool_dir=str(tmp_path), cache=None, runner=lambda pts: pts
            )

            def record_submit(client, points, batch_id=None, env=None):
                seen.append((batch_id, env))
                return []

            service.scheduler.submit = record_submit
            # Old format: a bare pickled point list (pre-env daemons).
            with open(service._spool_path("old"), "wb") as handle:
                pickle.dump([probe(6)], handle)
            # New format: dict with the engine-flag capture.
            service._spool("new", [probe(7)], env={"REPRO_BATCH_MISS": "0"})
            service._stopping = asyncio.Event()
            service.scheduler.start()
            service._recover_spool()
            await service.scheduler.close()
            for task in list(service._background):
                await task

        asyncio.run(scenario())
        assert ("old", None) in seen
        assert ("new", {"REPRO_BATCH_MISS": "0"}) in seen
