"""Fleet integration tests: the Scheduler driving fake remote workers.

These exercise the loop-side worker API (``worker_register`` /
``worker_heartbeat`` / ``worker_result`` / ``worker_error`` /
``worker_lost``) directly — no sockets — so every distributed-failure
property is deterministic: placement prefers the fleet, a lost or
lease-lapsed worker's units requeue (exactly once onto the fleet, then
pinned local), a zombie's late delivery is discarded without a ``done``
event, and the breaker quarantines a repeatedly-failing host.
"""

import asyncio

import pytest

from repro.service import protocol
from repro.service.events import EventLog, executions_per_digest
from repro.service.scheduler import Scheduler
from repro.sim.config import SystemConfig
from repro.sim.parallel import PointExecutionError, RunPoint, point_digest

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


def make_points(*seeds):
    return [
        RunPoint.single(CONFIG, "picl", "gcc", N, seed=seed) for seed in seeds
    ]


class FakeWorker:
    """A loop-side stand-in for a connected remote worker."""

    def __init__(self, scheduler, name="w", slots=4):
        self.scheduler = scheduler
        self.inbox = []
        self.closed = False
        self.host = scheduler.worker_register(
            name, {"slots": slots}, send=self.inbox.append, close=self._close
        )
        self.worker_id = self.host.worker_id

    def _close(self):
        self.closed = True

    def assignments(self):
        return [msg for msg in self.inbox if msg.get("event") == "assign"]

    def finish(self, message, worker_id=None):
        points = [protocol.decode_payload(t) for t in message["points"]]
        return self.scheduler.worker_result(
            worker_id or self.worker_id,
            message["unit"],
            ["result-%d" % p.seed for p in points],
        )


async def until(condition, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not condition():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not met within %.1fs" % timeout)
        await asyncio.sleep(0.01)


def run_async(coro):
    return asyncio.run(coro)


class TestRemotePlacement:
    def test_fleet_preferred_over_local_pool(self):
        events = EventLog()
        points = make_points(1, 2, 3)

        async def scenario():
            # runner raises if the local path is ever taken.
            def local_runner(_points):
                raise AssertionError("local pool used despite a free worker")

            scheduler = Scheduler(jobs=2, events=events, runner=local_runner)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            entries = scheduler.submit("alice", points)
            await until(lambda: len(worker.assignments()) == 3)
            for message in worker.assignments():
                assert worker.finish(message)
            results = await asyncio.gather(*(f for f, _s in entries))
            await scheduler.close()
            return results

        results = run_async(scenario())
        assert results == ["result-1", "result-2", "result-3"]
        assert events.counts["assign"] == 3
        assert events.counts["dispatch"] == 0  # never went local
        # done events carry the executing worker and count exactly once.
        assert all(
            record.get("worker") == "alpha#1"
            for record in events.tail(100)
            if record["event"] == "done"
        )
        assert set(executions_per_digest(events.tail(100)).values()) == {1}

    def test_zero_workers_runs_on_local_pool(self):
        events = EventLog()
        calls = []

        def runner(points):
            calls.append(len(points))
            return ["result-%d" % p.seed for p in points]

        async def scenario():
            scheduler = Scheduler(jobs=2, events=events, runner=runner)
            scheduler.start()
            entries = scheduler.submit("alice", make_points(7))
            results = await asyncio.gather(*(f for f, _s in entries))
            await scheduler.close()
            return results

        assert run_async(scenario()) == ["result-7"]
        assert calls == [1]
        assert events.counts["assign"] == 0


class TestFailureReassignment:
    def test_worker_lost_requeues_onto_local_pool(self):
        events = EventLog()

        def runner(points):
            return ["result-%d" % p.seed for p in points]

        async def scenario():
            scheduler = Scheduler(jobs=1, events=events, runner=runner)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            entries = scheduler.submit("alice", make_points(1))
            await until(lambda: len(worker.assignments()) == 1)
            scheduler.worker_lost(worker.worker_id)
            results = await asyncio.gather(*(f for f, _s in entries))
            await scheduler.close()
            return results

        assert run_async(scenario()) == ["result-1"]
        assert events.counts["worker_lost"] == 1
        assert events.counts["requeue"] == 1
        assert set(executions_per_digest(events.tail(100)).values()) == {1}

    def test_lease_expiry_requeues_and_discards_zombie_result(self):
        events = EventLog()

        def runner(points):
            return ["result-%d" % p.seed for p in points]

        async def scenario():
            scheduler = Scheduler(
                jobs=1, events=events, runner=runner, lease=0.2
            )
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            entries = scheduler.submit("alice", make_points(1))
            await until(lambda: len(worker.assignments()) == 1)
            message = worker.assignments()[0]
            # No heartbeats: the lease lapses, the unit requeues and
            # completes locally.
            results = await asyncio.gather(*(f for f, _s in entries))
            await until(lambda: worker.closed)
            # The zombie now delivers its stale result: discarded.
            assert not worker.finish(message)
            await scheduler.close()
            return results

        assert run_async(scenario()) == ["result-1"]
        assert events.counts["worker_expired"] == 1
        assert events.counts["stale_result"] == 1
        # Exactly one accepted execution despite the double computation.
        assert set(executions_per_digest(events.tail(200)).values()) == {1}

    def test_second_requeue_pins_unit_local(self):
        events = EventLog()

        def runner(points):
            return ["result-%d" % p.seed for p in points]

        async def scenario():
            scheduler = Scheduler(jobs=1, events=events, runner=runner)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            entries = scheduler.submit("alice", make_points(1))
            await until(lambda: len(worker.assignments()) == 1)
            first = worker.assignments()[0]
            # Transient failure #1: requeued, still fleet-eligible, so
            # the (healthy-enough) worker gets it again.
            assert scheduler.worker_error(
                worker.worker_id, first["unit"], "boom", transient=True
            )
            await until(lambda: len(worker.assignments()) == 2)
            second = worker.assignments()[1]
            # Transient failure #2: pinned local — the worker must NOT
            # see it a third time.
            assert scheduler.worker_error(
                worker.worker_id, second["unit"], "boom", transient=True
            )
            results = await asyncio.gather(*(f for f, _s in entries))
            assert len(worker.assignments()) == 2
            await scheduler.close()
            return results

        assert run_async(scenario()) == ["result-1"]
        requeues = [
            record
            for record in events.tail(200)
            if record["event"] == "requeue"
        ]
        assert [r["forced_local"] for r in requeues] == [False, True]

    def test_deterministic_error_fails_points_without_requeue(self):
        events = EventLog()

        async def scenario():
            scheduler = Scheduler(jobs=1, events=events, runner=None)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            entries = scheduler.submit("alice", make_points(1))
            await until(lambda: len(worker.assignments()) == 1)
            message = worker.assignments()[0]
            assert scheduler.worker_error(
                worker.worker_id,
                message["unit"],
                "sim assertion",
                transient=False,
            )
            with pytest.raises(PointExecutionError, match="sim assertion"):
                await entries[0][0]
            await scheduler.close()

        run_async(scenario())
        assert events.counts["requeue"] == 0
        assert events.counts["failed"] == 1

    def test_quarantine_after_repeated_incidents(self):
        events = EventLog()

        def runner(points):
            return ["result-%d" % p.seed for p in points]

        async def scenario():
            scheduler = Scheduler(jobs=1, events=events, runner=runner)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            for seed in (1, 2, 3):
                entries = scheduler.submit("alice", make_points(seed))
                await until(lambda: len(worker.assignments()) >= 1)
                message = worker.assignments()[-1]
                worker.inbox.clear()
                # Two transient strikes per unit exhausts its fleet
                # eligibility; each strike is a breaker incident.
                scheduler.worker_error(
                    worker.worker_id, message["unit"], "boom", transient=True
                )
                if events.counts.get("worker_quarantine"):
                    await asyncio.gather(*(f for f, _s in entries))
                    break
                await until(lambda: len(worker.assignments()) >= 1)
                message = worker.assignments()[-1]
                worker.inbox.clear()
                scheduler.worker_error(
                    worker.worker_id, message["unit"], "boom", transient=True
                )
                await asyncio.gather(*(f for f, _s in entries))
            await scheduler.close()

        run_async(scenario())
        assert events.counts["worker_quarantine"] >= 1

    def test_heartbeat_keeps_lease_alive(self):
        events = EventLog()

        async def scenario():
            scheduler = Scheduler(jobs=1, events=events, lease=0.3)
            scheduler.start()
            worker = FakeWorker(scheduler, "alpha")
            for _ in range(10):
                await asyncio.sleep(0.08)
                assert scheduler.worker_heartbeat(worker.worker_id)
            assert scheduler.hosts.get(worker.worker_id) is not None
            await scheduler.close()

        run_async(scenario())
        assert events.counts["worker_expired"] == 0


class TestStatus:
    def test_status_reports_fleet(self):
        async def scenario():
            scheduler = Scheduler(jobs=1, runner=lambda pts: [0] * len(pts))
            scheduler.start()
            FakeWorker(scheduler, "alpha", slots=3)
            status = scheduler.status()
            await scheduler.close()
            return status

        status = run_async(scenario())
        assert status["workers"]["live"] == 1
        assert status["workers"]["hosts"][0]["capacity"] == 3
