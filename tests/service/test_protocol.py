"""Wire protocol: framing and payload roundtrips."""

import pytest

from repro.service import protocol
from repro.sim.config import SystemConfig
from repro.sim.parallel import RunPoint, point_digest

CONFIG = SystemConfig().scaled(512)


def make_point(seed=7):
    return RunPoint.single(
        CONFIG, "picl", "gcc", CONFIG.epoch_instructions, seed
    )


class TestFraming:
    def test_dumps_is_one_newline_terminated_line(self):
        line = protocol.dumps({"op": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_loads_roundtrip(self):
        message = {"op": "submit", "batch": "abc", "n": 3}
        assert protocol.loads(protocol.dumps(message)) == message

    def test_loads_accepts_str_and_bytes(self):
        assert protocol.loads('{"op": "ping"}') == {"op": "ping"}
        assert protocol.loads(b'{"op": "ping"}') == {"op": "ping"}

    def test_loads_rejects_non_objects(self):
        with pytest.raises(ValueError):
            protocol.loads("[1, 2, 3]")

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValueError):
            protocol.loads("not json at all")


class TestPayloads:
    def test_runpoint_roundtrip_preserves_digest(self):
        point = make_point()
        clone = protocol.decode_payload(protocol.encode_payload(point))
        assert point_digest(clone) == point_digest(point)
        assert clone.scheme_name == "picl"

    def test_payload_is_json_safe_ascii(self):
        import json

        text = protocol.encode_payload({"nested": [1, 2, 3]})
        assert json.loads(json.dumps(text)) == text


class TestSubmitMessages:
    def test_submit_points_carries_decodable_points(self):
        points = [make_point(1), make_point(2)]
        message = protocol.submit_points("batch-1", points)
        assert message["op"] == "submit"
        assert message["batch"] == "batch-1"
        decoded = [protocol.decode_payload(p) for p in message["points"]]
        assert [point_digest(p) for p in decoded] == [
            point_digest(p) for p in points
        ]

    def test_submit_figure_form(self):
        message = protocol.submit_figure(
            "b", "fig09", preset="ci", benchmarks=["gcc"], epochs=1
        )
        assert message["figure"] == "fig09"
        assert message["benchmarks"] == ["gcc"]
        assert "points" not in message
