"""Client read-deadline and reconnect-resume tests.

A scripted fake server (plain unix-socket thread) plays the failure:
it accepts a submit, streams *part* of the batch, then goes silent.
The client's read deadline must fire, and instead of raising it must
reconnect and re-submit the same batch id — the real daemon answers a
re-submission idempotently from its journal/in-flight table, which the
fake server emulates by replaying the full stream on the second
connection.
"""

import json
import os
import shutil
import socket
import tempfile
import threading

import pytest

from repro.service import protocol
from repro.service.client import (
    DEFAULT_CLIENT_TIMEOUT,
    ServiceClient,
    client_timeout,
)
from repro.sim.parallel import PointExecutionError


class TestTimeoutConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLIENT_TIMEOUT", raising=False)
        assert client_timeout() == DEFAULT_CLIENT_TIMEOUT

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_TIMEOUT", "12.5")
        assert client_timeout() == 12.5

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_TIMEOUT", "0")
        assert client_timeout() is None

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_TIMEOUT", "soon")
        assert client_timeout() == DEFAULT_CLIENT_TIMEOUT


class ScriptedServer:
    """Accept connections in order; run one script function per each."""

    def __init__(self, *scripts):
        self.home = tempfile.mkdtemp(prefix="rcli-", dir="/tmp")
        self.path = os.path.join(self.home, "s.sock")
        self.scripts = list(scripts)
        self.submits = []  # parsed submit message per connection
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(4)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for script in self.scripts:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with conn:
                handle = conn.makefile("rwb")
                line = handle.readline()
                message = json.loads(line)
                self.submits.append(message)

                def send(msg):
                    handle.write(
                        (json.dumps(msg) + "\n").encode("utf-8")
                    )
                    handle.flush()

                script(message, send)
                # Hold the connection open (silently) until the client
                # abandons it, so "server stopped talking" is what the
                # client experiences — not a clean EOF.
                try:
                    handle.readline()
                except OSError:
                    pass

    def close(self):
        try:
            self._listener.close()
        finally:
            shutil.rmtree(self.home, ignore_errors=True)


def accepted(message, n):
    return {
        "event": "accepted",
        "batch": message["batch"],
        "n_points": n,
        "keys": None,
        "protocol": protocol.PROTOCOL_VERSION,
    }


def point(message, index, value, source="queued"):
    return {
        "event": "point",
        "batch": message["batch"],
        "index": index,
        "source": source,
        "result": protocol.encode_payload(value),
    }


def test_stalled_stream_reconnects_and_resumes():
    def first(message, send):
        send(accepted(message, 2))
        send(point(message, 0, "r0"))
        # ...then silence: the lease on the client's patience runs out.

    def second(message, send):
        # The daemon answers a re-submission idempotently: same batch,
        # full replay (index 0 now a journal hit).
        send(accepted(message, 2))
        send(point(message, 0, "r0", source="journal"))
        send(point(message, 1, "r1"))
        send({"event": "done", "batch": message["batch"], "n_points": 2,
              "failures": 0, "sources": {"journal": 1, "queued": 1,
                                         "cache": 0, "joined": 0}})

    server = ScriptedServer(first, second)
    try:
        with ServiceClient(socket_path=server.path, read_timeout=0.4) as client:
            results = client.submit_points(["p0", "p1"], batch_id="batch-X")
            assert results == ["r0", "r1"]
            assert client.resumes == 1
            assert client.last_summary["batch"] == "batch-X"
        # Both connections re-submitted the *same* batch id and points.
        assert len(server.submits) == 2
        assert server.submits[0] == server.submits[1]
        assert server.submits[0]["batch"] == "batch-X"
    finally:
        server.close()


def test_stall_budget_exhausted_raises():
    def mute(message, send):
        send(accepted(message, 1))
        # Never a single point, on any connection.

    server = ScriptedServer(mute, mute, mute, mute, mute)
    try:
        with ServiceClient(socket_path=server.path, read_timeout=0.2) as client:
            with pytest.raises(PointExecutionError, match="stalled"):
                client.submit_points(["p0"], batch_id="batch-Y")
            assert client.resumes == 3
    finally:
        server.close()


def test_no_deadline_when_disabled():
    # read_timeout=0 restores the wait-forever behavior; the server
    # answers after a pause longer than the old default would allow in
    # spirit (scaled down for test time).
    def slow(message, send):
        import time

        send(accepted(message, 1))
        time.sleep(0.5)
        send(point(message, 0, "r0"))
        send({"event": "done", "batch": message["batch"], "n_points": 1,
              "failures": 0, "sources": {"journal": 0, "queued": 1,
                                         "cache": 0, "joined": 0}})

    server = ScriptedServer(slow)
    try:
        with ServiceClient(socket_path=server.path, read_timeout=0) as client:
            assert client.read_timeout is None
            assert client.submit_points(["p0"]) == ["r0"]
            assert client.resumes == 0
    finally:
        server.close()
