"""HostTable unit tests: leases, placement ranking, circuit breaker.

Pure-bookkeeping tests with an injected fake clock — every liveness and
breaker transition is asserted without sockets, sleeps, or an event
loop.
"""

import json

from repro.service.placement import (
    FAILURE_THRESHOLD,
    MAX_PROBE_BACKOFF,
    PROBE_BACKOFF,
    HostTable,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_table(lease=10.0, **kwargs):
    clock = FakeClock()
    return HostTable(lease=lease, clock=clock, **kwargs), clock


class TestLease:
    def test_register_grants_lease_and_unique_ids(self):
        table, clock = make_table()
        a = table.register("alpha")
        b = table.register("alpha")
        assert a.worker_id != b.worker_id
        assert a.name == b.name == "alpha"
        assert a.lease_deadline == clock.now + 10.0
        assert table.live_count() == 2

    def test_heartbeat_renews_expiry_removes(self):
        table, clock = make_table(lease=10.0)
        host = table.register("alpha")
        clock.advance(8.0)
        assert table.heartbeat(host.worker_id)
        clock.advance(8.0)  # t=16, deadline renewed to 18
        assert table.expire() == []
        clock.advance(3.0)  # t=19 > 18
        expired = table.expire()
        assert [h.worker_id for h in expired] == [host.worker_id]
        # The zombie's id answers nothing from now on.
        assert table.get(host.worker_id) is None
        assert not table.heartbeat(host.worker_id)

    def test_lost_removes_immediately(self):
        table, _clock = make_table()
        host = table.register("alpha")
        assert table.lost(host.worker_id) is host
        assert table.lost(host.worker_id) is None
        assert table.live_count() == 0


class TestPlacement:
    def test_least_loaded_wins(self):
        table, _clock = make_table()
        a = table.register("a", {"slots": 4})
        b = table.register("b", {"slots": 4})
        table.assign(a, "u1", trace="t1")
        assert table.place("t2") is b

    def test_same_trace_affinity_beats_load(self):
        table, _clock = make_table()
        a = table.register("a", {"slots": 4})
        b = table.register("b", {"slots": 4})
        table.assign(a, "u1", trace="hot")
        table.release(a, "u1")
        table.assign(a, "u2", trace="hot")
        # a is busier but replayed this trace; b is idle and cold.
        assert table.place("hot") is a
        assert table.place("cold") is b

    def test_capacity_is_respected(self):
        table, _clock = make_table()
        a = table.register("a", {"slots": 1})
        table.assign(a, "u1", trace="t")
        assert table.place("t") is None
        assert not table.placeable()
        table.release(a, "u1")
        assert table.place("t") is a
        assert table.placeable()

    def test_registration_order_breaks_ties(self):
        table, _clock = make_table()
        a = table.register("a")
        table.register("b")
        assert table.place("t") is a

    def test_bad_slots_capability_defaults_to_one(self):
        table, _clock = make_table()
        host = table.register("a", {"slots": "many"})
        assert host.capacity == 1


class TestBreaker:
    def test_quarantine_after_threshold(self):
        table, _clock = make_table()
        table.register("a")
        for i in range(FAILURE_THRESHOLD - 1):
            assert not table.record_failure("a")
        assert table.record_failure("a")  # tripped
        assert table.place("t") is None
        assert not table.placeable()

    def test_probe_after_cooldown_single_probe_half_open(self):
        table, clock = make_table()
        host = table.register("a")
        for _ in range(FAILURE_THRESHOLD):
            table.record_failure("a")
        health = table.health("a")
        assert not health.admits(clock())
        clock.advance(PROBE_BACKOFF + 0.01)
        # Cool-down over: exactly one probe unit is admitted.
        assert table.place("t") is host
        table.assign(host, "probe", trace="t")
        assert health.probing
        table.release(host, "probe")
        assert table.place("t") is None  # half-open: no second unit

    def test_probe_success_closes_breaker(self):
        table, clock = make_table()
        table.register("a")
        for _ in range(FAILURE_THRESHOLD):
            table.record_failure("a")
        clock.advance(PROBE_BACKOFF + 0.01)
        table.record_success("a")
        health = table.health("a")
        assert health.failures == 0
        assert health.quarantined_until is None
        assert health.backoff == PROBE_BACKOFF
        assert health.admits(clock())

    def test_probe_failure_doubles_backoff_capped(self):
        table, clock = make_table()
        table.register("a")
        backoff = PROBE_BACKOFF
        for _ in range(FAILURE_THRESHOLD):
            table.record_failure("a")
        for _ in range(12):
            health = table.health("a")
            assert health.quarantined_until == clock() + backoff
            backoff = min(backoff * 2.0, MAX_PROBE_BACKOFF)
            clock.advance(health.backoff + 0.01)
            table.record_failure("a")
        assert table.health("a").backoff == MAX_PROBE_BACKOFF

    def test_health_survives_reconnect(self):
        table, _clock = make_table()
        host = table.register("a")
        for _ in range(FAILURE_THRESHOLD):
            table.record_failure("a")
        table.lost(host.worker_id)
        table.register("a")  # same name, new connection
        assert table.place("t") is None  # still quarantined

    def test_one_incident_per_death_not_per_unit(self):
        # record_failure counts incidents; a host dying with 5 units is
        # one incident (the scheduler calls it once per death event).
        table, _clock = make_table()
        table.register("a")
        assert not table.record_failure("a")
        assert table.health("a").failures == 1


class TestSnapshot:
    def test_snapshot_is_json_safe(self):
        table, clock = make_table()
        host = table.register("a", {"slots": 2})
        table.assign(host, "u1", trace=("gcc",))
        snap = table.snapshot()
        text = json.dumps(snap)
        assert "a#1" in text
        assert snap["live"] == 1
        assert snap["hosts"][0]["load"] == 1
        clock.advance(3.0)
        assert table.snapshot()["hosts"][0]["lease_remaining"] == 7.0
