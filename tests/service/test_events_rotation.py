"""EventLog rotation tests: size cap, retention, seamless replay."""

import os

from repro.service.events import (
    EventLog,
    event_segments,
    executions_per_digest,
    read_events,
)


def test_no_rotation_below_cap(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path, max_bytes=1 << 20, segments=3)
    for i in range(50):
        log.append("tick", i=i)
    assert event_segments(path) == [path]
    assert [r["i"] for r in read_events(path)] == list(range(50))


def test_rotation_preserves_full_history(tmp_path):
    path = str(tmp_path / "events.jsonl")
    # Tiny cap: every few records roll a new segment.
    log = EventLog(path, max_bytes=200, segments=10)
    for i in range(40):
        log.append("tick", i=i)
    segments = event_segments(path)
    assert len(segments) > 2
    # Replay is one continuous, ordered history across all segments.
    assert [r["i"] for r in read_events(path)] == list(range(40))


def test_retention_drops_oldest_segments(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path, max_bytes=120, segments=2)
    for i in range(60):
        log.append("tick", i=i)
    assert not os.path.exists(path + ".3")
    recorded = [r["i"] for r in read_events(path)]
    # The newest records survive, in order, with the oldest aged out.
    assert recorded == sorted(recorded)
    assert recorded[-1] == 59
    assert 0 not in recorded


def test_rotation_disabled_with_zero_cap(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path, max_bytes=0, segments=2)
    for i in range(100):
        log.append("tick", i=i)
    assert event_segments(path) == [path]
    assert len(read_events(path)) == 100


def test_append_across_instances_resumes_size_accounting(tmp_path):
    # A daemon restart reopens the same active segment; its size must
    # count toward the cap or rotation would never trigger again.
    path = str(tmp_path / "events.jsonl")
    for _restart in range(6):
        log = EventLog(path, max_bytes=300, segments=5)
        for i in range(10):
            log.append("tick", restart=_restart, i=i)
    assert len(event_segments(path)) > 1


def test_rotation_env_knobs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "150")
    monkeypatch.setenv("REPRO_EVENTS_SEGMENTS", "2")
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path)
    assert log.max_bytes == 150
    assert log.segments == 2
    for i in range(40):
        log.append("tick", i=i)
    assert len(event_segments(path)) <= 3  # active + 2 retained


def test_executions_per_digest_spans_segments(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path, max_bytes=150, segments=20)
    for i in range(20):
        log.append("done", digest="d%02d" % i)
    counts = executions_per_digest(read_events(path))
    assert counts == {"d%02d" % i: 1 for i in range(20)}
