"""Worker end-to-end tests: a real daemon, a real socket, a real fleet.

An in-process :class:`SweepWorker` (execution injected for speed and
determinism) dials a ``repro serve`` subprocess and serves units. The
acceptance properties: units route to the fleet when a worker is live,
a failing worker's units fail over to the daemon's local pool and still
come back bit-identical to serial, and the daemon's event log records
the fleet's life cycle.
"""

import threading
import time

import pytest

from service.test_service import Daemon, fingerprint, make_points
from repro.fault.chaos import ChaosPlan
from repro.service.events import executions_per_digest, read_events
from repro.service.worker import SweepWorker
from repro.sim.parallel import WorkerCrashError, run_points


@pytest.fixture
def daemon():
    daemon = Daemon(jobs=1).start()
    yield daemon
    daemon.cleanup()


def start_worker(daemon, runner, name="w1", slots=2):
    worker = SweepWorker(
        name=name,
        socket_path=daemon.socket,
        slots=slots,
        runner=runner,
        chaos=ChaosPlan(),  # never inherit chaos from the environment
        reconnect_delay=0.1,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def wait_for_fleet(daemon, live=1, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with daemon.client() as client:
            status = client.status()
        if status["workers"]["live"] >= live:
            return status
        time.sleep(0.05)
    raise AssertionError("fleet never reached %d live worker(s)" % live)


class TestWorkerEndToEnd:
    def test_units_route_to_the_fleet(self, daemon):
        executed = []

        def runner(points, env):
            executed.append((len(points), env))
            return ["w-%d" % p.seed for p in points]

        worker, thread = start_worker(daemon, runner)
        try:
            wait_for_fleet(daemon)
            points = make_points(1, 2)
            with daemon.client() as client:
                results = client.submit_points(points)
            assert results == ["w-1", "w-2"]
            # Distinct seeds are distinct traces: two units, both remote.
            assert len(executed) == 2
            records = read_events(daemon.events_path)
            assert any(r["event"] == "worker_register" for r in records)
            assert sum(1 for r in records if r["event"] == "assign") == 2
            done_workers = {
                r.get("worker")
                for r in records
                if r["event"] == "done" and r.get("digest")
            }
            assert done_workers == {"w1#1"}
        finally:
            worker.stop()
            thread.join(timeout=10)

    def test_failing_worker_fails_over_to_local_pool(self, daemon):
        points = make_points(5)
        serial = [fingerprint(r) for r in run_points(points)]

        def runner(_points, _env):
            raise WorkerCrashError("injected fleet-side crash")

        worker, thread = start_worker(daemon, runner)
        try:
            wait_for_fleet(daemon)
            with daemon.client() as client:
                results = client.submit_points(points)
            # Two fleet strikes, then the local pool ran it for real —
            # bit-identical to serial.
            assert [fingerprint(r) for r in results] == serial
            records = read_events(daemon.events_path)
            requeues = [r for r in records if r["event"] == "requeue"]
            assert len(requeues) == 2
            assert requeues[-1]["forced_local"]
            counts = executions_per_digest(records)
            assert set(counts.values()) == {1}
        finally:
            worker.stop()
            thread.join(timeout=10)

    def test_worker_survives_daemon_restart(self, daemon):
        def runner(points, env):
            return ["w-%d" % p.seed for p in points]

        worker, thread = start_worker(daemon, runner)
        try:
            wait_for_fleet(daemon)
            daemon.kill()
            daemon.start()
            # The worker reconnects and re-registers by itself.
            wait_for_fleet(daemon)
            with daemon.client() as client:
                assert client.submit_points(make_points(9)) == ["w-9"]
        finally:
            worker.stop()
            thread.join(timeout=10)
