"""Pytest configuration: make tests/helpers importable everywhere.

The on-disk result cache is disabled for the whole suite so test runs are
hermetic (no ``.repro_cache`` directory appears in the repo, and no test
can be satisfied by a stale cached result). Cache tests construct their
own ``ResultCache`` against a tmp_path explicitly.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

os.environ.setdefault("REPRO_NO_CACHE", "1")
