"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_takes_preset(self):
        args = build_parser().parse_args(["fig09", "--preset", "ci"])
        assert args.command == "fig09"
        assert args.preset == "ci"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_experiment_takes_jobs(self):
        args = build_parser().parse_args(["fig09", "--jobs", "4"])
        assert args.jobs == "4"

    def test_jobs_defaults_to_none(self):
        args = build_parser().parse_args(["fig09"])
        assert args.jobs is None

    def test_experiment_takes_profile(self):
        args = build_parser().parse_args(["fig09", "--profile"])
        assert args.profile is True

    def test_profile_defaults_to_off(self):
        args = build_parser().parse_args(["fig09"])
        assert args.profile is False


class TestServiceCommands:
    def test_serve_takes_spool_jobs_and_socket(self):
        args = build_parser().parse_args(
            ["serve", "--spool", "/tmp/s", "--jobs", "4", "--socket", "/tmp/x"]
        )
        assert args.command == "serve"
        assert args.spool == "/tmp/s"
        assert args.jobs == "4"
        assert args.socket == "/tmp/x"
        assert args.tcp is None

    def test_submit_takes_figure_and_grid_options(self):
        args = build_parser().parse_args(
            [
                "submit", "fig09",
                "--preset", "ci",
                "--benchmarks", "gcc,lbm",
                "--epochs", "2",
            ]
        )
        assert args.command == "submit"
        assert args.figure == "fig09"
        assert args.preset == "ci"
        assert args.benchmarks == "gcc,lbm"
        assert args.epochs == 2

    def test_submit_requires_a_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_status_takes_endpoint(self):
        args = build_parser().parse_args(["status", "--tcp", "127.0.0.1:7001"])
        assert args.command == "status"
        assert args.tcp == "127.0.0.1:7001"

    def test_parse_tcp(self):
        from repro.cli import _parse_tcp

        assert _parse_tcp(None) is None
        assert _parse_tcp("127.0.0.1:7001") == ("127.0.0.1", 7001)
        assert _parse_tcp(":7001") == ("127.0.0.1", 7001)
        assert _parse_tcp("7001") == ("127.0.0.1", 7001)

    def test_list_mentions_service_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "submit" in out
        assert "status" in out


class TestMain:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "calibrate" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_table3_runs(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "BRAM" in out

    def test_table3_profiled(self, capsys):
        assert main(["table3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "BRAM" in out
        # cProfile's report header and the sort we requested.
        assert "cumulative" in out
        assert "function calls" in out

    def test_every_command_is_wired(self):
        from repro.cli import _experiment_commands

        commands = _experiment_commands()
        assert set(commands) >= {
            "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "table3", "calibrate", "recovery",
        }
        for name, (command_main, help_text) in commands.items():
            assert callable(command_main), name
            assert help_text
