"""ChaosPlan unit tests: determinism, single-use firing, transport."""

import pytest

from repro.fault.chaos import (
    CHAOS_SITES,
    ChaosAction,
    ChaosPlan,
    garble_line,
    truncate_line,
)


class TestAction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosAction("meteor", 1)

    def test_occurrence_counts_from_one(self):
        with pytest.raises(ValueError, match="counts from 1"):
            ChaosAction("kill", 0)


class TestPlan:
    def test_fires_on_nth_site_visit_single_use(self):
        plan = ChaosPlan([ChaosAction("kill", 3)])
        assert plan.trigger("unit_start") == []
        assert plan.trigger("unit_start") == []
        assert plan.trigger("unit_start") == ["kill"]
        # Strictly single-use: the 3rd visit consumed it forever.
        for _ in range(5):
            assert plan.trigger("unit_start") == []
        assert plan.pending() == []

    def test_sites_are_counted_independently(self):
        plan = ChaosPlan([ChaosAction("kill", 1), ChaosAction("freeze", 2)])
        assert plan.trigger("heartbeat") == []
        assert plan.trigger("unit_start") == ["kill"]
        assert plan.trigger("heartbeat") == ["freeze"]

    def test_spec_round_trip(self):
        plan = ChaosPlan.from_spec("kill@2, garble@1,partition@3")
        assert plan.to_spec() == "kill@2,garble@1,partition@3"
        assert ChaosPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()
        assert not ChaosPlan.from_spec("")
        assert not ChaosPlan.from_spec(None)
        assert ChaosPlan.from_spec("drop").actions[0].occurrence == 1

    def test_from_env(self):
        plan = ChaosPlan.from_env({"REPRO_CHAOS": "freeze@2"})
        assert plan.to_spec() == "freeze@2"
        assert not ChaosPlan.from_env({})

    def test_seeded_is_deterministic_and_bounded(self):
        kinds = sorted(CHAOS_SITES)
        a = ChaosPlan.seeded("seed-42", kinds, lo=1, hi=4)
        b = ChaosPlan.seeded("seed-42", kinds, lo=1, hi=4)
        assert a.to_spec() == b.to_spec()
        assert all(1 <= act.occurrence <= 4 for act in a.actions)
        # A different seed yields a different schedule (for these kinds).
        c = ChaosPlan.seeded("seed-43", kinds, lo=1, hi=100)
        assert c.to_spec() != ChaosPlan.seeded("seed-42", kinds, hi=100).to_spec()

    def test_describe(self):
        plan = ChaosPlan.from_spec("kill@1")
        assert plan.describe() == "kill@1"
        plan.trigger("unit_start")
        assert "fired" in plan.describe()
        assert ChaosPlan().describe() == "no chaos"


class TestCorruption:
    def test_garble_keeps_framing_but_breaks_content(self):
        line = b'{"op": "unit_result", "results": ["QUJD"]}\n'
        bad = garble_line(line)
        assert bad.endswith(b"\n")
        assert bad.count(b"\n") == 1
        assert bad != line
        # Deterministic: same input, same corruption.
        assert garble_line(line) == bad

    def test_truncate_keeps_newline(self):
        line = b'{"op": "unit_result", "results": ["QUJD"]}\n'
        bad = truncate_line(line)
        assert bad.endswith(b"\n")
        assert len(bad) < len(line)
