"""NVM corruption injectors and log-region integrity verification."""

import pytest

from repro.common.errors import ConfigurationError, RecoveryError
from repro.core.recovery import recover_image
from repro.core.undo import UndoEntry
from repro.fault.nvm_faults import (
    INJECTORS,
    corrupt_superblock_header,
    flip_entry_bit,
    tear_superblock,
)
from repro.mem.log_region import LogRegion


def make_log(n_entries=8, per_block=4):
    log = LogRegion(entry_bytes=72, superblock_bytes=72 * per_block)
    log.append_many(
        [UndoEntry(i * 64, 100 + i, 0, 1 + i % 3) for i in range(n_entries)]
    )
    return log


class TestIntegrityBaseline:
    def test_clean_log_verifies(self):
        make_log().verify()

    def test_clean_log_recovers_with_verification(self):
        image, _report = recover_image({}, make_log(), persisted_eid=0)
        assert image  # entries applied, no RecoveryError

    def test_legitimate_torn_flush_stays_consistent(self):
        # The *crash-path* tear appends a prefix through the normal path:
        # bookkeeping matches the stored entries, so verification passes —
        # only out-of-band corruption is flagged.
        log = LogRegion(entry_bytes=72, superblock_bytes=72 * 4)
        entries = [UndoEntry(i * 64, i, 0, 1) for i in range(6)]
        log.append_many(entries[:3])  # the surviving prefix of the burst
        log.verify()


class TestInjectors:
    def test_tear_superblock_detected(self):
        log = make_log()
        detail = tear_superblock(log)
        assert "tore" in detail
        with pytest.raises(RecoveryError):
            log.verify()
        with pytest.raises(RecoveryError):
            recover_image({}, log, persisted_eid=0)

    def test_bitflip_token_detected(self):
        log = make_log()
        flip_entry_bit(log, "token", bit=3)
        with pytest.raises(RecoveryError):
            log.verify()

    def test_bitflip_valid_till_detected(self):
        log = make_log()
        flip_entry_bit(log, "valid_till", bit=1)
        with pytest.raises(RecoveryError):
            log.verify()

    def test_corrupt_header_detected(self):
        log = make_log()
        corrupt_superblock_header(log)
        with pytest.raises(RecoveryError):
            log.verify()

    def test_header_corruption_cannot_silently_skip_live_entries(self):
        # A downward header flip would make the backward scan early-stop
        # past live entries; verification must fire before that happens.
        log = make_log(n_entries=4, per_block=4)
        block = next(log.iter_superblocks_backward())
        block.max_valid_till = -1  # claims "everything here expired"
        with pytest.raises(RecoveryError):
            recover_image({}, log, persisted_eid=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="no field"):
            flip_entry_bit(make_log(), "voltage")

    def test_empty_log_has_nothing_to_corrupt(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=72 * 4)
        with pytest.raises(ConfigurationError, match="no superblock"):
            tear_superblock(log)

    def test_injector_suite_all_detected(self):
        for name, inject in INJECTORS.items():
            log = make_log()
            inject(log)
            with pytest.raises(RecoveryError):
                log.verify()

    def test_verification_can_be_disabled(self):
        # recover_image(verify=False) models pre-checksum recovery: the
        # corruption then flows straight into the rebuilt image.
        log = make_log()
        flip_entry_bit(log, "token", bit=3, entry_index=0)
        image, _report = recover_image({}, log, persisted_eid=0, verify=False)
        assert image  # silently mis-recovered, as expected without checks
