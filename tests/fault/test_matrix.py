"""The differential crash matrix end to end (small scale).

These are the gating safety cells: crash at a semantic window, recover,
compare token-exactly against the oracle snapshot; corrupt the log,
expect detection. The CLI's ``fault-sweep`` runs the same harness at
preset scales.
"""

import pytest

from repro.common.errors import RecoveryError
from repro.fault.harness import (
    LOGGED_SCHEMES,
    RECOVERABLE_SCHEMES,
    CrashEvent,
    matrix_events,
    run_cell,
    run_crash_matrix,
    validate_fault_detection,
    validate_recovery,
)
from repro.fault.plan import CrashPlan
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation

CONFIG = SystemConfig().scaled(512, track_reference=True, reference_depth=256)


def cell(event_name, scheme):
    event = {e.name: e for e in matrix_events(full=True)}[event_name]
    return run_cell(CONFIG, scheme, event, "gcc", 6, seed=20180101)


class TestSemanticCells:
    @pytest.mark.parametrize("scheme", RECOVERABLE_SCHEMES)
    def test_epoch_boundary_minus(self, scheme):
        outcome = cell("epoch1-7", scheme)
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail

    @pytest.mark.parametrize("scheme", RECOVERABLE_SCHEMES)
    def test_llc_eviction_window(self, scheme):
        outcome = cell("llc-eviction", scheme)
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail

    def test_torn_undo_flush(self):
        outcome = cell("undo-flush-torn", "picl")
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail

    def test_pre_inplace_window(self):
        outcome = cell("pre-inplace", "picl")
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail

    def test_mid_acs_scan(self):
        outcome = cell("mid-acs", "picl")
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail

    @pytest.mark.parametrize("scheme", LOGGED_SCHEMES)
    def test_nested_recovery_idempotent(self, scheme):
        outcome = cell("nested-recovery", scheme)
        assert outcome.triggered
        assert outcome.status == "ok", outcome.detail


class TestCorruptionCells:
    @pytest.mark.parametrize("scheme", LOGGED_SCHEMES)
    def test_torn_superblock_detected(self, scheme):
        outcome = cell("nvm-torn_superblock", scheme)
        assert outcome.status == "detected", outcome.detail

    @pytest.mark.parametrize("scheme", LOGGED_SCHEMES)
    def test_bitflip_detected(self, scheme):
        outcome = cell("nvm-bitflip_token", scheme)
        assert outcome.status == "detected", outcome.detail

    def test_silent_misrecovery_is_a_failure(self, monkeypatch):
        # If recovery were to succeed over a corrupted log, the cell must
        # FAIL (detection is the asserted property, not recoverability).
        sim = Simulation(CONFIG, "frm", ["mcf"], 40_000, seed=1)
        sim.run(crash_plan=CrashPlan.at(35_000))
        monkeypatch.setattr(
            type(sim.scheme.log), "verify", lambda self: None
        )
        with pytest.raises(RecoveryError, match="silent mis-recovery"):
            validate_fault_detection(sim, "bitflip_token")


class TestHarnessPlumbing:
    def test_validate_recovery_requires_oracle(self):
        # No reference tracking: the crash lands past the first commit,
        # whose snapshot was never recorded — the harness must refuse to
        # validate rather than vacuously pass.
        config = SystemConfig().scaled(512)
        span = config.epoch_instructions
        sim = Simulation(config, "frm", ["gcc"], span * 2, seed=1)
        sim.run(crash_at_instructions=span + span // 2)
        with pytest.raises(RecoveryError, match="oracle"):
            validate_recovery(sim)

    def test_unfired_plan_reported_not_hidden(self):
        event = CrashEvent(
            "never",
            "plan",
            make_plan=lambda c, n: CrashPlan.on_event("acs_scan", 10_000),
        )
        outcome = run_cell(CONFIG, "frm", event, "gcc", 2, seed=1)
        assert not outcome.triggered
        assert outcome.status == "ok"  # final-state recovery still checked

    def test_matrix_filters_schemes_per_event(self):
        events = [e for e in matrix_events() if e.name == "undo-flush-torn"]
        outcomes = run_crash_matrix(CONFIG, epochs=4, events=events)
        assert [o.scheme for o in outcomes] == ["picl"]

    def test_validation_failure_is_captured_not_raised(self, monkeypatch):
        event = {e.name: e for e in matrix_events()}["mid-epoch"]

        def always_diverges(sim):
            raise RecoveryError("injected divergence")

        monkeypatch.setattr(
            "repro.fault.harness.validate_recovery", always_diverges
        )
        outcome = run_cell(CONFIG, "frm", event, "gcc", 4, seed=1)
        assert outcome.status == "failed"
        assert "injected divergence" in outcome.detail

    def test_full_matrix_is_a_superset(self):
        quick = {e.name for e in matrix_events()}
        full = {e.name for e in matrix_events(full=True)}
        assert quick < full
