"""CrashPlan / CrashSignal semantics."""

import pytest

from repro.common.errors import ConfigurationError
from repro.fault.plan import (
    SEMANTIC_SITES,
    SITE_UNDO_FLUSH,
    CrashPlan,
    CrashSignal,
)
from repro.sim.config import SystemConfig


class TestConstruction:
    def test_exactly_one_of_site_or_instructions(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            CrashPlan(None)
        with pytest.raises(ConfigurationError, match="exactly one"):
            CrashPlan(SITE_UNDO_FLUSH, at_instructions=100)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown crash site"):
            CrashPlan("power_supply")

    def test_occurrence_counts_from_one(self):
        with pytest.raises(ConfigurationError, match="occurrence"):
            CrashPlan.on_event(SITE_UNDO_FLUSH, occurrence=0)

    def test_every_semantic_site_constructible(self):
        for site in SEMANTIC_SITES:
            assert CrashPlan.on_event(site).site == site

    def test_at_epoch_boundary_math(self):
        config = SystemConfig().scaled(512)
        span = config.epoch_instructions * config.n_cores
        assert CrashPlan.at_epoch_boundary(config, 2).at_instructions == 2 * span
        assert (
            CrashPlan.at_epoch_boundary(config, 1, offset=-7).at_instructions
            == span - 7
        )
        # Offsets can never produce a non-positive crash point.
        assert CrashPlan.at_epoch_boundary(config, 1, -span * 2).at_instructions == 1


class TestNotify:
    def test_fires_on_nth_occurrence_only(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH, occurrence=3)
        plan.notify(SITE_UNDO_FLUSH)
        plan.notify(SITE_UNDO_FLUSH)
        assert not plan.fired
        with pytest.raises(CrashSignal) as excinfo:
            plan.notify(SITE_UNDO_FLUSH)
        assert plan.fired
        assert excinfo.value.site == SITE_UNDO_FLUSH

    def test_other_sites_ignored(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH)
        plan.notify("llc_eviction")
        plan.notify("acs_scan")
        assert not plan.fired

    def test_signal_is_not_an_exception(self):
        # A model-level `except Exception` must not swallow a power
        # failure; CrashSignal derives from BaseException directly.
        assert not issubclass(CrashSignal, Exception)
        assert issubclass(CrashSignal, BaseException)


class TestFlushTear:
    def test_default_tear_is_half_the_burst(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH)
        assert plan.flush_tear(10) == 5

    def test_explicit_tear_clamped_to_burst(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH, tear_entries=99)
        assert plan.flush_tear(4) == 4
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH, tear_entries=0)
        assert plan.flush_tear(4) == 0

    def test_earlier_flushes_survive_intact(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH, occurrence=2)
        assert plan.flush_tear(6) is None  # first flush: not yet
        assert plan.flush_tear(6) == 3  # second: torn

    def test_other_site_plans_never_tear(self):
        plan = CrashPlan.on_event("acs_scan")
        assert plan.flush_tear(6) is None

    def test_trip_fires_unconditionally(self):
        plan = CrashPlan.on_event(SITE_UNDO_FLUSH)
        with pytest.raises(CrashSignal):
            plan.trip(SITE_UNDO_FLUSH)
        assert plan.fired


class TestDescribe:
    def test_labels(self):
        assert CrashPlan.at(500).describe() == "instructions=500"
        assert (
            CrashPlan.on_event(SITE_UNDO_FLUSH, 2, tear_entries=1).describe()
            == "undo_flush#2(tear=1)"
        )
        assert "fired=False" in repr(CrashPlan.at(500))
