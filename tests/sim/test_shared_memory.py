"""Shared-memory multicore: coherence, undo forwarding, and recovery
when cores store to the *same* lines.

The paper's evaluation is multiprogram (disjoint address spaces), but
its §IV-C Multi-core discussion requires correctness under sharing:
"data writes from different cores and threads share the same epoch ID
... thus recovery applies system-wide."
"""

import pytest

from helpers import images_equal
from repro.sim.config import SystemConfig
from repro.sim.interactive import InteractiveSystem
from repro.sim.simulator import SCHEME_NAMES, Simulation

RECOVERABLE = [s for s in SCHEME_NAMES if s != "ideal"]


def shared_config(n_cores=2, **overrides):
    defaults = dict(track_reference=True, reference_depth=64)
    defaults.update(overrides)
    return SystemConfig().scaled(256, n_cores=n_cores, **defaults)


class TestSharedTraceRuns:
    def test_cores_actually_share_lines(self):
        config = shared_config()
        sim = Simulation(
            config, "ideal", ["gcc", "gcc"], 20_000, shared_memory=True
        )
        sim.run()
        assert sim.stats.get("llc.snoops") > 0

    def test_disjoint_by_default(self):
        config = shared_config()
        sim = Simulation(config, "ideal", ["gcc", "gcc"], 20_000)
        sim.run()
        assert sim.stats.get("llc.snoops") == 0


class TestSharedRecovery:
    @pytest.mark.parametrize("scheme", RECOVERABLE)
    def test_crash_recovery_under_sharing(self, scheme):
        config = shared_config(n_cores=4)
        sim = Simulation(
            config,
            scheme,
            ["gcc", "bzip2", "gcc", "lbm"],
            25_000,
            seed=11,
            shared_memory=True,
        )
        sim.run(crash_at_instructions=4 * 25_000 // 2)
        image, commit_id, reference = sim.crash_and_recover()
        assert reference is not None, commit_id
        assert images_equal(image, reference)

    @pytest.mark.parametrize("crash_fraction", [0.3, 0.8])
    def test_picl_sharing_many_crash_points(self, crash_fraction):
        config = shared_config()
        sim = Simulation(
            config, "picl", ["astar", "astar"], 40_000, seed=5, shared_memory=True
        )
        sim.run(crash_at_instructions=int(2 * 40_000 * crash_fraction))
        image, _commit_id, reference = sim.crash_and_recover()
        assert reference is not None
        assert images_equal(image, reference)


class TestCrossCoreStoreSemantics:
    def test_cross_core_cross_epoch_store_creates_undo(self):
        # Core 0 writes a line in epoch 0; core 1 rewrites it in epoch 1.
        # The undo entry must carry core 0's value and epoch tag.
        system = InteractiveSystem("picl", shared_config())
        token0 = system.store(0x40, core=0)
        system.end_epoch()
        system.store(0x40, core=1)
        entries = [
            e for e in system.scheme.buffer.pending_entries() if e.addr == 0x40
        ]
        cross = entries[-1]
        assert cross.token == token0
        assert cross.valid_from == 0
        assert cross.valid_till == 1

    def test_snooped_data_visible_to_other_core(self):
        system = InteractiveSystem("picl", shared_config())
        token = system.store(0x40, core=0)
        assert system.load(0x40, core=1) == token

    def test_shared_line_recovery_exact(self):
        import dataclasses

        config = shared_config()
        config.picl = dataclasses.replace(config.picl, acs_gap=1)
        system = InteractiveSystem("picl", config)
        a = system.store(0x40, core=0)
        system.end_epoch()
        system.store(0x40, core=1)
        system.end_epoch()  # persists epoch 0
        system.store(0x40, core=0)
        image, commit_id, reference = system.crash_and_recover()
        assert commit_id == 0
        assert reference == {0x40: a}
        assert images_equal(image, reference)
