"""Sweep helpers."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.sweep import default_config, run_matrix, run_mix, run_single


def config():
    return SystemConfig().scaled(256)


N = 40_000


class TestRunSingle:
    def test_returns_result(self):
        result = run_single(config(), "ideal", "gcc", N)
        assert result.scheme_name == "ideal"
        assert result.benchmarks == ["gcc"]


class TestRunMatrix:
    def test_grid_shape(self):
        results = run_matrix(config(), ["ideal", "picl"], ["gcc", "gamess"], N)
        assert set(results) == {"gcc", "gamess"}
        assert set(results["gcc"]) == {"ideal", "picl"}

    def test_same_trace_across_schemes(self):
        results = run_matrix(config(), ["ideal", "picl"], ["gcc"], N)
        ideal = results["gcc"]["ideal"]
        picl = results["gcc"]["picl"]
        assert ideal.instructions == picl.instructions

    def test_different_benchmarks_get_different_seeds(self):
        results = run_matrix(config(), ["ideal"], ["gcc", "bzip2"], N)
        assert (
            results["gcc"]["ideal"].cycles != results["bzip2"]["ideal"].cycles
        )


class TestRunMix:
    def test_mix_runs_eight_cores(self):
        cfg = SystemConfig().scaled(256, n_cores=8)
        result = run_mix(cfg, "ideal", "W0", 5_000)
        assert len(result.per_core_cycles) == 8
        assert result.benchmarks[0] == "h264ref"

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_mix(config(), "ideal", "W0", 5_000)


class TestDefaultConfig:
    def test_scale(self):
        assert default_config(scale=64).scale == 64

    def test_overrides(self):
        assert default_config(scale=64, n_cores=8).n_cores == 8
