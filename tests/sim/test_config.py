"""System configuration and coherent scaling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB
from repro.sim.config import SystemConfig
from repro.trace.profiles import get_profile


class TestTableIvDefaults:
    def test_cache_sizes(self):
        config = SystemConfig()
        assert config.l1_size == 32 * KB
        assert config.l2_size == 256 * KB
        assert config.llc_size_per_core == 2 * MB

    def test_epoch_length(self):
        assert SystemConfig().epoch_instructions == 30_000_000

    def test_nvm_latencies(self):
        config = SystemConfig()
        assert config.nvm.row_read_ns == 128.0
        assert config.nvm.row_write_ns == 368.0

    def test_translation_tables(self):
        config = SystemConfig()
        assert config.journal_table_entries == 6144
        assert config.shadow_table_entries == 6144
        assert config.thynvm_block_entries == 2048
        assert config.thynvm_page_entries == 4096
        assert config.table_assoc == 16

    def test_picl_defaults(self):
        picl = SystemConfig().picl
        assert picl.acs_gap == 3
        assert picl.undo_buffer_entries == 32
        assert picl.undo_flush_bytes == 2 * KB
        assert picl.bloom_bits == 4096


class TestValidation:
    def test_bad_cores(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_cores=0)

    def test_bad_epoch(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(epoch_instructions=0)

    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().scaled(3)


class TestScaling:
    def test_everything_shrinks_together(self):
        config = SystemConfig().scaled(64)
        assert config.llc_size_per_core == 2 * MB // 64
        assert config.epoch_instructions == 30_000_000 // 64
        assert config.journal_table_entries == 6144 // 64

    def test_scale_recorded(self):
        assert SystemConfig().scaled(64).scale == 64

    def test_scaling_composes(self):
        config = SystemConfig().scaled(8).scaled(8)
        assert config.scale == 64

    def test_private_cache_floors(self):
        config = SystemConfig().scaled(1024)
        assert config.l1_size >= 4 * KB
        assert config.l2_size >= 16 * KB
        assert config.llc_size_per_core >= 32 * KB

    def test_table_floor(self):
        config = SystemConfig().scaled(1024)
        assert config.journal_table_entries >= 4 * config.table_assoc

    def test_overrides_win(self):
        config = SystemConfig().scaled(64, n_cores=8)
        assert config.n_cores == 8

    def test_scale_profile(self):
        config = SystemConfig().scaled(64)
        profile = get_profile("gcc")
        scaled = config.scale_profile(profile)
        assert scaled.working_set_bytes == profile.working_set_bytes // 64

    def test_scale_one_profile_passthrough(self):
        config = SystemConfig()
        profile = get_profile("gcc")
        assert config.scale_profile(profile) is profile

    def test_capacity_ratios_preserved(self):
        base = SystemConfig()
        scaled = base.scaled(64)
        base_ratio = base.journal_table_entries / (base.llc_size_per_core // 64)
        scaled_ratio = scaled.journal_table_entries / (
            scaled.llc_size_per_core // 64
        )
        assert scaled_ratio == pytest.approx(base_ratio)
