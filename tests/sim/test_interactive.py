"""InteractiveSystem: the single-stepping public API."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.interactive import InteractiveSystem
from repro.sim.simulator import SCHEME_NAMES


class TestBasics:
    def test_default_config_is_scaled(self):
        system = InteractiveSystem("ideal")
        assert system.config.scale == 256

    def test_store_returns_token(self):
        system = InteractiveSystem("ideal")
        token = system.store(0x40)
        assert token > 0

    def test_load_sees_stored_value(self):
        system = InteractiveSystem("ideal")
        token = system.store(0x40)
        assert system.load(0x40) == token

    def test_time_advances(self):
        system = InteractiveSystem("ideal")
        before = system.now
        system.store(0x40)
        assert system.now > before

    def test_advance(self):
        system = InteractiveSystem("ideal")
        system.advance(100)
        assert system.now == 100

    def test_arch_state_tracks_stores(self):
        system = InteractiveSystem("ideal")
        token = system.store(0x40)
        assert system.arch_state() == {0x40: token}


class TestEpochs:
    def test_end_epoch_commits(self):
        system = InteractiveSystem("picl")
        system.store(0x40)
        system.end_epoch()
        assert system.system.commit_count == 1

    def test_end_epoch_advances_time_by_stall(self):
        system = InteractiveSystem("frm")
        system.store(0x40)
        before = system.now
        stall = system.end_epoch()
        assert system.now == before + stall


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "scheme", [s for s in SCHEME_NAMES if s != "ideal"]
    )
    def test_recovery_matches_reference(self, scheme):
        system = InteractiveSystem(scheme)
        for i in range(12):
            system.store(0x1000 + i * 64)
            if i % 4 == 3:
                system.end_epoch()
        image, _commit_id, reference = system.crash_and_recover()
        assert reference is not None
        for addr in set(image) | set(reference):
            assert image.get(addr, 0) == reference.get(addr, 0)

    def test_ideal_has_no_reference(self):
        system = InteractiveSystem("ideal")
        system.store(0x40)
        _image, commit_id, reference = system.crash_and_recover()
        assert commit_id is None
        assert reference is None

    def test_custom_config(self):
        config = SystemConfig().scaled(512)
        system = InteractiveSystem("picl", config)
        assert system.config is config
