"""Bit-identity of the batched miss-chain engine.

``REPRO_BATCH_MISS`` (default on) swaps the columnar interpreter's
residual path — per-reference replay through ``CacheHierarchy.access``
— for the fused drain of :mod:`repro.cache.miss_engine`: the whole
L2/LLC/NVM chain transcribed into one loop with deferred batch
bookkeeping. Like the interpreter itself, this is an optimization, not a
model change, so this file drives the engine (``REPRO_BATCH_MISS=1``)
and the scalar chain (``=0``) — both under ``REPRO_VECTOR=1`` — over the
same points and asserts exact equality of every observable: cycles,
stalls, tokens, the architectural image, the full stat snapshot, and
crash-recovery output.

Beyond the scheme x benchmark matrix, the suite aims at exactly the
state the engine defers or transcribes:

* semantic crash sites *inside* a drained window (LLC-eviction window,
  torn undo flush, the pre-in-place window) — the deferred undo run and
  channel locals must land before any ``CrashSignal`` can observe them;
* PiCL's store-filter regimes (plain / sub-block / capped log), which
  select the three store-dispatch modes of the drain;
* the decline gates (flag off, banked open-page device, multi-channel,
  multi-core) — ineligible configs must fall back to the scalar chain;
* the ``REPRO_MISS_PROFILE`` differential oracles: after an engine run
  the L2/LLC mirror planes and the LLC EID index must verify clean
  against a brute-force sweep of the live caches;
* a hypothesis fuzz over the workload-profile space, so the drain's
  window interleavings are exercised on shapes no curated benchmark
  hits.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.miss_engine import build_engine
from repro.common.units import MB
from repro.fault.plan import CrashPlan
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation
from repro.trace import profiles
from repro.trace.profiles import WorkloadProfile


def small_config(**overrides):
    defaults = dict(track_reference=True, reference_depth=32)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


N = 60_000  # a few scheduled epochs at scale 256

SCHEMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")


def run_mode(
    batched,
    config,
    scheme,
    bench,
    n,
    seed,
    crash_at=None,
    plan=None,
    expect_engine=None,
):
    """Run one simulation with the miss-chain engine on or off.

    ``REPRO_VECTOR`` is read when the hierarchy is built and
    ``REPRO_BATCH_MISS`` when the interpreter starts a run, so both stay
    pinned across construction *and* ``run()`` — and are restored after,
    so the two modes cannot leak into each other. ``expect_engine``
    overrides the default gate check (engine attached iff ``batched``)
    for configs the engine deliberately declines.
    """
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_VECTOR", "REPRO_BATCH_MISS")
    }
    os.environ["REPRO_VECTOR"] = "1"
    os.environ["REPRO_BATCH_MISS"] = "1" if batched else "0"
    if expect_engine is None:
        expect_engine = batched
    try:
        sim = Simulation(config, scheme, [bench], n, seed=seed)
        # The gate must actually take effect, or the test compares the
        # engine against itself (or the scalar chain against itself).
        assert (build_engine(sim) is not None) == expect_engine
        sim.run(crash_at_instructions=crash_at, crash_plan=plan)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return sim


def assert_identical(scalar, batched):
    """Every observable of the two simulations must match exactly."""
    a, b = scalar.result(), batched.result()
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.per_core_cycles == b.per_core_cycles
    assert scalar.cores[0].mem_stall_cycles == batched.cores[0].mem_stall_cycles
    assert scalar.system._next_token == batched.system._next_token
    assert scalar.system.arch_image == batched.system.arch_image
    assert scalar.stats.snapshot() == batched.stats.snapshot()


# Scheme x benchmark points biased toward miss-heavy traces (the drain
# exists for them), with hmmer/lbm keeping the near-empty-residual and
# long-run regimes honest. Every scheme appears, covering all three
# store-dispatch modes and both write-back transcriptions.
PAIRS = [
    ("ideal", "gcc"),
    ("journaling", "mcf"),
    ("shadow", "gcc"),
    ("frm", "astar"),
    ("thynvm", "mcf"),
    ("picl", "gcc"),
    ("picl", "astar"),
    ("picl", "hmmer"),
    ("picl", "lbm"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("scheme,bench", PAIRS)
    def test_full_run_identical(self, scheme, bench):
        config = small_config()
        scalar = run_mode(False, config, scheme, bench, N, seed=77)
        batched = run_mode(True, config, scheme, bench, N, seed=77)
        assert_identical(scalar, batched)

    def test_sub_block_granularity_identical(self):
        # 16 B tracking forces the store filter off, so every store in a
        # drained window goes through the out-of-line on_store call site.
        config = small_config()
        config = dataclasses.replace(
            config, picl=dataclasses.replace(config.picl, tracking_granularity=16)
        )
        scalar = run_mode(False, config, "picl", "gcc", N, seed=21)
        batched = run_mode(True, config, "picl", "gcc", N, seed=21)
        assert_identical(scalar, batched)

    def test_capped_log_identical(self):
        # A hard log cap disables plain mode: the drain must dispatch
        # stores out of line and never touch the deferred undo run.
        config = small_config()
        config = dataclasses.replace(
            config,
            picl=dataclasses.replace(config.picl, log_max_bytes=64 * 1024 * 1024),
        )
        scalar = run_mode(False, config, "picl", "gcc", N, seed=33)
        batched = run_mode(True, config, "picl", "gcc", N, seed=33)
        assert_identical(scalar, batched)


class TestCrashSites:
    """Crashes landing *inside* a drained window must observe the exact
    scalar-chain state: deferred counters, cycles, tokens, and the
    pending undo run all land (via the drain's ``finally`` and pre-site
    merges) before the signal propagates."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_instruction_crash_identical(self, scheme):
        config = small_config()
        crash_at = N // 2 + 137  # mid-epoch, not on a boundary
        scalar = run_mode(
            False, config, scheme, "gcc", N, seed=9, crash_at=crash_at
        )
        batched = run_mode(
            True, config, scheme, "gcc", N, seed=9, crash_at=crash_at
        )
        assert scalar.crashed and batched.crashed
        assert_identical(scalar, batched)
        image_a, commit_a, ref_a = scalar.crash_and_recover()
        image_b, commit_b, ref_b = batched.crash_and_recover()
        assert commit_a == commit_b
        assert image_a == image_b
        assert ref_a == ref_b

    # Occurrences chosen deep enough that the site fires from a drain in
    # a miss-heavy phase, not from the first scalar warm-up window.
    SITE_PLANS = [
        ("llc_eviction", "picl", dict(occurrence=300)),
        ("llc_eviction", "journaling", dict(occurrence=15)),
        ("undo_flush", "picl", dict(occurrence=3, tear_entries=7)),
        ("pre_inplace", "picl", dict(occurrence=200)),
    ]

    @pytest.mark.parametrize("site,scheme,kwargs", SITE_PLANS)
    def test_semantic_site_crash_identical(self, site, scheme, kwargs):
        config = small_config()
        plan_a = CrashPlan.on_event(site, **kwargs)
        plan_b = CrashPlan.on_event(site, **kwargs)
        scalar = run_mode(
            False, config, scheme, "gcc", N, seed=5, plan=plan_a
        )
        batched = run_mode(
            True, config, scheme, "gcc", N, seed=5, plan=plan_b
        )
        # Both modes must reach the site the same number of times, and
        # these occurrences are chosen so the site actually fires.
        assert plan_a.fired and plan_b.fired
        assert scalar.crashed == batched.crashed
        assert_identical(scalar, batched)
        if scalar.crashed:
            image_a, commit_a, ref_a = scalar.crash_and_recover()
            image_b, commit_b, ref_b = batched.crash_and_recover()
            assert commit_a == commit_b
            assert image_a == image_b
            assert ref_a == ref_b


class TestGate:
    def test_engine_attached_by_default(self):
        sim = Simulation(small_config(), "picl", ["gcc"], 1_000, seed=1)
        assert build_engine(sim) is not None

    def test_flag_disables(self, monkeypatch):
        sim = Simulation(small_config(), "picl", ["gcc"], 1_000, seed=1)
        monkeypatch.setenv("REPRO_BATCH_MISS", "0")
        assert build_engine(sim) is None

    def test_no_mirror_declines(self, monkeypatch):
        # No columnar L1 mirror (REPRO_VECTOR=0) means no windows to
        # drain; the engine requires the interpreter.
        monkeypatch.setenv("REPRO_VECTOR", "0")
        sim = Simulation(small_config(), "picl", ["gcc"], 1_000, seed=1)
        assert build_engine(sim) is None

    def test_multi_core_declines(self):
        config = dataclasses.replace(small_config(), n_cores=2)
        sim = Simulation(config, "picl", ["gcc", "mcf"], 1_000, seed=1)
        assert build_engine(sim) is None

    def test_open_page_device_declines(self):
        # The banked open-page device has per-bank row state the inline
        # channel recurrence does not model.
        config = small_config()
        config = dataclasses.replace(
            config, nvm=dataclasses.replace(config.nvm, page_policy="open")
        )
        sim = Simulation(config, "picl", ["gcc"], 1_000, seed=1)
        assert build_engine(sim) is None

    def test_multi_channel_declines(self):
        config = small_config()
        config = dataclasses.replace(
            config, nvm=dataclasses.replace(config.nvm, n_channels=2)
        )
        sim = Simulation(config, "picl", ["gcc"], 1_000, seed=1)
        assert build_engine(sim) is None

    @pytest.mark.parametrize("config_fn", [
        lambda c: dataclasses.replace(
            c, nvm=dataclasses.replace(c.nvm, page_policy="open")
        ),
        lambda c: dataclasses.replace(
            c, nvm=dataclasses.replace(c.nvm, n_channels=2)
        ),
    ])
    def test_declined_configs_still_identical(self, config_fn):
        # With the engine declined, REPRO_BATCH_MISS=1 and =0 must run
        # the very same scalar path — the flag is inert, not harmful.
        config = config_fn(small_config())
        scalar = run_mode(False, config, "picl", "gcc", 20_000, seed=3)
        batched_flag = run_mode(
            True, config, "picl", "gcc", 20_000, seed=3, expect_engine=False
        )
        assert_identical(scalar, batched_flag)


class TestMirrorOracles:
    """``REPRO_MISS_PROFILE=1`` attaches LevelMirror planes to L2/LLC;
    the drain maintains their queues eagerly at every eviction site, so
    after a full engine run a sync + brute-force diff must be clean —
    and the LLC EID index must survive the drain's inline discards and
    retags exactly."""

    def test_planes_and_index_verify_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "1")
        monkeypatch.setenv("REPRO_BATCH_MISS", "1")
        monkeypatch.setenv("REPRO_MISS_PROFILE", "1")
        sim = Simulation(small_config(), "picl", ["gcc"], N, seed=13)
        assert build_engine(sim) is not None
        sim.run()
        hierarchy = sim.hierarchy
        l2, llc = hierarchy._l2[0], hierarchy.llc
        assert l2._vec is not None and llc._vec is not None
        l2._vec.sync_level(l2)
        llc._vec.sync_level(llc)
        assert l2._vec.verify_against(l2) == []
        assert llc._vec.verify_against(llc) == []
        assert llc.eid_index.verify_against(llc) == []

    def test_classify_matches_drain_outcome_scale(self, monkeypatch):
        # classify() is advisory, but its totals must at least be sane:
        # every residual miss lands in exactly one class.
        monkeypatch.setenv("REPRO_VECTOR", "1")
        monkeypatch.setenv("REPRO_BATCH_MISS", "1")
        monkeypatch.setenv("REPRO_MISS_PROFILE", "1")
        sim = Simulation(small_config(), "picl", ["gcc"], 20_000, seed=4)
        engine = build_engine(sim)
        sim.run()
        profile = engine.classify([line.addr for line in
                                   list(sim.hierarchy.llc._tags.values())[:64]])
        assert profile is not None
        assert (
            profile["l2_hits"] + profile["llc_hits"] + profile["nvm_fills"]
            == profile["misses"]
        )
        assert 0 <= profile["dirty_victim_fills"] <= profile["nvm_fills"]


# Workload space for the fuzz, constrained exactly as
# WorkloadProfile.__post_init__ demands (mirrors test_vectorized).
_fuzz_profiles = st.builds(
    lambda mem, wf, seq, chase_scale, ws, alpha, run, sb, zb_scale: WorkloadProfile(
        "_fuzz",
        mem_ratio=mem,
        write_frac=wf,
        working_set_bytes=ws * MB,
        seq_frac=seq,
        chase_frac=min((1.0 - seq) * chase_scale, 1.0 - seq),
        zipf_alpha=alpha,
        category="fuzz",
        seq_run=run,
        write_seq_bias=sb,
        write_zipf_bias=min((1.0 - sb) * zb_scale, 1.0 - sb),
    ),
    mem=st.floats(0.05, 1.0),
    wf=st.floats(0.0, 1.0),
    seq=st.floats(0.0, 1.0),
    chase_scale=st.floats(0.0, 1.0),
    ws=st.integers(1, 64),
    alpha=st.floats(0.05, 1.5),
    run=st.integers(1, 16),
    sb=st.floats(0.0, 1.0),
    zb_scale=st.floats(0.0, 1.0),
)


class TestFuzz:
    @settings(max_examples=10, deadline=None)
    @given(
        profile=_fuzz_profiles,
        scheme=st.sampled_from(SCHEMES),
        seed=st.integers(0, 2**20),
    )
    def test_random_workloads_identical(self, profile, scheme, seed):
        profiles._BY_NAME["_fuzz"] = profile
        try:
            scalar = run_mode(
                False, small_config(), scheme, "_fuzz", 20_000, seed=seed
            )
            batched = run_mode(
                True, small_config(), scheme, "_fuzz", 20_000, seed=seed
            )
        finally:
            del profiles._BY_NAME["_fuzz"]
        assert_identical(scalar, batched)
