"""Simulation driver: trace execution, epochs, determinism, crash API."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.config import SystemConfig
from repro.sim.simulator import SCHEME_NAMES, Simulation, build_scheme


def small_config(**overrides):
    defaults = dict(track_reference=True, reference_depth=32)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


N = 60_000  # a few scheduled epochs at scale 256


class TestBasicRun:
    def test_run_executes_all_instructions(self):
        sim = Simulation(small_config(), "ideal", ["gcc"], N)
        result = sim.run()
        assert result.instructions >= N

    def test_run_is_single_use(self):
        sim = Simulation(small_config(), "ideal", ["gcc"], N)
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_epoch_boundaries_fire(self):
        config = small_config()
        sim = Simulation(config, "picl", ["gcc"], N)
        result = sim.run()
        expected = N // config.epoch_instructions
        assert result.commits == expected

    def test_cycles_accumulate(self):
        result = Simulation(small_config(), "ideal", ["gcc"], N).run()
        assert result.cycles > N // 2

    def test_benchmark_count_must_match_cores(self):
        with pytest.raises(ConfigurationError):
            Simulation(small_config(), "ideal", ["gcc", "lbm"], N)

    def test_string_benchmark_accepted(self):
        sim = Simulation(small_config(), "ideal", "gcc", N)
        assert sim.benchmarks == ["gcc"]


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = Simulation(small_config(), "picl", ["gcc"], N, seed=5).run()
        b = Simulation(small_config(), "picl", ["gcc"], N, seed=5).run()
        assert a.cycles == b.cycles
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_different_seed_different_result(self):
        a = Simulation(small_config(), "picl", ["gcc"], N, seed=5).run()
        b = Simulation(small_config(), "picl", ["gcc"], N, seed=6).run()
        assert a.cycles != b.cycles


class TestSchemes:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_every_scheme_runs(self, scheme):
        result = Simulation(small_config(), scheme, ["gcc"], N).run()
        assert result.instructions >= N

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulation(small_config(), "magic", ["gcc"], N)

    def test_build_scheme_names(self):
        from helpers import SchemeHarness

        harness = SchemeHarness("ideal")
        for name in SCHEME_NAMES:
            scheme = build_scheme(name, harness.system, harness.config)
            assert scheme.name == name


class TestMulticore:
    def test_eight_core_run(self):
        config = small_config(n_cores=8)
        benchmarks = ["gcc", "lbm", "gamess", "mcf", "astar", "bzip2", "wrf", "milc"]
        result = Simulation(config, "picl", benchmarks, 20_000).run()
        assert result.instructions >= 8 * 20_000
        assert len(result.per_core_cycles) == 8

    def test_cores_have_disjoint_address_spaces(self):
        config = small_config(n_cores=2)
        sim = Simulation(config, "ideal", ["gcc", "gcc"], 10_000)
        sim.run()
        assert sim.stats.get("llc.snoops") == 0


class TestCrashApi:
    def test_crash_stops_early(self):
        sim = Simulation(small_config(), "picl", ["gcc"], N)
        result = sim.run(crash_at_instructions=N // 2)
        assert sim.crashed
        assert result.instructions < N

    def test_crash_and_recover_returns_reference(self):
        config = small_config()
        sim = Simulation(config, "picl", ["gcc"], N)
        sim.run(crash_at_instructions=int(N * 0.8))
        image, commit_id, reference = sim.crash_and_recover()
        assert image is not None
        if commit_id is not None and commit_id >= 0:
            assert reference is not None

    def test_ideal_crash_has_no_reference(self):
        sim = Simulation(small_config(), "ideal", ["gcc"], N)
        sim.run(crash_at_instructions=N // 2)
        _image, commit_id, reference = sim.crash_and_recover()
        assert commit_id is None
        assert reference is None
