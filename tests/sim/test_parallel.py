"""Parallel executor and on-disk result cache.

The load-bearing property: a parallel sweep is *bit-identical* to a serial
one — same cycles, same instruction counts, same value for every single
stat counter — because each grid point carries its own explicit seed.
"""

import os

import pytest

from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ResultCache,
    RunPoint,
    resolve_jobs,
    run_keyed,
    run_points,
)
from repro.sim.sweep import run_matrix

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions * 2
SCHEMES = ["ideal", "picl"]
BENCHMARKS = ["gcc", "gamess"]


def fingerprint(result):
    """Everything observable about a result, stat counters included."""
    return {
        "scheme": result.scheme_name,
        "benchmarks": result.benchmarks,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "per_core_cycles": result.per_core_cycles,
        "stats": result.stats_dict(),
    }


def _big_payload(index):
    """~1 MB of index-tagged content: a torn read would be detectable."""
    return [index] * 4 + list(range(125_000))


def _store_repeatedly(root, point, index, n):
    """Writer-process body for the concurrent-store test (fork target)."""
    cache = ResultCache(root)
    payload = _big_payload(index)
    for _ in range(n):
        cache.store(point, payload)


class TestDeterminism:
    def test_run_matrix_parallel_bit_identical_to_serial(self):
        serial = run_matrix(CONFIG, SCHEMES, BENCHMARKS, N, jobs=1)
        parallel = run_matrix(CONFIG, SCHEMES, BENCHMARKS, N, jobs=4)
        for benchmark in BENCHMARKS:
            for scheme in SCHEMES:
                a = fingerprint(serial[benchmark][scheme])
                b = fingerprint(parallel[benchmark][scheme])
                # Compare counters one by one so a mismatch names itself.
                assert a["stats"].keys() == b["stats"].keys()
                for counter, value in a["stats"].items():
                    assert b["stats"][counter] == value, counter
                assert a == b

    def test_run_points_preserves_input_order(self):
        points = [
            RunPoint.single(CONFIG, scheme, "gcc", N, seed=1234)
            for scheme in ("ideal", "picl", "frm")
        ]
        results = run_points(points, jobs=2)
        assert [r.scheme_name for r in results] == ["ideal", "picl", "frm"]

    def test_run_keyed(self):
        pairs = [
            (scheme, RunPoint.single(CONFIG, scheme, "gcc", N, seed=1))
            for scheme in ("ideal", "picl")
        ]
        results = run_keyed(pairs, jobs=2)
        assert set(results) == {"ideal", "picl"}
        assert results["picl"].scheme_name == "picl"


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_auto_uses_available_cpus(self):
        # "auto" means the CPUs this process may actually run on: the
        # scheduling affinity mask where the platform exposes one
        # (cgroup/taskset limits), the raw count otherwise.
        try:
            expected = len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):
            expected = os.cpu_count() or 1
        assert resolve_jobs("auto") == expected
        assert resolve_jobs(0) == expected

    def test_string_count(self):
        assert resolve_jobs("4") == 4

    def test_garbage_rejected_with_clear_error(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="bogus"):
            resolve_jobs("bogus")


class TestResultCache:
    @pytest.fixture
    def cache(self, tmp_path):
        return ResultCache(str(tmp_path / "cache"))

    @pytest.fixture
    def point(self):
        return RunPoint.single(CONFIG, "picl", "gcc", N, seed=7)

    def test_miss_then_hit(self, cache, point):
        first = run_points([point], cache=cache)[0]
        assert cache.misses == 1 and cache.hits == 0
        second = run_points([point], cache=cache)[0]
        assert cache.hits == 1
        assert fingerprint(first) == fingerprint(second)

    def test_warm_cache_does_no_simulation(self, cache, point, monkeypatch):
        run_points([point], cache=cache)

        def boom(*_args, **_kwargs):
            raise AssertionError("simulated despite a warm cache")

        monkeypatch.setattr("repro.sim.parallel.Simulation", boom)
        result = run_points([point], cache=cache)[0]
        assert result.scheme_name == "picl"

    def test_key_changes_with_config(self, cache, point):
        other_config = SystemConfig().scaled(512, l1_assoc=8)
        other = RunPoint.single(other_config, "picl", "gcc", N, seed=7)
        assert cache.key(point) != cache.key(other)

    def test_key_changes_with_nested_config(self, cache, point):
        import dataclasses

        config = SystemConfig().scaled(512)
        config.picl = dataclasses.replace(config.picl, acs_gap=1)
        other = RunPoint.single(config, "picl", "gcc", N, seed=7)
        assert cache.key(point) != cache.key(other)

    def test_key_changes_with_seed_and_scheme(self, cache, point):
        keys = {
            cache.key(point),
            cache.key(RunPoint.single(CONFIG, "picl", "gcc", N, seed=8)),
            cache.key(RunPoint.single(CONFIG, "ideal", "gcc", N, seed=7)),
            cache.key(RunPoint.single(CONFIG, "picl", "lbm", N, seed=7)),
        }
        assert len(keys) == 4

    def test_corrupted_entry_falls_back_to_simulation(self, cache, point):
        first = run_points([point], cache=cache)[0]
        path = cache._path(cache.key(point))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        again = run_points([point], cache=cache)[0]
        assert fingerprint(again) == fingerprint(first)
        # The corrupted bytes were quarantined, not destroyed.
        assert cache.quarantined == 1
        corrupt_dir = os.path.join(cache.root, "corrupt")
        assert os.listdir(corrupt_dir) == [os.path.basename(path)]
        # The fresh result was stored; the next load is a clean hit.
        hits_before = cache.hits
        run_points([point], cache=cache)
        assert cache.hits == hits_before + 1

    def test_from_env_honors_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert ResultCache.from_env() is None

    def test_concurrent_stores_never_tear_a_reader(self, tmp_path, point):
        # Three writer processes hammer the same key with ~1 MB payloads
        # while a reader loads in a loop. Because store() goes through a
        # private temp file + atomic rename, every load must observe
        # either nothing or one complete payload — never a mix, never a
        # quarantine.
        import multiprocessing

        root = str(tmp_path / "cache")
        ResultCache(root).store(point, _big_payload(0))
        writers = [
            multiprocessing.Process(
                target=_store_repeatedly, args=(root, point, index, 25)
            )
            for index in range(3)
        ]
        for proc in writers:
            proc.start()
        reader = ResultCache(root)
        valid = {tuple(_big_payload(index)[:4]) for index in range(4)}
        observed = 0
        try:
            while any(proc.is_alive() for proc in writers):
                loaded = reader.load(point)
                if loaded is not None:
                    assert tuple(loaded[:4]) in valid
                    assert len(loaded) == len(_big_payload(0))
                    observed += 1
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        assert observed > 0, "reader never saw a stored payload"
        # No load ever hit a torn entry: nothing was quarantined.
        assert reader.quarantined == 0
        assert not os.path.exists(os.path.join(root, "corrupt"))
        # And the final state is one clean, loadable entry.
        final = ResultCache(root)
        last = final.load(point)
        assert last is not None and tuple(last[:4]) in valid
        assert final.hits == 1 and final.quarantined == 0

    def test_from_env_honors_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = ResultCache.from_env()
        assert cache.root == str(tmp_path / "c")


class TestFigureCaching:
    def test_warm_figure_rerun_does_no_simulation(self, tmp_path, monkeypatch):
        from repro.experiments import fig09

        cache = ResultCache(str(tmp_path / "cache"))
        first = fig09.run("ci", benchmarks=["gcc"], epochs=1, cache=cache)

        def boom(*_args, **_kwargs):
            raise AssertionError("simulated despite a warm cache")

        monkeypatch.setattr("repro.sim.parallel.Simulation", boom)
        again = fig09.run("ci", benchmarks=["gcc"], epochs=1, cache=cache)
        assert again == first
