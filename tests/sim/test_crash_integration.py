"""End-to-end crash/recovery: full simulator, every scheme, many crash points.

This is the integration version of the harness-level property tests:
realistic synthetic traces through the full hierarchy + scheme + NVM, a
crash injected mid-run, and recovery checked token-exactly against the
architectural snapshot of the scheme's last commit.
"""

import pytest

from helpers import images_equal
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation

RECOVERABLE_SCHEMES = ("picl", "frm", "journaling", "shadow", "thynvm")


def small_config(**overrides):
    defaults = dict(track_reference=True, reference_depth=64)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


N = 80_000


@pytest.mark.parametrize("scheme", RECOVERABLE_SCHEMES)
@pytest.mark.parametrize("crash_fraction", [0.15, 0.5, 0.9])
def test_crash_recovery_end_to_end(scheme, crash_fraction):
    sim = Simulation(small_config(), scheme, ["gcc"], N, seed=42)
    sim.run(crash_at_instructions=int(N * crash_fraction))
    image, commit_id, reference = sim.crash_and_recover()
    assert reference is not None, "no snapshot for commit %r" % (commit_id,)
    assert images_equal(image, reference)


@pytest.mark.parametrize("scheme", RECOVERABLE_SCHEMES)
def test_crash_recovery_multicore(scheme):
    config = small_config(n_cores=4)
    benchmarks = ["gcc", "lbm", "gamess", "astar"]
    sim = Simulation(config, scheme, benchmarks, 30_000, seed=9)
    sim.run(crash_at_instructions=4 * 30_000 // 2)
    image, commit_id, reference = sim.crash_and_recover()
    assert reference is not None
    assert images_equal(image, reference)


@pytest.mark.parametrize("bench_name", ["lbm", "astar", "gamess", "mcf"])
def test_picl_recovery_across_workload_characters(bench_name):
    sim = Simulation(small_config(), "picl", [bench_name], N, seed=7)
    sim.run(crash_at_instructions=int(N * 0.7))
    image, _commit_id, reference = sim.crash_and_recover()
    assert reference is not None
    assert images_equal(image, reference)


def test_picl_recovery_with_tiny_acs_gap():
    config = small_config()
    import dataclasses

    config.picl = dataclasses.replace(config.picl, acs_gap=0)
    sim = Simulation(config, "picl", ["gcc"], N, seed=3)
    sim.run(crash_at_instructions=N // 2)
    image, _commit_id, reference = sim.crash_and_recover()
    assert reference is not None
    assert images_equal(image, reference)


def test_picl_recovery_with_max_acs_gap():
    config = small_config()
    import dataclasses

    config.picl = dataclasses.replace(config.picl, acs_gap=8)
    sim = Simulation(config, "picl", ["gcc"], N, seed=3)
    sim.run(crash_at_instructions=int(N * 0.9))
    image, _commit_id, reference = sim.crash_and_recover()
    assert reference is not None
    assert images_equal(image, reference)


def test_crash_before_first_commit_recovers_initial_state():
    sim = Simulation(small_config(), "picl", ["gcc"], N, seed=1)
    sim.run(crash_at_instructions=1000)
    image, commit_id, reference = sim.crash_and_recover()
    assert commit_id == -1
    assert reference == {}
    assert images_equal(image, {})
