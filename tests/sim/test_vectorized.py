"""Bit-identity of the columnar single-core interpreter.

``REPRO_VECTOR`` (default on) swaps :meth:`Simulation._run_single_core`
for the columnar loop in ``_run_single_core_vector``: windows of the
reference stream are classified array-at-a-time against the L1 tag
mirror, all-fast stretches are applied in bulk, and everything else
replays through the exact per-reference path. Like the batching PR
before it, this is an optimization, not a model change — so this file
drives the scalar (``REPRO_VECTOR=0``) and columnar interpreters over
the same points and asserts exact equality of every observable: cycles,
stalls, tokens, the architectural image, the full stat snapshot, and
crash-recovery output.

The matrix deliberately crosses every scheme (each has a different
``vector_store_filter`` contract: always-fast, never-fast, and
EID-conditional) with benchmarks spanning hit-dominated, run-structured,
and miss-heavy traces, plus the configs that force the store filter off
(sub-block granularity, capped log). A hypothesis fuzz then walks the
workload-profile space itself so the classifier's window/repair logic is
exercised on shapes no curated benchmark hits.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation
from repro.trace import profiles
from repro.trace.profiles import WorkloadProfile
from repro.common.units import MB


def small_config(**overrides):
    defaults = dict(track_reference=True, reference_depth=32)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


N = 60_000  # a few scheduled epochs at scale 256

SCHEMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")


def run_mode(vector, config, scheme, bench, n, seed, crash_at=None):
    """Run one simulation with the columnar interpreter on or off.

    ``REPRO_VECTOR`` is read when the hierarchy is built, so the
    environment must be set before ``Simulation`` is constructed — and
    restored afterwards so the two modes cannot leak into each other.
    """
    previous = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = "1" if vector else "0"
    try:
        sim = Simulation(config, scheme, [bench], n, seed=seed)
    finally:
        if previous is None:
            del os.environ["REPRO_VECTOR"]
        else:
            os.environ["REPRO_VECTOR"] = previous
    # The gate must actually have taken effect, or the test compares the
    # scalar interpreter against itself.
    assert (sim.hierarchy._l1[0]._vec is not None) == vector
    sim.run(crash_at_instructions=crash_at)
    return sim


def assert_identical(scalar, columnar):
    """Every observable of the two simulations must match exactly."""
    a, b = scalar.result(), columnar.result()
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.per_core_cycles == b.per_core_cycles
    assert scalar.cores[0].mem_stall_cycles == columnar.cores[0].mem_stall_cycles
    assert scalar.system._next_token == columnar.system._next_token
    assert scalar.system.arch_image == columnar.system.arch_image
    assert scalar.stats.snapshot() == columnar.stats.snapshot()


# Scheme x benchmark points chosen for coverage of the classifier's
# regimes: hmmer (hit-dominated; the bulk path carries nearly every
# window), lbm/h264ref (long same-line runs; the run-based cost model),
# gcc/mcf/astar (miss-heavy; disengage bursts and repair demotions).
PAIRS = [
    ("ideal", "hmmer"),
    ("journaling", "mcf"),
    ("shadow", "gcc"),
    ("frm", "lbm"),
    ("thynvm", "astar"),
    ("picl", "hmmer"),
    ("picl", "gcc"),
    ("picl", "h264ref"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("scheme,bench", PAIRS)
    def test_full_run_identical(self, scheme, bench):
        config = small_config()
        scalar = run_mode(False, config, scheme, bench, N, seed=77)
        columnar = run_mode(True, config, scheme, bench, N, seed=77)
        assert_identical(scalar, columnar)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_crash_run_identical(self, scheme):
        config = small_config()
        crash_at = N // 2 + 137  # mid-epoch, not on a boundary
        scalar = run_mode(False, config, scheme, "gcc", N, seed=9, crash_at=crash_at)
        columnar = run_mode(True, config, scheme, "gcc", N, seed=9, crash_at=crash_at)
        assert scalar.crashed and columnar.crashed
        assert_identical(scalar, columnar)
        image_a, commit_a, ref_a = scalar.crash_and_recover()
        image_b, commit_b, ref_b = columnar.crash_and_recover()
        assert commit_a == commit_b
        assert image_a == image_b
        assert ref_a == ref_b

    def test_sub_block_granularity_identical(self):
        # 16 B tracking makes picl's store filter decline every store, so
        # the columnar loop only bulks loads; stores all go residual.
        config = small_config()
        config = dataclasses.replace(
            config, picl=dataclasses.replace(config.picl, tracking_granularity=16)
        )
        scalar = run_mode(False, config, "picl", "lbm", N, seed=21)
        columnar = run_mode(True, config, "picl", "lbm", N, seed=21)
        assert_identical(scalar, columnar)

    def test_capped_log_identical(self):
        # A hard log cap makes every store check log pressure; the store
        # filter must refuse and the columnar loop must still agree.
        config = small_config()
        config = dataclasses.replace(
            config,
            picl=dataclasses.replace(config.picl, log_max_bytes=64 * 1024 * 1024),
        )
        scalar = run_mode(False, config, "picl", "lbm", N, seed=33)
        columnar = run_mode(True, config, "picl", "lbm", N, seed=33)
        assert_identical(scalar, columnar)


class TestGate:
    def test_mirror_attached_by_default(self):
        sim = Simulation(small_config(), "ideal", ["gcc"], 1_000, seed=1)
        assert sim.hierarchy._l1[0]._vec is not None

    def test_mirror_detached_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        sim = Simulation(small_config(), "ideal", ["gcc"], 1_000, seed=1)
        assert sim.hierarchy._l1[0]._vec is None

    def test_multi_core_mirrors_attached_by_default(self):
        # The horizon-batched multi-core loop classifies each core's
        # lookahead against its own private-L1 mirror.
        config = dataclasses.replace(small_config(), n_cores=2)
        sim = Simulation(config, "ideal", ["gcc", "mcf"], 1_000, seed=1)
        assert all(l1._vec is not None for l1 in sim.hierarchy._l1)

    def test_multi_core_sub_switch_restores_scalar(self, monkeypatch):
        # REPRO_VECTOR_MC=0 pins the heap loop to the scalar body while
        # leaving single-core rows columnar — the bisect switch for
        # suspected multi-core interpreter bugs.
        monkeypatch.setenv("REPRO_VECTOR_MC", "0")
        config = dataclasses.replace(small_config(), n_cores=2)
        sim = Simulation(config, "ideal", ["gcc", "mcf"], 1_000, seed=1)
        assert all(l1._vec is None for l1 in sim.hierarchy._l1)
        single = Simulation(small_config(), "ideal", ["gcc"], 1_000, seed=1)
        assert single.hierarchy._l1[0]._vec is not None

    def test_multi_core_master_switch_wins(self, monkeypatch):
        # REPRO_VECTOR=0 disables every interpreter, multi-core included.
        monkeypatch.setenv("REPRO_VECTOR", "0")
        config = dataclasses.replace(small_config(), n_cores=2)
        sim = Simulation(config, "ideal", ["gcc", "mcf"], 1_000, seed=1)
        assert all(l1._vec is None for l1 in sim.hierarchy._l1)


# Workload space for the fuzz: every axis the trace generator exposes,
# constrained exactly as WorkloadProfile.__post_init__ demands.
_fuzz_profiles = st.builds(
    lambda mem, wf, seq, chase_scale, ws, alpha, run, sb, zb_scale: WorkloadProfile(
        "_fuzz",
        mem_ratio=mem,
        write_frac=wf,
        working_set_bytes=ws * MB,
        seq_frac=seq,
        chase_frac=min((1.0 - seq) * chase_scale, 1.0 - seq),
        zipf_alpha=alpha,
        category="fuzz",
        seq_run=run,
        write_seq_bias=sb,
        write_zipf_bias=min((1.0 - sb) * zb_scale, 1.0 - sb),
    ),
    mem=st.floats(0.05, 1.0),
    wf=st.floats(0.0, 1.0),
    seq=st.floats(0.0, 1.0),
    chase_scale=st.floats(0.0, 1.0),
    ws=st.integers(1, 64),
    alpha=st.floats(0.05, 1.5),
    run=st.integers(1, 16),
    sb=st.floats(0.0, 1.0),
    zb_scale=st.floats(0.0, 1.0),
)


class TestFuzz:
    @settings(max_examples=10, deadline=None)
    @given(
        profile=_fuzz_profiles,
        scheme=st.sampled_from(SCHEMES),
        seed=st.integers(0, 2**20),
    )
    def test_random_workloads_identical(self, profile, scheme, seed):
        # Simulation resolves benchmarks by name, so park the generated
        # profile in the registry for the duration of the two runs. The
        # trace memo keys on the profile value (a frozen dataclass), so
        # same-name profiles with different parameters never collide.
        profiles._BY_NAME["_fuzz"] = profile
        try:
            scalar = run_mode(False, small_config(), scheme, "_fuzz", 20_000, seed=seed)
            columnar = run_mode(True, small_config(), scheme, "_fuzz", 20_000, seed=seed)
        finally:
            del profiles._BY_NAME["_fuzz"]
        assert_identical(scalar, columnar)
