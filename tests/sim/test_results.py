"""Derived metrics on simulation results."""

import pytest

from repro.common.stats import StatCounters
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResult


def make_result(cycles=1000, instructions=500, commits=0, scale=64, n_cores=1, **stats):
    counters = StatCounters()
    counters.set("commits", commits)
    for key, value in stats.items():
        counters.set(key.replace("__", "."), value)
    config = SystemConfig().scaled(scale, n_cores=n_cores)
    return SimulationResult(
        "picl", ["gcc"], config, cycles, instructions, counters
    )


class TestHeadline:
    def test_ipc(self):
        assert make_result(cycles=1000, instructions=500).ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_normalized_to(self):
        ideal = make_result(cycles=1000)
        slow = make_result(cycles=1500)
        assert slow.normalized_to(ideal) == 1.5

    def test_normalized_to_zero_ideal(self):
        assert make_result().normalized_to(make_result(cycles=0)) == float("inf")


class TestCommitMetrics:
    def test_scheduled_epochs(self):
        config_epoch = SystemConfig().scaled(64).epoch_instructions
        result = make_result(instructions=config_epoch * 4, commits=4)
        assert result.scheduled_epochs == 4
        assert result.commits_per_epoch == 1.0

    def test_forced_commits_raise_rate(self):
        config_epoch = SystemConfig().scaled(64).epoch_instructions
        result = make_result(instructions=config_epoch * 2, commits=10)
        assert result.commits_per_epoch == 5.0

    def test_observed_epoch_instructions(self):
        result = make_result(instructions=1000, commits=4)
        assert result.observed_epoch_instructions == 250

    def test_observed_epoch_with_no_commits(self):
        result = make_result(instructions=1000, commits=0)
        assert result.observed_epoch_instructions == 1000

    def test_multicore_normalizes_per_core(self):
        result = make_result(instructions=8000, commits=4, n_cores=8)
        assert result.observed_epoch_instructions == 250


class TestIops:
    def test_breakdown(self):
        result = make_result(
            nvm__iops__sequential=10, nvm__iops__random=20, nvm__iops__writeback=30
        )
        assert result.iops_breakdown == {
            "sequential": 10,
            "random": 20,
            "writeback": 30,
        }

    def test_normalization(self):
        ideal = make_result(nvm__iops__writeback=100)
        result = make_result(
            nvm__iops__sequential=50, nvm__iops__random=100, nvm__iops__writeback=100
        )
        normalized = result.iops_normalized_to(ideal)
        assert normalized == {"sequential": 0.5, "random": 1.0, "writeback": 1.0}

    def test_normalization_guards_zero(self):
        ideal = make_result()
        result = make_result(nvm__iops__random=5)
        assert result.iops_normalized_to(ideal)["random"] == 5


class TestLogMetrics:
    def test_log_bytes(self):
        result = make_result(log__bytes_appended=1024)
        assert result.log_bytes_appended == 1024

    def test_paper_scale_extrapolation(self):
        result = make_result(scale=64, log__bytes_appended=1024)
        assert result.log_bytes_scaled_to_paper() == 1024 * 64

    def test_repr(self):
        assert "picl" in repr(make_result())
