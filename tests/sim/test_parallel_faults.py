"""Fault tolerance of the parallel sweep runner.

The properties ISSUE'd: a worker that raises names the exact point that
died; a worker killed mid-sweep is retried and the sweep completes with
results bit-identical to a clean serial run; a hung batch is killed at
its deadline; an interrupted sweep resumes from its checkpoint journal.

The bomb points are ``RunPoint`` subclasses at module level so the pool
(fork start method) can pickle them by reference; flakiness is a sentinel
file — first attempt dies, the retry finds the file and succeeds.
"""

import dataclasses
import os
import time

import pytest

from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ISOLATED_FALLBACK_TIMEOUT,
    MAX_BACKOFF,
    PointExecutionError,
    PointTimeoutError,
    RunPoint,
    SweepCheckpoint,
    WorkerCrashError,
    batch_budget,
    execute_batch_with_retry,
    fault_env,
    retry_delay,
    run_points,
)

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


@dataclasses.dataclass(frozen=True)
class RaisingPoint(RunPoint):
    """Deterministic failure: raises the same way on every attempt."""

    def execute(self):
        raise ValueError("injected simulation bug")


@dataclasses.dataclass(frozen=True)
class ExitingPoint(RunPoint):
    """Kills its process outright, like a segfault or the OOM killer."""

    def execute(self):
        os._exit(43)


@dataclasses.dataclass(frozen=True)
class HangingPoint(RunPoint):
    """Never finishes; only a deadline can stop it."""

    def execute(self):
        time.sleep(300)


@dataclasses.dataclass(frozen=True)
class FlakyPoint(RunPoint):
    """Dies on the first attempt, succeeds once its sentinel file exists."""

    sentinel: str = ""

    def execute(self):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(9)
        return super().execute()


def point(cls, seed, benchmark="gcc", **extra):
    return cls(CONFIG, "picl", (benchmark,), N, seed, **extra)


def fingerprint(result):
    return (result.cycles, result.instructions, result.stats_dict())


class TestAttribution:
    def test_serial_failure_names_the_point(self):
        with pytest.raises(PointExecutionError) as excinfo:
            run_points([point(RaisingPoint, 11)], jobs=1)
        message = str(excinfo.value)
        assert "scheme=picl" in message
        assert "seed=11" in message
        assert "injected simulation bug" in message
        assert "RaisingPoint" in message  # the full point repr rides along

    def test_pool_failure_names_the_point(self):
        # Two distinct traces so the pool actually engages (a single
        # pending point short-circuits to the serial path).
        points = [point(RaisingPoint, 12), point(RunPoint, 13, "gamess")]
        with pytest.raises(PointExecutionError, match="seed=12"):
            run_points(points, jobs=2)

    def test_attribution_survives_pickling(self):
        import pickle

        error = PointExecutionError("boom", point_description="seed=5")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.point_description == "seed=5"
        assert str(clone) == "boom"


class TestWorkerDeath:
    def test_killed_worker_is_retried_and_sweep_completes(self, tmp_path):
        sentinel = str(tmp_path / "flaky")
        points = [
            point(FlakyPoint, 21, sentinel=sentinel),
            point(RunPoint, 22, "gamess"),
        ]
        results = run_points(points, jobs=2, retries=2, backoff=0.01)
        clean = run_points([point(RunPoint, 21), points[1]], jobs=1)
        # Bit-identical to a clean serial run of the same seeds.
        assert fingerprint(results[0]) == fingerprint(clean[0])
        assert fingerprint(results[1]) == fingerprint(clean[1])

    def test_persistent_crash_exhausts_retries(self):
        points = [point(ExitingPoint, 31), point(RunPoint, 32, "gamess")]
        with pytest.raises(WorkerCrashError) as excinfo:
            run_points(points, jobs=2, retries=1, backoff=0.01)
        message = str(excinfo.value)
        assert "exit code 43" in message
        assert "seed=31" in message

    def test_hung_batch_is_killed_at_deadline(self):
        points = [point(HangingPoint, 41), point(RunPoint, 42, "gamess")]
        start = time.time()
        with pytest.raises(PointTimeoutError, match="seed=41"):
            run_points(points, jobs=2, timeout=0.5, retries=0, backoff=0.01)
        # Two kills (pool + isolated attempt) must still be far below the
        # 300 s the point would have slept.
        assert time.time() - start < 60


class TestCheckpoint:
    def test_interrupted_sweep_resumes(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        points = [point(RunPoint, 51), point(RunPoint, 52, "gamess")]
        first = SweepCheckpoint(journal)
        partial = run_points(points[:1], jobs=1, checkpoint=first)

        resumed = SweepCheckpoint(journal)
        assert resumed.lookup(points[0]) is not None
        assert resumed.lookup(points[1]) is None

        # The finished point is answered from the journal, not re-run:
        # pair it with a bomb carrying the same digest-relevant fields —
        # if the journal were ignored, the bomb would kill the process.
        results = run_points(
            [point(ExitingPoint, 51), points[1]], jobs=1, checkpoint=resumed
        )
        assert fingerprint(results[0]) == fingerprint(partial[0])

    def test_torn_tail_record_is_skipped(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 61), "result-a")
        checkpoint.record(point(RunPoint, 62, "gamess"), "result-b")
        with open(journal, "ab") as handle:
            handle.write(b"\x80\x05torn-mid-append")
        survivor = SweepCheckpoint(journal)
        assert survivor.lookup(point(RunPoint, 61)) == "result-a"
        assert survivor.lookup(point(RunPoint, 62, "gamess")) == "result-b"

    def test_torn_tail_then_resume_keeps_later_records(self, tmp_path):
        # Regression: _load used to *leave* the torn bytes in place, so
        # records appended by the resumed run were glued onto the garbage
        # and lost on the next reload. The torn tail must be truncated
        # before appending resumes.
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 63), "result-a")
        with open(journal, "ab") as handle:
            handle.write(b"\x80\x05torn-mid-append")

        resumed = SweepCheckpoint(journal)
        assert resumed.lookup(point(RunPoint, 63)) == "result-a"
        resumed.record(point(RunPoint, 64, "gamess"), "result-b")
        resumed.record(point(RunPoint, 65, "bwaves"), "result-c")

        reloaded = SweepCheckpoint(journal)
        assert reloaded.lookup(point(RunPoint, 63)) == "result-a"
        assert reloaded.lookup(point(RunPoint, 64, "gamess")) == "result-b"
        assert reloaded.lookup(point(RunPoint, 65, "bwaves")) == "result-c"

    def test_mid_pickle_truncation_then_resume(self, tmp_path):
        # The crash variant: the file ends exactly mid-record (power cut
        # during a write), not with trailing garbage.
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 66), "result-a")
        good_size = os.path.getsize(journal)
        checkpoint.record(point(RunPoint, 67, "gamess"), "result-b")
        with open(journal, "ab") as handle:
            pass
        os.truncate(journal, good_size + (os.path.getsize(journal) - good_size) // 2)

        resumed = SweepCheckpoint(journal)
        assert resumed.lookup(point(RunPoint, 66)) == "result-a"
        assert resumed.lookup(point(RunPoint, 67, "gamess")) is None
        resumed.record(point(RunPoint, 68, "bwaves"), "result-c")

        reloaded = SweepCheckpoint(journal)
        assert reloaded.lookup(point(RunPoint, 66)) == "result-a"
        assert reloaded.lookup(point(RunPoint, 68, "bwaves")) == "result-c"

    def test_done_removes_journal(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 71), "r")
        assert os.path.exists(journal)
        checkpoint.done()
        assert not os.path.exists(journal)
        checkpoint.done()  # idempotent


class TestSerialDegradation:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch, capsys):
        def no_pool(*_args, **_kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.sim.parallel.ProcessPoolExecutor", no_pool
        )
        points = [point(RunPoint, 81), point(RunPoint, 82, "gamess")]
        results = run_points(points, jobs=2)
        clean = run_points(points, jobs=1)
        for got, want in zip(results, clean):
            assert fingerprint(got) == fingerprint(want)
        assert "running serially" in capsys.readouterr().err


class TestTimeoutSemantics:
    """None, zero, and positive timeouts are three different requests."""

    def test_unset_timeout_gets_safety_net(self):
        assert batch_budget(None, 3) == ISOLATED_FALLBACK_TIMEOUT * 3
        assert batch_budget(None, 0) == ISOLATED_FALLBACK_TIMEOUT

    def test_zero_timeout_disables_deadline_entirely(self):
        # Regression: `timeout or 3600.0` silently turned an explicit
        # REPRO_POINT_TIMEOUT=0 into the one-hour safety net.
        assert batch_budget(0, 5) is None
        assert batch_budget(0.0, 1) is None
        assert batch_budget(-1, 2) is None

    def test_positive_timeout_scales_with_batch(self):
        assert batch_budget(2.0, 3) == 6.0
        assert batch_budget(0.5, 1) == 0.5

    def test_env_zero_reaches_fault_env_as_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "0")
        timeout, _retries = fault_env()
        assert timeout == 0.0
        assert batch_budget(timeout, 4) is None

    def test_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
        timeout, _retries = fault_env()
        assert timeout is None

    def test_run_points_completes_with_zero_timeout(self):
        points = [point(RunPoint, 91), point(RunPoint, 92, "gamess")]
        results = run_points(points, jobs=2, timeout=0)
        clean = run_points(points, jobs=1)
        for got, want in zip(results, clean):
            assert fingerprint(got) == fingerprint(want)


class TestBackoff:
    def test_exponential_growth_is_capped(self):
        assert retry_delay(1, backoff=1.0) == 1.0
        assert retry_delay(3, backoff=1.0) == 4.0
        assert retry_delay(30, backoff=1.0) == MAX_BACKOFF
        # Before the cap this would be ~5e8 seconds.
        assert retry_delay(30, backoff=1.0) <= MAX_BACKOFF

    def test_jitter_is_bounded_and_deterministic(self):
        for attempt in (1, 2, 7):
            base = retry_delay(attempt, backoff=1.0)
            jittered = retry_delay(attempt, backoff=1.0, key="batch-x")
            assert 0.5 * base <= jittered <= 1.5 * base
            # Same (key, attempt) -> the exact same delay, every time.
            assert jittered == retry_delay(attempt, backoff=1.0, key="batch-x")

    def test_jitter_spreads_distinct_keys(self):
        delays = {
            retry_delay(1, backoff=1.0, key="batch-%d" % index)
            for index in range(8)
        }
        assert len(delays) > 1

    def test_execute_batch_with_retry_reports_its_delay(self, tmp_path):
        sentinel = str(tmp_path / "flaky")
        batch = [point(FlakyPoint, 95, sentinel=sentinel)]
        observed = []

        def on_retry(attempt, delay, exc):
            observed.append((attempt, delay, exc))

        results = execute_batch_with_retry(
            batch, retries=1, backoff=0.01, on_retry=on_retry
        )
        assert len(results) == 1
        assert len(observed) == 1
        attempt, delay, exc = observed[0]
        assert attempt == 1
        assert isinstance(exc, WorkerCrashError)
        key = "; ".join(p.describe() for p in batch)
        assert delay == retry_delay(1, 0.01, key=key)

    def test_should_retry_false_aborts_immediately(self):
        batch = [point(ExitingPoint, 96)]
        start = time.time()
        with pytest.raises(WorkerCrashError):
            execute_batch_with_retry(
                batch, retries=5, backoff=5.0, should_retry=lambda: False
            )
        assert time.time() - start < 10
