"""Fault tolerance of the parallel sweep runner.

The properties ISSUE'd: a worker that raises names the exact point that
died; a worker killed mid-sweep is retried and the sweep completes with
results bit-identical to a clean serial run; a hung batch is killed at
its deadline; an interrupted sweep resumes from its checkpoint journal.

The bomb points are ``RunPoint`` subclasses at module level so the pool
(fork start method) can pickle them by reference; flakiness is a sentinel
file — first attempt dies, the retry finds the file and succeeds.
"""

import dataclasses
import os
import time

import pytest

from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    PointExecutionError,
    PointTimeoutError,
    RunPoint,
    SweepCheckpoint,
    WorkerCrashError,
    run_points,
)

CONFIG = SystemConfig().scaled(512)
N = CONFIG.epoch_instructions


@dataclasses.dataclass(frozen=True)
class RaisingPoint(RunPoint):
    """Deterministic failure: raises the same way on every attempt."""

    def execute(self):
        raise ValueError("injected simulation bug")


@dataclasses.dataclass(frozen=True)
class ExitingPoint(RunPoint):
    """Kills its process outright, like a segfault or the OOM killer."""

    def execute(self):
        os._exit(43)


@dataclasses.dataclass(frozen=True)
class HangingPoint(RunPoint):
    """Never finishes; only a deadline can stop it."""

    def execute(self):
        time.sleep(300)


@dataclasses.dataclass(frozen=True)
class FlakyPoint(RunPoint):
    """Dies on the first attempt, succeeds once its sentinel file exists."""

    sentinel: str = ""

    def execute(self):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(9)
        return super().execute()


def point(cls, seed, benchmark="gcc", **extra):
    return cls(CONFIG, "picl", (benchmark,), N, seed, **extra)


def fingerprint(result):
    return (result.cycles, result.instructions, result.stats_dict())


class TestAttribution:
    def test_serial_failure_names_the_point(self):
        with pytest.raises(PointExecutionError) as excinfo:
            run_points([point(RaisingPoint, 11)], jobs=1)
        message = str(excinfo.value)
        assert "scheme=picl" in message
        assert "seed=11" in message
        assert "injected simulation bug" in message
        assert "RaisingPoint" in message  # the full point repr rides along

    def test_pool_failure_names_the_point(self):
        # Two distinct traces so the pool actually engages (a single
        # pending point short-circuits to the serial path).
        points = [point(RaisingPoint, 12), point(RunPoint, 13, "gamess")]
        with pytest.raises(PointExecutionError, match="seed=12"):
            run_points(points, jobs=2)

    def test_attribution_survives_pickling(self):
        import pickle

        error = PointExecutionError("boom", point_description="seed=5")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.point_description == "seed=5"
        assert str(clone) == "boom"


class TestWorkerDeath:
    def test_killed_worker_is_retried_and_sweep_completes(self, tmp_path):
        sentinel = str(tmp_path / "flaky")
        points = [
            point(FlakyPoint, 21, sentinel=sentinel),
            point(RunPoint, 22, "gamess"),
        ]
        results = run_points(points, jobs=2, retries=2, backoff=0.01)
        clean = run_points([point(RunPoint, 21), points[1]], jobs=1)
        # Bit-identical to a clean serial run of the same seeds.
        assert fingerprint(results[0]) == fingerprint(clean[0])
        assert fingerprint(results[1]) == fingerprint(clean[1])

    def test_persistent_crash_exhausts_retries(self):
        points = [point(ExitingPoint, 31), point(RunPoint, 32, "gamess")]
        with pytest.raises(WorkerCrashError) as excinfo:
            run_points(points, jobs=2, retries=1, backoff=0.01)
        message = str(excinfo.value)
        assert "exit code 43" in message
        assert "seed=31" in message

    def test_hung_batch_is_killed_at_deadline(self):
        points = [point(HangingPoint, 41), point(RunPoint, 42, "gamess")]
        start = time.time()
        with pytest.raises(PointTimeoutError, match="seed=41"):
            run_points(points, jobs=2, timeout=0.5, retries=0, backoff=0.01)
        # Two kills (pool + isolated attempt) must still be far below the
        # 300 s the point would have slept.
        assert time.time() - start < 60


class TestCheckpoint:
    def test_interrupted_sweep_resumes(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        points = [point(RunPoint, 51), point(RunPoint, 52, "gamess")]
        first = SweepCheckpoint(journal)
        partial = run_points(points[:1], jobs=1, checkpoint=first)

        resumed = SweepCheckpoint(journal)
        assert resumed.lookup(points[0]) is not None
        assert resumed.lookup(points[1]) is None

        # The finished point is answered from the journal, not re-run:
        # pair it with a bomb carrying the same digest-relevant fields —
        # if the journal were ignored, the bomb would kill the process.
        results = run_points(
            [point(ExitingPoint, 51), points[1]], jobs=1, checkpoint=resumed
        )
        assert fingerprint(results[0]) == fingerprint(partial[0])

    def test_torn_tail_record_is_skipped(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 61), "result-a")
        checkpoint.record(point(RunPoint, 62, "gamess"), "result-b")
        with open(journal, "ab") as handle:
            handle.write(b"\x80\x05torn-mid-append")
        survivor = SweepCheckpoint(journal)
        assert survivor.lookup(point(RunPoint, 61)) == "result-a"
        assert survivor.lookup(point(RunPoint, 62, "gamess")) == "result-b"

    def test_done_removes_journal(self, tmp_path):
        journal = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(journal)
        checkpoint.record(point(RunPoint, 71), "r")
        assert os.path.exists(journal)
        checkpoint.done()
        assert not os.path.exists(journal)
        checkpoint.done()  # idempotent


class TestSerialDegradation:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch, capsys):
        def no_pool(*_args, **_kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.sim.parallel.ProcessPoolExecutor", no_pool
        )
        points = [point(RunPoint, 81), point(RunPoint, 82, "gamess")]
        results = run_points(points, jobs=2)
        clean = run_points(points, jobs=1)
        for got, want in zip(results, clean):
            assert fingerprint(got) == fingerprint(want)
        assert "running serially" in capsys.readouterr().err
