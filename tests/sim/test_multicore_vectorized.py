"""Bit-identity of the horizon-batched multi-core interpreter.

``_run_multi_core_vector`` replaces the scalar heap loop (pop the
earliest-clock core, advance it one reference, push it back) with
horizon-bounded turns: the popped core advances through classified
windows, bulk-applied all-fast prefixes, and persistent per-core
miss-chain drains until its clock crosses the smallest other heap key.
Token order, the shared-LLC coupling, and the ``total_instructions``
epoch accounting are all constrained to match the scalar loop exactly —
so this file drives both interpreters (``REPRO_VECTOR=0`` vs the
default) over the same multi-core points and asserts exact equality of
every observable, the same contract ``test_vectorized.py`` pins for the
single-core columnar loop.

The matrix crosses the axes that stress the multi-core-specific
machinery: core counts (turn lengths shrink as the heap fills),
``shared_memory`` (cross-core stores force mirror invalidations through
the ``removed`` log while a core is off-turn), every scheme (the three
store-filter contracts), and crashes — both instruction-count stops
(which land mid-turn inside bulk spans and parked drain generators) and
semantic-site plans through full recovery. A hypothesis fuzz then walks
the product space so untested corners of (cores, sharing, scheme,
crash mode, seed) still get coverage.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.fault.plan import SEMANTIC_SITES, CrashPlan
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation

SCHEMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")

#: Per-core benchmarks, sliced/rotated to the core count: miss-heavy
#: (gcc, mcf, astar), hit-dominated (hmmer), and run-structured
#: (lbm, h264ref) traces so neighbouring cores drift apart and the heap
#: order changes constantly.
BENCHES = ("gcc", "mcf", "hmmer", "lbm", "astar", "h264ref", "gcc", "mcf")

N = 30_000  # per core; a couple of scheduled epochs at scale 256


def small_config(n_cores, **overrides):
    defaults = dict(track_reference=True, reference_depth=32, n_cores=n_cores)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


def benchlist(n_cores, rotate=0):
    ring = BENCHES[rotate:] + BENCHES[:rotate]
    return list(ring[:n_cores])


def run_mode(vector, config, scheme, benches, n, seed, shared_memory=False,
             crash_at=None, crash_plan=None):
    """Run one multi-core simulation with the batched interpreter on or off.

    Same environment discipline as the single-core bit-identity tests:
    ``REPRO_VECTOR`` is read when the hierarchy is built, so it is pinned
    around construction and restored immediately, and the gate is
    asserted on every private L1 so the test can never compare the
    scalar heap loop against itself.
    """
    previous = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = "1" if vector else "0"
    try:
        sim = Simulation(
            config, scheme, benches, n, seed=seed, shared_memory=shared_memory
        )
    finally:
        if previous is None:
            del os.environ["REPRO_VECTOR"]
        else:
            os.environ["REPRO_VECTOR"] = previous
    assert all((l1._vec is not None) == vector for l1 in sim.hierarchy._l1)
    sim.run(crash_at_instructions=crash_at, crash_plan=crash_plan)
    return sim


def assert_identical(scalar, batched):
    """Every observable of the two simulations must match exactly."""
    a, b = scalar.result(), batched.result()
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.per_core_cycles == b.per_core_cycles
    for ca, cb in zip(scalar.cores, batched.cores):
        assert ca.mem_stall_cycles == cb.mem_stall_cycles
        assert ca.instructions == cb.instructions
    assert scalar.system._next_token == batched.system._next_token
    assert scalar.system.arch_image == batched.system.arch_image
    assert scalar.stats.snapshot() == batched.stats.snapshot()


def assert_identical_recovery(scalar, batched):
    image_a, commit_a, ref_a = scalar.crash_and_recover()
    image_b, commit_b, ref_b = batched.crash_and_recover()
    assert commit_a == commit_b
    assert image_a == image_b
    assert ref_a == ref_b


class TestBitIdentity:
    @pytest.mark.parametrize("n_cores", (2, 4, 8))
    @pytest.mark.parametrize("shared", (False, True))
    def test_core_counts_and_sharing(self, n_cores, shared):
        config = small_config(n_cores)
        benches = benchlist(n_cores)
        scalar = run_mode(False, config, "picl", benches, N, 11,
                          shared_memory=shared)
        batched = run_mode(True, config, "picl", benches, N, 11,
                           shared_memory=shared)
        assert_identical(scalar, batched)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes(self, scheme):
        # Four cores, disjoint spaces: every vector_store_filter contract
        # (always-fast, never-fast, EID-conditional) under heap turns.
        config = small_config(4)
        benches = benchlist(4, rotate=1)
        scalar = run_mode(False, config, scheme, benches, N, 23)
        batched = run_mode(True, config, scheme, benches, N, 23)
        assert_identical(scalar, batched)

    def test_sub_block_granularity(self):
        # 16 B tracking declines every store through picl's filter, so
        # the batched loop can only bulk loads; stores all go residual.
        config = small_config(2)
        config = dataclasses.replace(
            config, picl=dataclasses.replace(config.picl, tracking_granularity=16)
        )
        scalar = run_mode(False, config, "picl", benchlist(2), N, 31)
        batched = run_mode(True, config, "picl", benchlist(2), N, 31)
        assert_identical(scalar, batched)


class TestCrashIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_instruction_crash_and_recovery(self, scheme):
        # crash_at counts TOTAL instructions across cores, so the stop
        # lands mid-turn — inside bulk spans and parked drain
        # generators, whose partial effects must flush identically.
        config = small_config(4)
        benches = benchlist(4)
        crash_at = (N * 4) // 2 + 137  # mid-epoch, not on a boundary
        scalar = run_mode(False, config, scheme, benches, N, 43,
                          crash_at=crash_at)
        batched = run_mode(True, config, scheme, benches, N, 43,
                           crash_at=crash_at)
        assert scalar.crashed and batched.crashed
        assert_identical(scalar, batched)
        assert_identical_recovery(scalar, batched)

    @pytest.mark.parametrize("site", SEMANTIC_SITES)
    def test_site_crash_and_recovery(self, site):
        # Site plans power-fail from inside the component that owns the
        # site; both interpreters must reach the same occurrence at the
        # same machine state. undo_flush also tears the burst so only a
        # prefix of the log entries lands.
        config = small_config(2)
        benches = benchlist(2, rotate=2)
        tear = 1 if site == "undo_flush" else None
        occurrence = 5
        plan_a = CrashPlan.on_event(site, occurrence=occurrence, tear_entries=tear)
        plan_b = CrashPlan.on_event(site, occurrence=occurrence, tear_entries=tear)
        scalar = run_mode(False, config, "picl", benches, N, 53,
                          crash_plan=plan_a)
        batched = run_mode(True, config, "picl", benches, N, 53,
                           crash_plan=plan_b)
        assert plan_a.fired == plan_b.fired
        assert scalar.crashed == batched.crashed
        assert scalar.crash_site == batched.crash_site
        assert_identical(scalar, batched)
        if scalar.crashed:
            assert_identical_recovery(scalar, batched)


class TestFuzz:
    @settings(max_examples=8, deadline=None)
    @given(
        n_cores=st.sampled_from((2, 4, 8)),
        shared=st.booleans(),
        scheme=st.sampled_from(SCHEMES),
        rotate=st.integers(0, len(BENCHES) - 1),
        seed=st.integers(0, 2**20),
        crash=st.one_of(
            st.none(),
            st.floats(0.2, 0.9),  # crash fraction of the total run
            st.sampled_from(SEMANTIC_SITES),
        ),
    )
    def test_random_points_identical(self, n_cores, shared, scheme, rotate,
                                     seed, crash):
        # Keep the fuzz affordable: fewer per-core references than the
        # curated matrix, but the full product space of knobs.
        n = 12_000
        config = small_config(n_cores)
        benches = benchlist(n_cores, rotate)
        crash_at = None
        plans = [None, None]
        if isinstance(crash, float):
            crash_at = int(n * n_cores * crash)
        elif crash is not None:
            plans = [CrashPlan.on_event(crash, occurrence=3,
                                        tear_entries=1 if crash == "undo_flush"
                                        else None)
                     for _ in range(2)]
        scalar = run_mode(False, config, scheme, benches, n, seed,
                          shared_memory=shared, crash_at=crash_at,
                          crash_plan=plans[0])
        batched = run_mode(True, config, scheme, benches, n, seed,
                           shared_memory=shared, crash_at=crash_at,
                           crash_plan=plans[1])
        if plans[0] is not None:
            assert plans[0].fired == plans[1].fired
        assert scalar.crashed == batched.crashed
        assert scalar.crash_site == batched.crash_site
        assert_identical(scalar, batched)
        if scalar.crashed:
            assert_identical_recovery(scalar, batched)
