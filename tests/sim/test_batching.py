"""Bit-identity of the batched single-core interpreter.

The segmented/coalescing loop in :meth:`Simulation._run_single_core` is an
optimization, not a model change: every counter, every cycle, and every
recovered byte must match what the original per-reference loop produced.
This file keeps a faithful copy of that original loop (``naive_run``) and
drives both interpreters over the same (scheme, benchmark) points —
including a crash-injection run and the sub-block granularity fallback —
asserting exact equality of the results.

It also pins down the trace-side machinery the batched loop depends on:
the lazily computed run/cumsum metadata and the cross-scheme memo
(``REPRO_NO_TRACE_MEMO`` must yield the identical stream).
"""

import dataclasses

import pytest

from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation
from repro.trace.profiles import get_profile
from repro.trace.synthetic import (
    MaterializedTrace,
    SyntheticTrace,
    clear_trace_memo,
    make_trace,
)


def small_config(**overrides):
    defaults = dict(track_reference=True, reference_depth=32)
    defaults.update(overrides)
    return SystemConfig().scaled(256, **defaults)


N = 60_000  # a few scheduled epochs at scale 256


def naive_run(config, scheme_name, benchmark, n_instructions, seed, crash_at=None):
    """Drive a Simulation with the original per-reference loop.

    This is the pre-batching ``_run_single_core`` (plus ``run``'s finalize
    step), kept verbatim as the reference semantics the batched
    interpreter must reproduce bit-for-bit.
    """
    sim = Simulation(config, scheme_name, [benchmark], n_instructions, seed=seed)
    sim._ran = True
    system = sim.system
    scheme = sim.scheme
    access = sim.hierarchy.access
    core = sim.cores[0]
    epoch_span = sim.config.epoch_instructions
    next_epoch = epoch_span
    track = system.track_reference
    arch_image = system.arch_image
    total = system.total_instructions
    crash = crash_at

    def loop():
        nonlocal total, next_epoch
        for chunk in sim.traces[0].chunks():
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            for index in range(len(gaps)):
                gap = gaps[index]
                cycle = core.cycle + gap
                core.cycle = cycle
                core.instructions += gap
                addr = addrs[index]
                if writes[index]:
                    token = system.new_token()
                    wait = access(0, addr, True, token, cycle)
                    if track:
                        arch_image[addr] = token
                else:
                    wait = access(0, addr, False, 0, cycle)
                core.cycle = cycle + wait
                core.instructions += 1
                core.mem_stall_cycles += wait
                total += gap + 1
                if total >= next_epoch:
                    system.total_instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    sim.crashed = True
                    return
            system.total_instructions = total
        core.finished = True

    loop()
    if not sim.crashed:
        stall = scheme.finalize(system.max_cycle())
        system.broadcast_stall(stall)
    return sim


def batched_run(config, scheme_name, benchmark, n_instructions, seed, crash_at=None):
    sim = Simulation(config, scheme_name, [benchmark], n_instructions, seed=seed)
    sim.run(crash_at_instructions=crash_at)
    return sim


def assert_identical(naive, batched):
    """Every observable of the two simulations must match exactly."""
    a, b = naive.result(), batched.result()
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.per_core_cycles == b.per_core_cycles
    assert naive.cores[0].mem_stall_cycles == batched.cores[0].mem_stall_cycles
    assert naive.system._next_token == batched.system._next_token
    assert naive.system.arch_image == batched.system.arch_image
    assert naive.stats.snapshot() == batched.stats.snapshot()


PAIRS = [
    ("ideal", "gcc"),
    ("picl", "lbm"),
    ("journaling", "mcf"),
    ("thynvm", "astar"),
    ("shadow", "mcf"),
    ("frm", "lbm"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("scheme,bench", PAIRS)
    def test_full_run_identical(self, scheme, bench):
        config = small_config()
        naive = naive_run(config, scheme, bench, N, seed=77)
        batched = batched_run(config, scheme, bench, N, seed=77)
        assert_identical(naive, batched)

    def test_crash_run_identical(self):
        config = small_config()
        crash_at = N // 2 + 137  # mid-epoch, not on a boundary
        naive = naive_run(config, "picl", "gcc", N, seed=9, crash_at=crash_at)
        batched = batched_run(config, "picl", "gcc", N, seed=9, crash_at=crash_at)
        assert naive.crashed and batched.crashed
        assert_identical(naive, batched)
        image_a, commit_a, ref_a = naive.crash_and_recover()
        image_b, commit_b, ref_b = batched.crash_and_recover()
        assert commit_a == commit_b
        assert image_a == image_b
        assert ref_a == ref_b

    def test_sub_block_granularity_falls_back_identically(self):
        # 16 B tracking rotates the store sequence across sub-blocks, so
        # the coalescing fast path must refuse picl stores — and still
        # match the naive loop exactly.
        config = small_config()
        config = dataclasses.replace(
            config, picl=dataclasses.replace(config.picl, tracking_granularity=16)
        )
        naive = naive_run(config, "picl", "lbm", N, seed=21)
        batched = batched_run(config, "picl", "lbm", N, seed=21)
        assert_identical(naive, batched)

    def test_capped_log_falls_back_identically(self):
        # A hard log cap makes every store check log pressure, which the
        # fast path cannot batch; picl must decline coalescing.
        config = small_config()
        config = dataclasses.replace(
            config,
            picl=dataclasses.replace(config.picl, log_max_bytes=64 * 1024 * 1024),
        )
        naive = naive_run(config, "picl", "lbm", N, seed=33)
        batched = batched_run(config, "picl", "lbm", N, seed=33)
        assert_identical(naive, batched)


class TestTraceMetadata:
    def test_run_ends_matches_python_reference(self):
        trace = SyntheticTrace(get_profile("lbm"), 40_000, seed=3)
        for chunk in trace.chunks():
            chunk.ensure_metadata()
            n = len(chunk.addrs)
            expected = [0] * n
            end = n
            for i in range(n - 1, -1, -1):
                if i + 1 < n and chunk.addrs[i] != chunk.addrs[i + 1]:
                    end = i + 1
                expected[i] = end
            assert chunk.run_ends == expected

    def test_cumulative_counters_match_python_reference(self):
        trace = SyntheticTrace(get_profile("gcc"), 20_000, seed=4)
        for chunk in trace.chunks():
            chunk.ensure_metadata()
            running = 0
            cum = []
            for gap in chunk.gaps:
                running += gap + 1
                cum.append(running)
            assert chunk.cum_instructions == cum
            assert chunk.write_cum == [
                sum(chunk.writes[: i + 1]) for i in range(len(chunk.writes))
            ]
            assert cum[-1] == chunk.instructions

    def test_metadata_is_idempotent(self):
        trace = SyntheticTrace(get_profile("gcc"), 5_000, seed=5)
        chunk = next(trace.chunks())
        chunk.ensure_metadata()
        first = chunk.run_ends
        chunk.ensure_metadata()
        assert chunk.run_ends is first


class TestTraceMemo:
    def test_memo_returns_identical_stream(self, monkeypatch):
        profile = get_profile("gcc")
        clear_trace_memo()
        memo_a = make_trace(profile, 30_000, seed=11)
        memo_b = make_trace(profile, 30_000, seed=11)
        assert isinstance(memo_a, MaterializedTrace)
        # Memo hits share the frozen storage (thawed chunks are transient).
        assert memo_a._chunks is memo_b._chunks
        monkeypatch.setenv("REPRO_NO_TRACE_MEMO", "1")
        fresh = make_trace(profile, 30_000, seed=11)
        assert isinstance(fresh, SyntheticTrace)
        for memo_chunk, fresh_chunk in zip(memo_a.chunks(), fresh.chunks()):
            assert memo_chunk.gaps == fresh_chunk.gaps
            assert memo_chunk.addrs == fresh_chunk.addrs
            assert memo_chunk.writes == fresh_chunk.writes
        clear_trace_memo()

    def test_materialized_trace_is_replayable(self):
        clear_trace_memo()
        trace = make_trace(get_profile("gcc"), 30_000, seed=12)
        first = [len(chunk) for chunk in trace.chunks()]
        second = [len(chunk) for chunk in trace.chunks()]
        assert first == second and first
        clear_trace_memo()

    def test_simulation_identical_with_and_without_memo(self, monkeypatch):
        config = small_config()
        clear_trace_memo()
        with_memo = batched_run(config, "picl", "gcc", N, seed=13)
        monkeypatch.setenv("REPRO_NO_TRACE_MEMO", "1")
        without_memo = batched_run(config, "picl", "gcc", N, seed=13)
        assert_identical(with_memo, without_memo)
        clear_trace_memo()
