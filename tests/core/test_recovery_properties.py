"""Property-based crash-recovery tests: the paper's core guarantee.

For any sequence of stores, loads, and epoch boundaries, and a crash at
any point, PiCL's recovery must reproduce exactly the architectural memory
image at the last persisted commit. The same holds (with their own commit
points) for FRM, Journaling, and Shadow-Paging.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import SchemeHarness, images_equal, line, tiny_config
from repro.core.picl import PiclConfig

# An operation is (kind, line_number): kind 0 = load, 1 = store, 2 = epoch
# boundary (line number ignored).
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=120,
)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drive(harness, ops):
    for kind, n in ops:
        if kind == 0:
            harness.load(line(n))
        elif kind == 1:
            harness.store(line(n))
        else:
            harness.end_epoch()


def assert_recovers_exactly(harness):
    image, commit_id, reference = harness.crash_and_recover()
    assert reference is not None, "reference snapshot missing for commit %r" % (
        commit_id,
    )
    assert images_equal(image, reference), (
        "recovered image diverges from commit %r" % commit_id
    )


class TestPiclRecoveryProperty:
    @given(ops=ops_strategy, acs_gap=st.integers(min_value=0, max_value=4))
    @relaxed
    def test_recovery_matches_persisted_commit(self, ops, acs_gap):
        config = tiny_config(picl=PiclConfig(acs_gap=acs_gap))
        harness = SchemeHarness("picl", config=config)
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_recovery_with_tiny_undo_buffer(self, ops):
        # A 2-entry buffer flushes constantly, stressing the ordering.
        config = tiny_config(
            picl=PiclConfig(acs_gap=2, undo_buffer_entries=2)
        )
        harness = SchemeHarness("picl", config=config)
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_recovery_with_capped_log(self, ops):
        config = tiny_config(
            picl=PiclConfig(
                acs_gap=2, undo_buffer_entries=2, log_max_bytes=72 * 32
            )
        )
        harness = SchemeHarness("picl", config=config)
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_recovery_after_bulk_acs(self, ops):
        harness = SchemeHarness("picl")
        drive(harness, ops)
        harness.scheme.persist_all_now(harness.now)
        # After a bulk ACS the persisted state is the forced commit: a
        # crash right now must recover it.
        assert_recovers_exactly(harness)


class TestBaselineRecoveryProperties:
    @given(ops=ops_strategy)
    @relaxed
    def test_frm_recovers_last_commit(self, ops):
        harness = SchemeHarness("frm")
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_journaling_recovers_last_commit(self, ops):
        harness = SchemeHarness("journaling")
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_shadow_recovers_last_commit(self, ops):
        harness = SchemeHarness("shadow")
        drive(harness, ops)
        assert_recovers_exactly(harness)

    @given(ops=ops_strategy)
    @relaxed
    def test_thynvm_recovers_last_commit(self, ops):
        harness = SchemeHarness("thynvm")
        drive(harness, ops)
        assert_recovers_exactly(harness)


class TestSharedMemoryRecoveryProperty:
    """Two cores, one address space: recovery must survive sharing."""

    shared_ops = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # load/store/epoch
            st.integers(min_value=0, max_value=12),  # line
            st.integers(min_value=0, max_value=1),  # core
        ),
        min_size=1,
        max_size=80,
    )

    @given(ops=shared_ops)
    @relaxed
    def test_picl_recovery_with_two_cores(self, ops):
        config = tiny_config(n_cores=2, picl=PiclConfig(acs_gap=2))
        harness = SchemeHarness("picl", config=config)
        for kind, n, core in ops:
            if kind == 0:
                harness.load(line(n), core=core)
            elif kind == 1:
                harness.store(line(n), core=core)
            else:
                harness.end_epoch()
        assert_recovers_exactly(harness)

    @given(ops=shared_ops)
    @relaxed
    def test_frm_recovery_with_two_cores(self, ops):
        harness = SchemeHarness("frm", config=tiny_config(n_cores=2))
        for kind, n, core in ops:
            if kind == 0:
                harness.load(line(n), core=core)
            elif kind == 1:
                harness.store(line(n), core=core)
            else:
                harness.end_epoch()
        assert_recovers_exactly(harness)


class TestLogInvariants:
    @given(ops=ops_strategy)
    @relaxed
    def test_valid_till_nondecreasing(self, ops):
        # The recovery early-stop is only sound if log order equals
        # ValidTill order.
        config = tiny_config(picl=PiclConfig(acs_gap=3, undo_buffer_entries=2))
        harness = SchemeHarness("picl", config=config)
        drive(harness, ops)
        harness.scheme.buffer.flush(harness.now)
        tills = [
            e.valid_till for e in harness.scheme.log.iter_entries_backward()
        ]
        tills.reverse()
        assert tills == sorted(tills)

    @given(ops=ops_strategy)
    @relaxed
    def test_gc_reclaims_expired_head_blocks(self, ops):
        # GC runs at every persist, so the head superblock can never be
        # expired with respect to the PersistedEID at that time.
        config = tiny_config(picl=PiclConfig(acs_gap=1, undo_buffer_entries=2))
        harness = SchemeHarness("picl", config=config)
        drive(harness, ops)
        harness.scheme.log.collect_garbage(harness.scheme.epochs.persisted_eid)
        blocks = harness.scheme.log._superblocks
        if blocks:
            assert not blocks[0].expired(harness.scheme.epochs.persisted_eid)

    @given(ops=ops_strategy)
    @relaxed
    def test_recovery_is_idempotent(self, ops):
        # Running the recovery procedure twice (a crash during recovery,
        # then recovering again) must yield the same image.
        harness = SchemeHarness("picl")
        drive(harness, ops)
        harness.system.crash()
        first, _ = harness.scheme.recover()
        second, _ = harness.scheme.recover()
        assert first == second
