"""OS duties: handler cost, log extension, crash handling."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.common.errors import RecoveryError
from repro.core.os_interface import EpochBoundaryHandler, OsInterface
from repro.core.picl import PiclConfig
from repro.mem.log_region import LogRegion
from repro.mem.timing import NvmTimings


class TestEpochBoundaryHandler:
    def test_cost_scales_with_cores(self):
        one = EpochBoundaryHandler(n_cores=1)
        eight = EpochBoundaryHandler(n_cores=8)
        assert eight.cost_cycles() > one.cost_cycles()

    def test_cost_components(self):
        handler = EpochBoundaryHandler(n_cores=2, base_cycles=100, cycles_per_line=10)
        assert handler.cost_cycles() == 100 + 2 * 4 * 10


class TestLogExtension:
    def test_grant_extension_grows_region(self):
        os_iface = OsInterface(extension_bytes=1000)
        log = LogRegion(capacity_bytes=144, entry_bytes=72)
        before = log.capacity_bytes
        assert os_iface.grant_extension(log, needed_bytes=72)
        assert log.capacity_bytes == before + 1000
        assert os_iface.extensions_granted == 1

    def test_grant_covers_large_requests(self):
        os_iface = OsInterface(extension_bytes=100)
        log = LogRegion(capacity_bytes=144, entry_bytes=72)
        os_iface.grant_extension(log, needed_bytes=5000)
        assert log.capacity_bytes >= 144 + 5000

    def test_wired_as_callback(self):
        os_iface = OsInterface(extension_bytes=10_000)
        log = LogRegion(
            capacity_bytes=72, entry_bytes=72, on_exhausted=os_iface.grant_extension
        )
        from repro.core.undo import UndoEntry

        log.append(UndoEntry(0, 1, 0, 1))
        log.append(UndoEntry(64, 2, 0, 1))
        assert os_iface.extensions_granted == 1


class TestCrashHandling:
    def _persisted_harness(self):
        config = tiny_config(picl=PiclConfig(acs_gap=0))
        harness = SchemeHarness("picl", config=config)
        harness.store(line(1))
        harness.end_epoch()
        harness.store(line(2))
        return harness

    def test_handle_crash_returns_image_and_report(self):
        harness = self._persisted_harness()
        harness.system.crash()
        os_iface = OsInterface()
        image, commit_id, report = os_iface.handle_crash(harness.scheme)
        assert commit_id == 0
        assert report is not None

    def test_handle_crash_verifies_reference(self):
        harness = self._persisted_harness()
        reference = harness.system.commit_snapshot(0)
        harness.system.crash()
        OsInterface().handle_crash(harness.scheme, reference_snapshot=reference)

    def test_handle_crash_raises_on_bad_reference(self):
        harness = self._persisted_harness()
        harness.system.crash()
        with pytest.raises(RecoveryError):
            OsInterface().handle_crash(
                harness.scheme, reference_snapshot={line(1): 123456}
            )

    def test_recovery_latency_estimate(self):
        harness = self._persisted_harness()
        latency = OsInterface().estimate_recovery_latency(
            harness.scheme, NvmTimings()
        )
        assert latency >= 0
