"""Availability arithmetic: the paper's §IV-C claims, checked."""

import pytest

from repro.core.availability import (
    SECONDS_PER_DAY,
    availability,
    compare_schemes,
    compute_time_lost_per_day,
    effective_throughput,
    max_recovery_for_nines,
    nines,
    picl_worst_case_recovery_s,
)


class TestPaperClaims:
    def test_five_nines_needs_864ms_recovery(self):
        # "To achieve 99.999%, system must recover within 864ms" (per-day
        # failures). 0.001% of 86,400 s = 864 ms (to first order).
        budget = max_recovery_for_nines(5, mtbf_s=SECONDS_PER_DAY)
        assert budget == pytest.approx(0.864, rel=0.01)

    def test_4_4s_recovery_still_four_nines(self):
        # "supposing recovery latency increases to 4.4s, system
        # availability is still 99.99[5]% assuming a MTBF of one day."
        a = availability(4.4, mtbf_s=SECONDS_PER_DAY)
        assert a > 0.99994
        assert nines(a) == 4

    def test_25_percent_overhead_dwarfs_recovery_costs(self):
        # "a 25% runtime overhead amounts to [hours] of compute time lost
        # per day" — versus seconds for even a slow recovery.
        lost_to_overhead = compute_time_lost_per_day(0.25)
        assert lost_to_overhead > 17_000  # ~4.8 hours
        assert lost_to_overhead > 1000 * 4.4  # >> one slow recovery

    def test_picl_worst_case_multiplies_prior_work(self):
        # Prior work: 620 ms worst case; PiCL: "lengthened by a few
        # multiples" (the live-epoch window).
        assert picl_worst_case_recovery_s() == pytest.approx(0.62 * 4)
        assert picl_worst_case_recovery_s(acs_gap=7) == pytest.approx(0.62 * 8)
        assert picl_worst_case_recovery_s(comingling_factor=2) == pytest.approx(1.24)

    def test_picl_trade_is_worth_it(self):
        # The paper's argument in one inequality: PiCL (no overhead,
        # longer recovery) beats a 25%-overhead scheme with instant
        # recovery.
        picl = effective_throughput(0.01, picl_worst_case_recovery_s())
        frm_like = effective_throughput(0.25, 0.62)
        assert picl > frm_like


class TestMechanics:
    def test_availability_bounds(self):
        assert availability(0) == 1.0
        assert 0 < availability(1e9) < 0.01

    def test_availability_validation(self):
        with pytest.raises(ValueError):
            availability(-1)
        with pytest.raises(ValueError):
            availability(1, mtbf_s=0)

    def test_nines_counting(self):
        assert nines(0.99) == 2
        assert nines(0.999) == 3
        assert nines(0.99999) == 5
        assert nines(0.5) == 0

    def test_nines_validation(self):
        with pytest.raises(ValueError):
            nines(1.0)

    def test_max_recovery_monotone_in_nines(self):
        assert max_recovery_for_nines(3) > max_recovery_for_nines(5)

    def test_compute_time_lost_validation(self):
        with pytest.raises(ValueError):
            compute_time_lost_per_day(-0.1)

    def test_compute_time_lost_zero_overhead(self):
        assert compute_time_lost_per_day(0) == 0

    def test_effective_throughput_degrades_with_both_costs(self):
        base = effective_throughput(0.0, 0.0)
        assert base == 1.0
        assert effective_throughput(0.1, 0.0) < base
        assert effective_throughput(0.0, 100.0) < base

    def test_compare_schemes_sorted_best_first(self):
        ranking = compare_schemes(
            overheads={"picl": 0.01, "frm": 0.3, "journaling": 1.4},
            recovery_latencies_s={"picl": 2.5, "frm": 0.62, "journaling": 0.0},
        )
        names = list(ranking)
        assert names[0] == "picl"
        assert names[-1] == "journaling"
        values = list(ranking.values())
        assert values == sorted(values, reverse=True)
