"""Bloom filter: no false negatives, bounded false positives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.core.bloom import BloomFilter


class TestBasics:
    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter()
        assert not bloom.might_contain(0x40)

    def test_added_address_found(self):
        bloom = BloomFilter()
        bloom.add(0x40)
        assert bloom.might_contain(0x40)

    def test_clear(self):
        bloom = BloomFilter()
        bloom.add(0x40)
        bloom.clear()
        assert not bloom.might_contain(0x40)
        assert bloom.population == 0

    def test_population_counts_adds(self):
        bloom = BloomFilter()
        bloom.add(0x40)
        bloom.add(0x40)
        assert bloom.population == 2

    def test_saturation_grows(self):
        bloom = BloomFilter()
        assert bloom.saturation() == 0.0
        bloom.add(0x40)
        assert bloom.saturation() > 0.0


class TestValidation:
    def test_bits_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(n_bits=1000)

    def test_needs_a_hash(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(n_hashes=0)


class TestNoFalseNegatives:
    @given(st.sets(st.integers(min_value=0, max_value=1 << 40).map(lambda n: n * 64), max_size=64))
    @settings(max_examples=50)
    def test_every_added_address_is_found(self, addrs):
        bloom = BloomFilter()
        for addr in addrs:
            bloom.add(addr)
        for addr in addrs:
            assert bloom.might_contain(addr)


class TestFalsePositiveRate:
    def test_paper_sizing_keeps_fp_rate_insignificant(self):
        # "the false-positive rate is insignificant when a sufficiently
        # large bloom filter is used (i.e., 4096 bits vs 32 entries)".
        bloom = BloomFilter(n_bits=4096, n_hashes=2)
        members = [i * 64 for i in range(32)]
        for addr in members:
            bloom.add(addr)
        probes = [i * 64 for i in range(1000, 11000)]
        false_positives = sum(1 for p in probes if bloom.might_contain(p))
        assert false_positives / len(probes) < 0.01

    def test_small_filter_has_more_false_positives(self):
        small = BloomFilter(n_bits=64, n_hashes=2)
        large = BloomFilter(n_bits=4096, n_hashes=2)
        members = [i * 64 for i in range(32)]
        for addr in members:
            small.add(addr)
            large.add(addr)
        probes = [i * 64 for i in range(1000, 3000)]
        fp_small = sum(1 for p in probes if small.might_contain(p))
        fp_large = sum(1 for p in probes if large.might_contain(p))
        assert fp_small > fp_large
