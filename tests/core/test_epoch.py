"""Epoch state machine: commit/persist ordering and the tag window."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.epoch import EpochManager


class TestInitialState:
    def test_system_starts_at_epoch_zero(self):
        epochs = EpochManager()
        assert epochs.system_eid == 0

    def test_nothing_persisted_initially(self):
        assert EpochManager().persisted_eid == -1

    def test_oversized_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            EpochManager(acs_gap=20, eid_bits=4)


class TestCommit:
    def test_commit_advances_system_eid(self):
        epochs = EpochManager(acs_gap=3)
        committed, _target = epochs.commit()
        assert committed == 0
        assert epochs.system_eid == 1

    def test_no_persist_target_while_pipeline_fills(self):
        epochs = EpochManager(acs_gap=3)
        targets = [epochs.commit()[1] for _ in range(3)]
        assert targets == [None, None, None]

    def test_persist_target_trails_by_gap(self):
        epochs = EpochManager(acs_gap=3)
        for _ in range(3):
            epochs.commit()
        _committed, target = epochs.commit()  # commits epoch 3
        assert target == 0

    def test_gap_zero_persists_immediately(self):
        epochs = EpochManager(acs_gap=0)
        committed, target = epochs.commit()
        assert target == committed == 0


class TestPersist:
    def test_persist_advances(self):
        epochs = EpochManager(acs_gap=0)
        epochs.commit()
        epochs.persist(0)
        assert epochs.persisted_eid == 0

    def test_persist_must_be_in_order(self):
        epochs = EpochManager(acs_gap=0)
        epochs.commit()
        epochs.commit()
        with pytest.raises(SimulationError):
            epochs.persist(1)  # skipping 0

    def test_cannot_persist_uncommitted(self):
        epochs = EpochManager(acs_gap=0)
        with pytest.raises(SimulationError):
            epochs.persist(0)

    def test_cannot_persist_executing_epoch(self):
        epochs = EpochManager(acs_gap=0)
        epochs.commit()
        epochs.persist(0)
        with pytest.raises(SimulationError):
            epochs.persist(1)  # epoch 1 is still executing


class TestWindowQueries:
    def test_committed_unpersisted(self):
        epochs = EpochManager(acs_gap=3)
        for _ in range(4):
            epochs.commit()
        assert epochs.committed_unpersisted() == [0, 1, 2, 3]
        epochs.persist(0)
        assert epochs.committed_unpersisted() == [1, 2, 3]

    def test_in_flight_bounded_by_gap_in_steady_state(self):
        epochs = EpochManager(acs_gap=3)
        for _ in range(20):
            _committed, target = epochs.commit()
            if target is not None:
                epochs.persist(target)
        assert epochs.in_flight() == epochs.acs_gap

    def test_is_transient(self):
        epochs = EpochManager()
        assert epochs.is_transient(0)
        assert not epochs.is_transient(1)
        epochs.commit()
        assert epochs.is_transient(1)
