"""Tracking granularity: 64 B default vs OpenPiton's 16 B sub-blocks."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.cache.line import CacheLine
from repro.core.granularity import (
    GranularityPolicy,
    SubBlockPolicy,
    make_policy,
)
from repro.core.picl import PiclConfig
from repro.core.undo import ENTRY_BYTES, SUBBLOCK_ENTRY_BYTES


class TestFactory:
    def test_64(self):
        assert isinstance(make_policy(64), GranularityPolicy)
        assert make_policy(64).entry_bytes == ENTRY_BYTES

    def test_16(self):
        assert isinstance(make_policy(16), SubBlockPolicy)
        assert make_policy(16).entry_bytes == SUBBLOCK_ENTRY_BYTES

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_policy(32)


class TestLinePolicy:
    def test_needs_undo_on_fresh_line(self):
        policy = make_policy(64)
        cache_line = CacheLine(0)
        assert policy.needs_undo(cache_line, system_eid=0, store_hint=0) == -1

    def test_transient_line_needs_nothing(self):
        policy = make_policy(64)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=2, store_hint=0)
        assert policy.needs_undo(cache_line, system_eid=2, store_hint=1) is None

    def test_cross_epoch_returns_tagged_eid(self):
        policy = make_policy(64)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=2, store_hint=0)
        assert policy.needs_undo(cache_line, system_eid=5, store_hint=1) == 2


class TestSubBlockPolicy:
    def test_apply_store_initializes_sub_eids(self):
        policy = make_policy(16)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=1, store_hint=0)
        assert cache_line.sub_eids is not None
        assert len(cache_line.sub_eids) == 4

    def test_different_sub_blocks_tracked_independently(self):
        policy = make_policy(16)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=1, store_hint=0)  # sub 0
        # Same epoch, different sub-block: a new undo is still needed.
        assert policy.needs_undo(cache_line, system_eid=1, store_hint=1) == -1

    def test_same_sub_block_transient(self):
        policy = make_policy(16)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=1, store_hint=4)  # sub 0
        assert policy.needs_undo(cache_line, system_eid=1, store_hint=8) is None

    def test_line_eid_tracks_latest(self):
        policy = make_policy(16)
        cache_line = CacheLine(0)
        policy.apply_store(cache_line, system_eid=3, store_hint=2)
        assert cache_line.eid == 3


class TestSchemeIntegration:
    def _run(self, granularity, stores):
        config = tiny_config(
            picl=PiclConfig(acs_gap=1, tracking_granularity=granularity)
        )
        harness = SchemeHarness("picl", config=config)
        for _ in range(stores):
            harness.store(line(1))
        return harness

    def test_subblock_mode_creates_more_entries(self):
        coarse = self._run(64, stores=4)
        fine = self._run(16, stores=4)
        assert (
            fine.stats.get("undo.entries_created")
            > coarse.stats.get("undo.entries_created")
        )

    def test_subblock_entries_are_smaller_on_log(self):
        fine = self._run(16, stores=4)
        assert fine.scheme.log.entry_bytes == SUBBLOCK_ENTRY_BYTES

    def test_subblock_recovery_still_exact(self):
        config = tiny_config(
            picl=PiclConfig(acs_gap=1, tracking_granularity=16)
        )
        harness = SchemeHarness("picl", config=config)
        for i in range(6):
            harness.store(line(i % 3))
            if i % 2:
                harness.end_epoch()
        image, commit_id, reference = harness.crash_and_recover()
        assert reference is not None
        for addr in set(image) | set(reference):
            assert image.get(addr, 0) == reference.get(addr, 0)
