"""Recovery algorithm: backward scan, oldest-wins, early stop."""

import pytest

from repro.common.errors import RecoveryError
from repro.core.recovery import (
    RecoveryReport,
    check_recovered,
    recover_image,
    recovery_latency_cycles,
)
from repro.core.undo import UndoEntry
from repro.mem.log_region import LogRegion
from repro.mem.timing import NvmTimings


def make_log(entries, per_block=2):
    log = LogRegion(entry_bytes=72, superblock_bytes=72 * per_block)
    log.append_many(entries)
    return log


class TestBasicRecovery:
    def test_empty_log_returns_image(self):
        image, report = recover_image({0: 5}, make_log([]), persisted_eid=0)
        assert image == {0: 5}
        assert report.entries_applied == 0

    def test_matching_entry_applied(self):
        log = make_log([UndoEntry(0, 7, 0, 1)])
        image, report = recover_image({0: 99}, log, persisted_eid=0)
        assert image[0] == 7
        assert report.entries_applied == 1

    def test_non_covering_entry_skipped(self):
        log = make_log([UndoEntry(0, 7, 2, 3)])
        image, _report = recover_image({0: 99}, log, persisted_eid=0)
        assert image[0] == 99

    def test_input_image_not_mutated(self):
        nvm = {0: 99}
        log = make_log([UndoEntry(0, 7, 0, 1)])
        recover_image(nvm, log, persisted_eid=0)
        assert nvm == {0: 99}

    def test_initial_state_recovery(self):
        # PersistedEID -1: revert everything to the initial image.
        log = make_log([UndoEntry(0, 0, -1, 0)])
        image, _report = recover_image({0: 55}, log, persisted_eid=-1)
        assert image[0] == 0


class TestOldestWins:
    def test_multiple_entries_same_address(self):
        # "there could be multiple undo entries for the same address ...
        # but only the oldest one is valid."
        log = make_log(
            [
                UndoEntry(0, 10, 0, 1),  # oldest: value during epoch 0
                UndoEntry(0, 20, 0, 1),  # newer duplicate for the same range
            ]
        )
        image, _report = recover_image({0: 99}, log, persisted_eid=0)
        assert image[0] == 10

    def test_disjoint_ranges_pick_covering_one(self):
        log = make_log(
            [
                UndoEntry(0, 10, 0, 2),
                UndoEntry(0, 20, 2, 5),
            ]
        )
        image, _report = recover_image({0: 99}, log, persisted_eid=3)
        assert image[0] == 20
        image, _report = recover_image({0: 99}, log, persisted_eid=1)
        assert image[0] == 10


class TestEarlyStop:
    def test_scan_stops_at_expired_superblock(self):
        entries = [UndoEntry(i * 64, i, 0, 1) for i in range(4)]  # till=1
        entries += [UndoEntry(i * 64, 100 + i, 4, 5) for i in range(4)]
        log = make_log(entries, per_block=2)
        _image, report = recover_image({}, log, persisted_eid=4)
        assert report.stopped_early
        # Only the two live superblocks were scanned.
        assert report.superblocks_scanned == 2
        assert report.entries_scanned == 4

    def test_full_scan_when_everything_live(self):
        entries = [UndoEntry(i * 64, i, 0, 5) for i in range(4)]
        log = make_log(entries, per_block=2)
        _image, report = recover_image({}, log, persisted_eid=0)
        assert not report.stopped_early
        assert report.entries_scanned == 4


class TestEdgeCases:
    def test_empty_log_empty_image(self):
        image, report = recover_image({}, make_log([]), persisted_eid=0)
        assert image == {}
        assert report.entries_scanned == 0
        assert not report.stopped_early

    def test_zero_committed_epochs_reverts_everything(self):
        # Crash before the first commit ever persisted: PersistedEID -1,
        # every store since boot has an initial-image undo entry.
        log = make_log(
            [UndoEntry(0, 0, -1, 0), UndoEntry(64, 0, -1, 1)]
        )
        image, report = recover_image(
            {0: 7, 64: 9, 128: 3}, log, persisted_eid=-1
        )
        assert image[0] == 0 and image[64] == 0
        assert image[128] == 3  # never logged: unmodified since boot
        assert report.entries_applied == 2

    def test_stopped_early_only_when_scan_truncates(self):
        live = [UndoEntry(0, 1, 2, 4)]
        expired = [UndoEntry(64, 2, 0, 1), UndoEntry(128, 3, 0, 1)]
        _image, report = recover_image(
            {}, make_log(expired + live, per_block=2), persisted_eid=2
        )
        assert report.stopped_early
        _image, full_report = recover_image(
            {}, make_log(live, per_block=2), persisted_eid=2
        )
        assert not full_report.stopped_early

    def test_early_stop_block_is_not_scanned(self):
        expired = [UndoEntry(i * 64, i, 0, 1) for i in range(2)]
        live = [UndoEntry(i * 64, 50 + i, 1, 9) for i in range(2)]
        log = make_log(expired + live, per_block=2)
        _image, report = recover_image({}, log, persisted_eid=1)
        assert report.superblocks_scanned == 1
        assert report.entries_scanned == 2


class TestRestartability:
    """Recovery interrupted by a second crash must be rerunnable."""

    def entries(self):
        return [
            UndoEntry(0, 10, 0, 2),
            UndoEntry(64, 11, 0, 2),
            UndoEntry(128, 12, 0, 2),
            UndoEntry(64, 99, 1, 2),  # newer duplicate: oldest must win
        ]

    def test_apply_limit_stops_mid_recovery(self):
        log = make_log(self.entries())
        _image, report = recover_image({}, log, persisted_eid=1, apply_limit=2)
        assert report.entries_applied == 2

    def test_interrupted_then_rerun_converges(self):
        nvm = {0: 1, 64: 2, 128: 3, 192: 4}
        log = make_log(self.entries())
        complete, _r = recover_image(nvm, log, persisted_eid=1)
        for limit in range(0, 5):
            partial, _r = recover_image(
                nvm, log, persisted_eid=1, apply_limit=limit
            )
            # The partially-recovered image *is* the NVM when the second
            # crash hits; recovery from it must land on the same image.
            rerun, _r = recover_image(partial, log, persisted_eid=1)
            assert rerun == complete, "diverged at apply_limit=%d" % limit

    def test_recovery_is_idempotent(self):
        nvm = {0: 1, 64: 2, 128: 3}
        log = make_log(self.entries())
        once, _r = recover_image(nvm, log, persisted_eid=1)
        twice, _r = recover_image(once, log, persisted_eid=1)
        assert twice == once


class TestCheckRecovered:
    def test_matching_images_pass(self):
        check_recovered({0: 1}, {0: 1})

    def test_zero_tokens_equivalent(self):
        check_recovered({0: 0}, {})
        check_recovered({}, {64: 0})

    def test_mismatch_raises(self):
        with pytest.raises(RecoveryError, match="diverges"):
            check_recovered({0: 1}, {0: 2})

    def test_missing_line_raises(self):
        with pytest.raises(RecoveryError):
            check_recovered({}, {0: 2})


class TestRecoveryLatency:
    def test_scales_with_applied_entries(self):
        timings = NvmTimings()
        small = RecoveryReport(0)
        small.entries_scanned = 10
        small.entries_applied = 2
        large = RecoveryReport(0)
        large.entries_scanned = 10_000
        large.entries_applied = 2_000
        assert recovery_latency_cycles(large, timings) > recovery_latency_cycles(
            small, timings
        )

    def test_empty_recovery_is_cheap(self):
        report = RecoveryReport(0)
        cycles = recovery_latency_cycles(report, NvmTimings())
        # One row read for the marker check, nothing else.
        assert cycles <= NvmTimings().bulk_read_cycles(1)

    def test_report_repr(self):
        report = RecoveryReport(3)
        assert "target=3" in repr(report)
