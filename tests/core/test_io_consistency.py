"""I/O consistency under deferred persistency (§IV-C)."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.core.io_consistency import IoConsistencyBuffer
from repro.core.picl import PiclConfig


def make(acs_gap=2):
    config = tiny_config(picl=PiclConfig(acs_gap=acs_gap))
    harness = SchemeHarness("picl", config=config)
    io = IoConsistencyBuffer(harness.scheme)
    return harness, io


class TestReads:
    def test_reads_proceed_immediately(self):
        _harness, io = make()
        assert io.io_read(now=100) == 100


class TestBufferedWrites:
    def test_write_held_until_epoch_persists(self):
        harness, io = make(acs_gap=1)
        harness.store(line(1))
        released = io.io_write("packet", now=harness.now)
        assert released is None
        assert io.pending_count() == 1
        harness.end_epoch()  # commit 0 (gap 1: nothing persists)
        assert io.pending_count() == 1
        harness.end_epoch()  # commit 1, persist 0 -> release
        assert io.pending_count() == 0
        assert len(io.released) == 1

    def test_release_delay_is_gap_epochs(self):
        harness, io = make(acs_gap=2)
        io.io_write("x", now=harness.now)
        for _ in range(3):
            harness.end_epoch()
        delays = io.release_delays()
        assert len(delays) == 1
        assert delays[0] >= 0

    def test_writes_of_later_epochs_stay_pending(self):
        harness, io = make(acs_gap=1)
        io.io_write("early", now=harness.now)
        harness.end_epoch()
        io.io_write("late", now=harness.now)
        harness.end_epoch()  # persists epoch 0 only
        assert len(io.released) == 1
        assert io.released[0].payload == "early"
        assert io.pending_count() == 1


class TestUnreliableInterfaces:
    def test_unreliable_writes_release_immediately(self):
        harness, io = make()
        released_at = io.io_write("udp", now=harness.now, unreliable=True)
        assert released_at == harness.now
        assert io.pending_count() == 0


class TestCriticalWrites:
    def test_critical_write_forces_bulk_acs(self):
        harness, io = make(acs_gap=3)
        harness.store(line(1))
        released_at = io.io_write("fsync", now=harness.now, critical=True)
        assert released_at is not None
        assert harness.stats.get("picl.bulk_acs") == 1
        assert harness.scheme.epochs.in_flight() == 0

    def test_critical_write_releases_earlier_pending_too(self):
        harness, io = make(acs_gap=3)
        io.io_write("a", now=harness.now)
        io.io_write("b", now=harness.now, critical=True)
        assert io.pending_count() == 0
        assert len(io.released) == 2
