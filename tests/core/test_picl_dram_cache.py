"""PiCL composed with the DRAM memory-side cache (§IV-C).

"PiCL functions well with both write-through and write-back DRAM. With
write-through DRAM caches, no modifications are needed" — the semantics of
writes are unchanged, so crash recovery must still be exact.
"""

import pytest

from helpers import images_equal, line, tiny_config
from repro.cache.hierarchy import CacheHierarchy
from repro.common.stats import StatCounters
from repro.common.units import KB
from repro.cpu.core import CoreState
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.mem.dram_cache import DramCache, DramCacheMode
from repro.sim.simulator import build_scheme


def build_with_dram(scheme_name="picl", mode=DramCacheMode.WRITE_THROUGH):
    config = tiny_config()
    stats = StatCounters()
    dram = DramCache(64 * KB, assoc=2, mode=mode)
    controller = MemoryController(config.nvm, stats, dram_cache=dram)
    hierarchy = CacheHierarchy(
        controller,
        n_cores=1,
        l1_size=config.l1_size,
        l1_assoc=config.l1_assoc,
        l2_size=config.l2_size,
        l2_assoc=config.l2_assoc,
        llc_size_per_core=config.llc_size_per_core,
        llc_assoc=config.llc_assoc,
        stats=stats,
    )
    cores = [CoreState(0)]
    system = System(
        controller, hierarchy, cores, stats=stats, track_reference=True
    )
    scheme = build_scheme(scheme_name, system, config)
    return system, scheme, hierarchy, controller


class _Driver:
    def __init__(self, system, scheme, hierarchy):
        self.system = system
        self.scheme = scheme
        self.hierarchy = hierarchy
        self.now = 0

    def store(self, addr):
        token = self.system.new_token()
        wait = self.hierarchy.access(0, addr, True, token, self.now)
        self.system.note_store(addr, token)
        self.now += wait + 1
        return token

    def end_epoch(self):
        stall = self.scheme.on_epoch_boundary(self.now)
        self.now += stall


class TestWriteThroughComposition:
    def test_recovery_still_exact(self):
        system, scheme, hierarchy, _controller = build_with_dram()
        driver = _Driver(system, scheme, hierarchy)
        for epoch in range(6):
            for i in range(10):
                driver.store(line(epoch * 10 + i))
            driver.end_epoch()
        system.crash()
        image, commit_id = scheme.recover()
        reference = system.commit_snapshot(commit_id)
        assert reference is not None
        assert images_equal(image, reference)

    def test_dram_absorbs_read_traffic(self):
        system, scheme, hierarchy, controller = build_with_dram()
        driver = _Driver(system, scheme, hierarchy)
        for i in range(64):
            driver.store(line(i))
        assert controller.stats.get("dram.hits") > 0

    def test_writes_still_reach_nvm(self):
        system, scheme, hierarchy, controller = build_with_dram()
        driver = _Driver(system, scheme, hierarchy)
        token = driver.store(line(1))
        scheme.write_back(line(1), token, driver.now)
        assert controller.image.read(line(1)) == token


class TestFrmComposition:
    def test_frm_with_write_through_dram_recovers(self):
        system, scheme, hierarchy, _controller = build_with_dram("frm")
        driver = _Driver(system, scheme, hierarchy)
        for epoch in range(3):
            for i in range(8):
                driver.store(line(i))
            driver.end_epoch()
        driver.store(line(0))  # uncommitted
        system.crash()
        image, commit_id = scheme.recover()
        reference = system.commit_snapshot(commit_id)
        assert reference is not None
        assert images_equal(image, reference)
