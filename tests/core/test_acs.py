"""ACS engine scanning behaviour in isolation."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.core.acs import AcsEngine
from repro.core.picl import PiclConfig


def harness_with_tagged_lines():
    """Three dirty lines tagged with epochs 0, 1, 2."""
    config = tiny_config(picl=PiclConfig(acs_gap=3))
    harness = SchemeHarness("picl", config=config)
    for epoch in range(3):
        harness.store(line(epoch))
        harness.end_epoch()
    return harness


class TestScan:
    def test_scan_matches_exact_eid(self):
        harness = harness_with_tagged_lines()
        engine = harness.scheme.acs
        writes, _stall = engine.scan(1, now=harness.now)
        assert writes == 1
        assert not harness.hierarchy.llc.lookup(line(1), touch=False).dirty
        # The other epochs' lines stay dirty (in their private caches).
        assert harness.hierarchy.l1(0).lookup(line(0), touch=False).dirty
        assert harness.hierarchy.l1(0).lookup(line(2), touch=False).dirty

    def test_scan_without_matches_writes_nothing(self):
        harness = harness_with_tagged_lines()
        writes, _stall = harness.scheme.acs.scan(9, now=harness.now)
        assert writes == 0

    def test_scan_skips_clean_lines(self):
        harness = harness_with_tagged_lines()
        engine = harness.scheme.acs
        engine.scan(0, now=harness.now)
        writes, _stall = engine.scan(0, now=harness.now)
        assert writes == 0

    def test_scan_counter(self):
        harness = harness_with_tagged_lines()
        harness.scheme.acs.scan(0, now=harness.now)
        assert harness.stats.get("acs.scans") == 1


class TestBulkScan:
    def test_bulk_scan_covers_range(self):
        harness = harness_with_tagged_lines()
        writes, _stall = harness.scheme.acs.bulk_scan(0, 2, now=harness.now)
        assert writes == 3
        assert harness.stats.get("acs.bulk_scans") == 1

    def test_bulk_scan_partial_range(self):
        harness = harness_with_tagged_lines()
        writes, _stall = harness.scheme.acs.bulk_scan(1, 2, now=harness.now)
        assert writes == 2
        assert harness.hierarchy.l1(0).lookup(line(0), touch=False).dirty


class TestDataCorrectness:
    def test_scan_writes_freshest_private_data(self):
        harness = harness_with_tagged_lines()
        # line(2) is dirty in L1 with the freshest token; the LLC copy is
        # stale until the snoop.
        token = harness.hierarchy.l1(0).lookup(line(2), touch=False).token
        harness.scheme.acs.scan(2, now=harness.now)
        assert harness.controller.read_token(line(2)) == token

    def test_race_with_execution_is_safe(self):
        # §IV-A: "if ACS occurs prior to w:A2, then A1 would be written to
        # memory, and then another copy of A1 will be appended to the undo
        # log... in either case correctness is preserved."
        config = tiny_config(picl=PiclConfig(acs_gap=0))
        harness = SchemeHarness("picl", config=config)
        a1 = harness.store(line(1))
        harness.end_epoch()  # ACS writes A1 in place (persist epoch 0)
        assert harness.controller.read_token(line(1)) == a1
        harness.store(line(1))  # epoch 1: clean line -> undo A1 again
        entries = harness.scheme.buffer.pending_entries()
        assert entries[0].token == a1
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        for addr in set(image) | set(reference):
            assert image.get(addr, 0) == reference.get(addr, 0)
