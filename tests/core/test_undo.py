"""Undo entry semantics: validity ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.core.undo import ENTRY_BYTES, SUBBLOCK_ENTRY_BYTES, UndoEntry


class TestConstruction:
    def test_fields(self):
        entry = UndoEntry(0x40, 7, 1, 3)
        assert entry.addr == 0x40
        assert entry.token == 7
        assert entry.valid_from == 1
        assert entry.valid_till == 3

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            UndoEntry(0, 1, 3, 3)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            UndoEntry(0, 1, 5, 2)

    def test_initial_state_range_allowed(self):
        # ValidFrom of -1 denotes "since the initial image".
        entry = UndoEntry(0, 1, -1, 0)
        assert entry.covers(-1)


class TestCoverage:
    def test_paper_example(self):
        # "undo for C1 will be tagged <1, 3>, which means this entry should
        # be used not only when reverting back to commit1, but also
        # commit2 (but not commit3)."
        entry = UndoEntry(0, 1, 1, 3)
        assert entry.covers(1)
        assert entry.covers(2)
        assert not entry.covers(3)
        assert not entry.covers(0)

    def test_single_epoch_range(self):
        entry = UndoEntry(0, 1, 4, 5)
        assert entry.covers(4)
        assert not entry.covers(5)

    @given(
        st.integers(min_value=-1, max_value=50),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=-2, max_value=80),
    )
    def test_covers_matches_halfopen_interval(self, start, width, target):
        entry = UndoEntry(0, 1, start, start + width)
        assert entry.covers(target) == (start <= target < start + width)


class TestExpiry:
    def test_expired_once_persisted_reaches_till(self):
        entry = UndoEntry(0, 1, 1, 3)
        assert not entry.expired(2)
        assert entry.expired(3)
        assert entry.expired(10)

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=80),
    )
    def test_expired_entries_never_cover_future_targets(
        self, start, width, persisted
    ):
        entry = UndoEntry(0, 1, start, start + width)
        if entry.expired(persisted):
            # Recovery only ever targets >= the persisted EID.
            for target in range(persisted, persisted + 25):
                assert not entry.covers(target)


class TestEquality:
    def test_equal_entries(self):
        assert UndoEntry(0, 1, 2, 3) == UndoEntry(0, 1, 2, 3)

    def test_unequal_entries(self):
        assert UndoEntry(0, 1, 2, 3) != UndoEntry(0, 2, 2, 3)

    def test_hashable(self):
        assert len({UndoEntry(0, 1, 2, 3), UndoEntry(0, 1, 2, 3)}) == 1

    def test_repr(self):
        assert "valid=[2, 3)" in repr(UndoEntry(0, 1, 2, 3))


class TestSizes:
    def test_line_entry_holds_line_plus_metadata(self):
        assert ENTRY_BYTES > 64

    def test_subblock_entry_smaller(self):
        assert SUBBLOCK_ENTRY_BYTES < ENTRY_BYTES
        assert SUBBLOCK_ENTRY_BYTES > 16
