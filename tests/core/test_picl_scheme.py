"""PiCL scheme semantics: cache-driven logging, ACS, multi-undo."""

import pytest

from helpers import SchemeHarness, images_equal, line, tiny_config
from repro.core.picl import PiclConfig
from repro.sim.config import SystemConfig


def make_harness(acs_gap=3, **picl_overrides):
    config = tiny_config(picl=PiclConfig(acs_gap=acs_gap, **picl_overrides))
    return SchemeHarness("picl", config=config)


class TestCacheDrivenLogging:
    def test_first_store_to_clean_line_logs_undo(self):
        harness = make_harness()
        harness.store(line(1))
        assert harness.stats.get("undo.entries_created") == 1
        entry = harness.scheme.buffer.pending_entries()[0]
        assert entry.addr == line(1)
        assert entry.token == 0  # pre-store (initial) contents
        assert entry.valid_from == -1  # PersistedEID at creation
        assert entry.valid_till == 0  # the executing epoch

    def test_same_epoch_stores_log_once(self):
        harness = make_harness()
        harness.store(line(1))
        harness.store(line(1))
        harness.store(line(1))
        assert harness.stats.get("undo.entries_created") == 1

    def test_cross_epoch_store_logs_again(self):
        harness = make_harness()
        first_token = harness.store(line(1))
        harness.end_epoch()
        harness.store(line(1))
        entries = harness.scheme.buffer.pending_entries()
        assert len(entries) == 2
        cross = entries[1]
        assert cross.token == first_token
        assert cross.valid_from == 0
        assert cross.valid_till == 1

    def test_store_updates_line_eid(self):
        harness = make_harness()
        harness.store(line(1))
        assert harness.hierarchy.l1(0).lookup(line(1), touch=False).eid == 0
        harness.end_epoch()
        harness.store(line(1))
        assert harness.hierarchy.l1(0).lookup(line(1), touch=False).eid == 1

    def test_undo_forwarding_updates_llc_eid(self):
        # "the private cache updates the EID tag and forwards undo data
        # entries to the LLC (the EID tag at the LLC is also updated)".
        harness = make_harness()
        harness.store(line(1))
        assert harness.hierarchy.llc.lookup(line(1), touch=False).eid == 0

    def test_no_undo_for_loads(self):
        harness = make_harness()
        harness.load(line(1))
        harness.load(line(2))
        assert harness.stats.get("undo.entries_created") == 0

    def test_cross_epoch_store_count_stat(self):
        harness = make_harness()
        harness.store(line(1))
        harness.end_epoch()
        harness.store(line(1))
        assert harness.stats.get("picl.cross_epoch_stores") == 2


class TestEpochBoundary:
    def test_commit_is_cheap(self):
        # No synchronous flush: the boundary costs only the handler (plus
        # posted-write backpressure, which an idle system has none of).
        harness = make_harness()
        for i in range(20):
            harness.store(line(i))
        stall = harness.end_epoch()
        assert stall <= harness.system.epoch_handler_cycles + 100

    def test_no_dirty_data_flushed_at_commit(self):
        harness = make_harness()
        harness.store(line(1))
        harness.end_epoch()
        assert harness.hierarchy.l1(0).lookup(line(1), touch=False).dirty

    def test_commit_ids_match_epoch_ids(self):
        harness = make_harness()
        harness.end_epoch()
        harness.end_epoch()
        assert harness.scheme.epochs.system_eid == 2
        assert harness.system.commit_count == 2


class TestAcs:
    def test_persist_trails_by_gap(self):
        harness = make_harness(acs_gap=2)
        for expected_persisted in (-1, -1, 0, 1):
            harness.end_epoch()
            assert harness.scheme.epochs.persisted_eid == expected_persisted

    def test_acs_writes_back_only_target_epoch(self):
        harness = make_harness(acs_gap=1)
        token_b = harness.store(line(2))  # epoch 0
        harness.end_epoch()
        harness.store(line(1))  # epoch 1: different line
        harness.end_epoch()  # commits epoch 1, persists epoch 0
        # line(2) (epoch 0) must now be durable in place...
        assert harness.controller.read_token(line(2)) == token_b
        # ...and clean in the cache.
        assert not harness.hierarchy.llc.lookup(line(2), touch=False).dirty
        # line(1) (epoch 1) is still volatile.
        assert harness.controller.read_token(line(1)) == 0

    def test_acs_skips_lines_rewritten_in_later_epochs(self):
        # Fig 6: A is modified again in Epoch2, so ACS1 does not write it —
        # its undo entry already covers recovery.
        harness = make_harness(acs_gap=1)
        harness.store(line(1))  # epoch 0
        harness.end_epoch()
        harness.store(line(1))  # epoch 1 (cross-epoch; LLC EID moves to 1)
        harness.end_epoch()  # persists epoch 0
        assert harness.controller.read_token(line(1)) == 0
        assert harness.stats.get("acs.writebacks") == 0

    def test_acs_inplace_writes_count_as_random(self):
        # Fig 12's accounting: "in-place write count for PiCL" is random.
        harness = make_harness(acs_gap=0)
        harness.store(line(1))
        harness.end_epoch()
        assert harness.stats.get("nvm.iops.random") >= 1

    def test_acs_flushes_undo_buffer(self):
        harness = make_harness(acs_gap=0)
        harness.store(line(1))
        assert len(harness.scheme.buffer) == 1
        harness.end_epoch()
        assert len(harness.scheme.buffer) == 0

    def test_acs_snoops_dirty_private_copies(self):
        harness = make_harness(acs_gap=0)
        token = harness.store(line(1))  # dirty only in L1
        harness.end_epoch()
        assert harness.controller.read_token(line(1)) == token

    def test_gc_runs_after_persist(self):
        harness = make_harness(acs_gap=0)
        harness.store(line(1))
        harness.end_epoch()  # persists epoch 0; entry [.., 0) expires
        assert harness.scheme.log.entry_count == 0


class TestMultiUndoWindow:
    def test_multiple_epochs_in_flight(self):
        harness = make_harness(acs_gap=3)
        for i in range(3):
            harness.store(line(i))
            harness.end_epoch()
        assert harness.scheme.epochs.in_flight() == 3

    def test_comingled_entries_in_one_log(self):
        harness = make_harness(acs_gap=3, undo_buffer_entries=2)
        harness.store(line(1))
        harness.store(line(2))  # flushes (capacity 2)
        harness.end_epoch()
        harness.store(line(3))
        harness.store(line(4))  # flushes again
        tills = [e.valid_till for e in harness.scheme.log.iter_entries_backward()]
        assert set(tills) == {0, 1}

    def test_valid_till_nondecreasing_along_log(self):
        # Recovery's early-stop depends on this invariant.
        harness = make_harness(acs_gap=3, undo_buffer_entries=1)
        for epoch in range(4):
            for i in range(3):
                harness.store(line(i))
            harness.end_epoch()
        tills = [
            entry.valid_till
            for block in harness.scheme.log._superblocks
            for entry in block.entries
        ]
        assert tills == sorted(tills)


class TestEvictionOrdering:
    def test_write_back_flushes_matching_pending_undo(self):
        harness = make_harness()
        harness.store(line(1))
        assert len(harness.scheme.buffer) == 1
        harness.scheme.write_back(line(1), 99, now=harness.now)
        # The undo entry became durable before the in-place write.
        assert harness.scheme.log.entry_count == 1
        assert harness.controller.read_token(line(1)) == 99

    def test_write_back_of_unrelated_line_keeps_buffer(self):
        harness = make_harness()
        harness.store(line(1))
        harness.scheme.write_back(line(900), 5, now=harness.now)
        assert len(harness.scheme.buffer) == 1


class TestBulkAcs:
    def test_persist_all_now(self):
        harness = make_harness(acs_gap=3)
        tokens = [harness.store(line(i)) for i in range(3)]
        harness.end_epoch()
        harness.store(line(5))
        harness.scheme.persist_all_now(harness.now)
        assert harness.scheme.epochs.in_flight() == 0
        for i, token in enumerate(tokens):
            assert harness.controller.read_token(line(i)) == token
        assert harness.scheme.log.entry_count == 0

    def test_bulk_acs_counts(self):
        harness = make_harness()
        harness.store(line(1))
        harness.scheme.persist_all_now(harness.now)
        assert harness.stats.get("picl.bulk_acs") == 1


class TestLogPressure:
    def test_capped_log_forces_persist(self):
        config = tiny_config(
            picl=PiclConfig(acs_gap=3, log_max_bytes=72 * 64, undo_buffer_entries=4)
        )
        harness = SchemeHarness("picl", config=config)
        for i in range(200):
            harness.store(line(i))
        assert harness.stats.get("picl.log_forced_persists") >= 1
        assert harness.scheme.log.used_bytes <= 72 * 64

    def test_uncapped_log_never_forces(self):
        harness = make_harness()
        for i in range(200):
            harness.store(line(i))
        assert harness.stats.get("picl.log_forced_persists") == 0


class TestFig6Scenario:
    """The paper's Fig 6 multi-undo walkthrough, as a concrete trace."""

    def test_fig6(self):
        harness = make_harness(acs_gap=1)
        # Epoch 0 (paper Epoch1): w:A, w:B, w:C -> undo A0, B0, C0.
        a0 = harness.store(line(10))
        b0 = harness.store(line(11))
        c0 = harness.store(line(12))
        assert harness.stats.get("undo.entries_created") == 3
        harness.end_epoch()  # commit1 (nothing persisted yet: gap 1)

        # Epoch 1 (paper Epoch2): w:A2 -> undo A1.
        a1 = harness.store(line(10))
        assert harness.stats.get("undo.entries_created") == 4
        harness.end_epoch()  # commit2; ACS persists epoch 0

        # ACS for epoch 0 wrote B and C in place (EID 0) but not A (EID 1).
        assert harness.controller.read_token(line(11)) == b0
        assert harness.controller.read_token(line(12)) == c0
        assert harness.controller.read_token(line(10)) == 0

        # Epoch 2 (paper Epoch3): w:C3 -> undo C1 tagged <0, 2>.
        harness.store(line(12))
        entries = harness.scheme.buffer.pending_entries()
        c_undo = [e for e in entries if e.addr == line(12)][0]
        assert c_undo.valid_from == 0
        assert c_undo.valid_till == 2
        assert c_undo.token == c0

        # Crash now: recovery target is epoch 0's commit.
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        assert reference == {line(10): a0, line(11): b0, line(12): c0}
        assert images_equal(image, reference)
        del a1
