"""On-chip undo buffer: coalescing, hazard detection, flush semantics."""

import pytest

from repro.core.undo import UndoEntry
from repro.core.undo_buffer import UndoBuffer
from repro.mem.controller import MemoryController
from repro.mem.log_region import LogRegion
from repro.mem.timing import NvmTimings


@pytest.fixture
def setup():
    controller = MemoryController(NvmTimings())
    log = LogRegion(entry_bytes=72)
    buffer = UndoBuffer(log, controller, capacity_entries=4, flush_bytes=2048)
    return controller, log, buffer


def entry(n, valid_from=0, valid_till=1):
    return UndoEntry(n * 64, n + 100, valid_from, valid_till)


class TestFilling:
    def test_entries_accumulate(self, setup):
        _c, log, buffer = setup
        buffer.add(entry(0), now=0)
        buffer.add(entry(1), now=0)
        assert len(buffer) == 2
        assert len(log) == 0  # nothing durable yet

    def test_flush_on_capacity(self, setup):
        _c, log, buffer = setup
        for i in range(4):
            buffer.add(entry(i), now=0)
        assert len(buffer) == 0
        assert len(log) == 4

    def test_oldest_valid_till(self, setup):
        _c, _log, buffer = setup
        assert buffer.oldest_valid_till is None
        buffer.add(entry(0, valid_till=3), now=0)
        buffer.add(entry(1, valid_till=5), now=0)
        assert buffer.oldest_valid_till == 3

    def test_creation_stat(self, setup):
        _c, _log, buffer = setup
        buffer.add(entry(0), now=0)
        assert buffer.stats.get("undo.entries_created") == 1


class TestFlush:
    def test_flush_preserves_order(self, setup):
        _c, log, buffer = setup
        entries = [entry(i) for i in range(3)]
        for e in entries:
            buffer.add(e, now=0)
        buffer.flush(now=0)
        assert list(log.iter_entries_backward()) == list(reversed(entries))

    def test_flush_is_one_sequential_iop(self, setup):
        controller, _log, buffer = setup
        for i in range(3):
            buffer.add(entry(i), now=0)
        buffer.flush(now=0)
        assert controller.stats.get("nvm.iops.sequential") == 1

    def test_empty_flush_is_free(self, setup):
        controller, _log, buffer = setup
        assert buffer.flush(now=0) == 0
        assert controller.stats.get("nvm.iops.sequential") == 0

    def test_flush_clears_bloom(self, setup):
        _c, _log, buffer = setup
        buffer.add(entry(0), now=0)
        buffer.flush(now=0)
        assert not buffer.bloom.might_contain(entry(0).addr)

    def test_flush_burst_sized_to_contents(self, setup):
        controller, _log, buffer = setup
        buffer.add(entry(0), now=0)
        buffer.flush(now=0)
        assert controller.stats.get("nvm.bytes_written") == 72

    def test_flush_burst_capped_at_row(self):
        controller = MemoryController(NvmTimings())
        log = LogRegion(entry_bytes=72)
        buffer = UndoBuffer(log, controller, capacity_entries=64, flush_bytes=2048)
        for i in range(40):
            buffer.add(entry(i), now=0)
        # Auto-flush never happened (capacity 64); flush manually.
        buffer.flush(now=0)
        assert controller.stats.get("nvm.bytes_written") == 2048


class TestEvictionHazard:
    def test_matching_eviction_forces_flush(self, setup):
        _c, log, buffer = setup
        buffer.add(entry(0), now=0)
        buffer.eviction_hazard(entry(0).addr, now=0)
        assert len(buffer) == 0
        assert len(log) == 1
        assert buffer.stats.get("undo.forced_flushes") == 1

    def test_non_matching_eviction_is_free(self, setup):
        _c, log, buffer = setup
        buffer.add(entry(0), now=0)
        buffer.eviction_hazard(0x999940, now=0)
        # Might false-positive, but with 4096 bits and one entry it won't.
        assert len(buffer) == 1
        assert len(log) == 0

    def test_empty_buffer_never_flushes(self, setup):
        _c, _log, buffer = setup
        assert buffer.eviction_hazard(0x40, now=0) == 0

    def test_false_positive_accounting(self):
        controller = MemoryController(NvmTimings())
        log = LogRegion(entry_bytes=72)
        # A 64-bit filter collides readily.
        buffer = UndoBuffer(
            log, controller, capacity_entries=64, bloom_bits=64, bloom_hashes=1
        )
        for i in range(32):
            buffer.add(entry(i), now=0)
        for probe in range(1000, 1400):
            buffer.eviction_hazard(probe * 64, now=0)
            if buffer.stats.get("undo.bloom_false_positives"):
                break
        assert buffer.stats.get("undo.bloom_false_positives") >= 1

    def test_ordering_invariant_undo_durable_before_eviction(self, setup):
        """The hazard check is what guarantees undo-before-in-place."""
        _c, log, buffer = setup
        e = entry(5)
        buffer.add(e, now=0)
        # The eviction path must call eviction_hazard first; after it the
        # entry is durable.
        buffer.eviction_hazard(e.addr, now=0)
        assert e in list(log.iter_entries_backward())


class TestPendingSnapshot:
    def test_pending_entries_returns_copy(self, setup):
        _c, _log, buffer = setup
        buffer.add(entry(0), now=0)
        pending = buffer.pending_entries()
        pending.clear()
        assert len(buffer) == 1
