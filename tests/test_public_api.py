"""The public API surface: everything the README promises importable."""

import pytest

import repro


class TestExports:
    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_names_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_schemes(self):
        assert set(repro.SCHEME_NAMES) == {
            "ideal",
            "journaling",
            "shadow",
            "frm",
            "thynvm",
            "picl",
        }

    def test_benchmark_catalog(self):
        assert "gcc" in repro.BENCHMARKS
        assert len(repro.MULTIPROGRAM_MIXES) == 8


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        config = repro.SystemConfig().scaled(512)
        n = config.epoch_instructions * 2
        ideal = repro.Simulation(config, "ideal", ["gcc"], n).run()
        picl = repro.Simulation(config, "picl", ["gcc"], n).run()
        overhead = picl.normalized_to(ideal) - 1
        assert -0.05 < overhead < 2.0  # sane, not asserted tightly here

    def test_interactive_system_importable(self):
        from repro.sim.interactive import InteractiveSystem

        system = InteractiveSystem("picl")
        token = system.store(0x40)
        assert system.load(0x40) == token

    def test_feature_matrix_is_public(self):
        assert repro.FEATURE_MATRIX["PiCL"]["async_cache_flush"]

    def test_recovery_helpers_are_public(self):
        assert callable(repro.recover_image)
        assert callable(repro.check_recovered)
