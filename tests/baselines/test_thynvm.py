"""ThyNVM: dual granularity, promotion, single-commit overlap."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.common.address import PAGE_SIZE


def make(block_entries=32, page_entries=32):
    return SchemeHarness(
        "thynvm",
        config=tiny_config(
            thynvm_block_entries=block_entries, thynvm_page_entries=page_entries
        ),
    )


def page_line(page, index=0):
    return page * PAGE_SIZE + index * 64


class TestDualGranularity:
    def test_sparse_writes_use_block_entries(self):
        harness = make()
        harness.store(page_line(0, 0))
        harness.store(page_line(1, 0))
        assert len(harness.scheme.block_table) == 2
        assert len(harness.scheme.page_table) == 0

    def test_dense_page_promoted(self):
        harness = make()
        for i in range(harness.scheme.PROMOTE_THRESHOLD):
            harness.store(page_line(0, i))
        assert harness.stats.get("thynvm.page_promotions") == 1
        assert harness.scheme.page_table.lookup(0) is not None

    def test_promotion_frees_block_entries(self):
        harness = make()
        for i in range(harness.scheme.PROMOTE_THRESHOLD):
            harness.store(page_line(0, i))
        assert len(harness.scheme.block_table) == 0

    def test_page_tracked_stores_are_free(self):
        harness = make()
        for i in range(harness.scheme.PROMOTE_THRESHOLD):
            harness.store(page_line(0, i))
        before = len(harness.scheme.block_table)
        harness.store(page_line(0, 60))
        assert len(harness.scheme.block_table) == before


class TestPressure:
    def test_block_pressure_promotes_fullest_page(self):
        harness = make(block_entries=16)  # one 16-way set
        # Three writes into page 0 (below threshold), then flood with
        # single writes to distinct pages.
        for i in range(3):
            harness.store(page_line(0, i))
        for page in range(1, 20):
            harness.store(page_line(page))
        assert harness.stats.get("thynvm.pressure_promotions") >= 1

    def test_exhaustion_forces_commit(self):
        harness = make(block_entries=16, page_entries=16)
        for page in range(40):
            harness.store(page_line(page))
        assert harness.stats.get("commits.forced") >= 1


class TestOverlap:
    def test_commit_schedules_background_apply(self):
        harness = make()
        token = harness.store(line(1))
        stall = harness.end_epoch()
        assert stall > 0
        # Functionally committed immediately...
        assert harness.controller.read_token(line(1)) == token
        # ...with the apply still outstanding in the background.
        assert harness.scheme._apply_done_at > 0

    def test_back_to_back_commits_wait_for_apply(self):
        harness = make()
        for i in range(30):
            harness.store(line(i))
        harness.end_epoch()
        # Commit again immediately: the previous apply cannot have drained.
        harness.end_epoch()
        assert harness.stats.get("thynvm.apply_wait_cycles") > 0

    def test_page_entries_apply_as_pages(self):
        harness = make()
        for i in range(8):
            harness.store(page_line(0, i))  # promoted to a page entry
        harness.end_epoch()
        assert harness.stats.get("thynvm.pages_applied") == 1


class TestSnoop:
    def test_fill_token_from_redo_region(self):
        harness = make()
        harness.scheme.write_back(line(1), 42, now=0)
        assert harness.scheme.fill_token(line(1)) == 42
        assert harness.load(line(1)) == 42


class TestRecovery:
    def test_recovery_is_last_commit(self):
        harness = make()
        token = harness.store(line(1))
        harness.end_epoch()
        harness.store(line(1))
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        assert image[line(1)] == token
        assert reference[line(1)] == token

    def test_tables_cleared_after_commit(self):
        harness = make()
        harness.store(line(1))
        harness.end_epoch()
        assert len(harness.scheme.block_table) == 0
        assert len(harness.scheme.page_table) == 0
        assert harness.scheme.redo_contents == {}
