"""Journaling (redo WAL): buffer snooping, overflow commits, apply."""

import pytest

from helpers import SchemeHarness, line, tiny_config


def make(table_entries=32):
    return SchemeHarness(
        "journaling", config=tiny_config(journal_table_entries=table_entries)
    )


class TestRedoBuffer:
    def test_writeback_lands_in_buffer_not_memory(self):
        harness = make()
        harness.scheme.write_back(line(1), 42, now=0)
        assert harness.controller.read_token(line(1)) == 0
        assert harness.scheme.redo_contents[line(1)] == 42

    def test_fills_snoop_the_buffer(self):
        harness = make()
        harness.scheme.write_back(line(1), 42, now=0)
        assert harness.scheme.fill_token(line(1)) == 42
        # End-to-end: a load of the line must see the buffered data.
        assert harness.load(line(1)) == 42

    def test_buffer_miss_snoop_returns_none(self):
        harness = make()
        assert harness.scheme.fill_token(line(9)) is None


class TestCommit:
    def test_commit_applies_buffer_to_memory(self):
        harness = make()
        token = harness.store(line(1))
        harness.end_epoch()
        assert harness.controller.read_token(line(1)) == token
        assert harness.scheme.redo_contents == {}

    def test_commit_flushes_caches(self):
        harness = make()
        harness.store(line(1))
        harness.end_epoch()
        assert harness.hierarchy.dirty_line_count() == 0

    def test_commit_stalls(self):
        harness = make()
        for i in range(10):
            harness.store(line(i))
        assert harness.end_epoch() > 0

    def test_apply_counts_random_iops(self):
        harness = make()
        harness.store(line(1))
        harness.end_epoch()
        # Apply: one random read of the entry plus one random write.
        assert harness.stats.get("nvm.iops.random") >= 2

    def test_table_cleared_after_commit(self):
        harness = make()
        harness.store(line(1))
        harness.end_epoch()
        assert len(harness.scheme.table) == 0


class TestOverflow:
    def test_overflow_forces_commit(self):
        harness = make(table_entries=16)  # one 16-way set
        for i in range(30):
            harness.store(line(i))
        assert harness.stats.get("commits.forced") >= 1
        assert harness.system.commit_count >= 1

    def test_no_overflow_when_write_set_fits(self):
        harness = make(table_entries=64)
        for i in range(10):
            harness.store(line(i))
        assert harness.stats.get("commits.forced") == 0

    def test_rewrites_do_not_consume_entries(self):
        harness = make(table_entries=16)
        for _ in range(100):
            harness.store(line(1))
        assert harness.stats.get("commits.forced") == 0


class TestRecovery:
    def test_recovery_is_last_commit(self):
        harness = make()
        token = harness.store(line(1))
        harness.end_epoch()
        harness.store(line(1))  # uncommitted
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        assert image[line(1)] == token
        assert reference[line(1)] == token

    def test_recovery_before_any_commit_is_initial(self):
        harness = make()
        harness.store(line(1))
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == -1
        assert reference == {}
        assert image.get(line(1), 0) == 0
