"""Shared scheme machinery: translation table and flush helper."""

import pytest

from helpers import SchemeHarness, line
from repro.baselines.base import TranslationTable


class TestTranslationTable:
    def test_insert_and_lookup(self):
        table = TranslationTable(32, assoc=16)
        assert table.insert(0x40, "v")
        assert table.lookup(0x40) == "v"

    def test_lookup_missing(self):
        assert TranslationTable(32).lookup(0x40) is None

    def test_reinsert_updates_value(self):
        table = TranslationTable(32)
        table.insert(0x40, 1)
        table.insert(0x40, 2)
        assert table.lookup(0x40) == 2
        assert len(table) == 1

    def test_set_overflow_returns_false(self):
        table = TranslationTable(32, assoc=16)  # 2 sets
        # Fill set 0: blocks with even indices.
        for i in range(16):
            assert table.insert(i * 2 * 64)
        assert not table.insert(16 * 2 * 64)

    def test_other_set_still_has_room(self):
        table = TranslationTable(32, assoc=16)
        for i in range(16):
            table.insert(i * 2 * 64)
        assert table.insert(64)  # odd block -> set 1

    def test_granularity_pages(self):
        table = TranslationTable(32, granularity_bytes=4096)
        table.insert(4096 + 100, "x")
        assert table.lookup(4096) == "x"

    def test_remove(self):
        table = TranslationTable(32)
        table.insert(0x40)
        table.remove(0x40)
        assert table.lookup(0x40) is None
        assert len(table) == 0

    def test_remove_missing_is_noop(self):
        table = TranslationTable(32)
        table.remove(0x40)
        assert len(table) == 0

    def test_clear(self):
        table = TranslationTable(32)
        table.insert(0)
        table.insert(64)
        table.clear()
        assert len(table) == 0
        assert table.insert(0)

    def test_items(self):
        table = TranslationTable(32)
        table.insert(0, "a")
        table.insert(64, "b")
        assert dict(table.items()) == {0: "a", 64: "b"}

    def test_entries_must_divide_ways(self):
        with pytest.raises(ValueError):
            TranslationTable(30, assoc=16)


class TestInsertWithEviction:
    def test_evicts_clean_victim(self):
        table = TranslationTable(16, assoc=16)  # 1 set
        for i in range(16):
            table.insert(i * 64, "clean")
        inserted, evicted = table.insert_with_eviction(
            16 * 64, "new", evictable=lambda v: v == "clean"
        )
        assert inserted
        assert evicted is not None
        assert table.lookup(16 * 64) == "new"

    def test_fails_when_all_dirty(self):
        table = TranslationTable(16, assoc=16)
        for i in range(16):
            table.insert(i * 64, "dirty")
        inserted, evicted = table.insert_with_eviction(
            16 * 64, "new", evictable=lambda v: v == "clean"
        )
        assert not inserted
        assert evicted is None

    def test_hit_updates_without_eviction(self):
        table = TranslationTable(16, assoc=16)
        table.insert(0, "old")
        inserted, evicted = table.insert_with_eviction(
            0, "new", evictable=lambda v: True
        )
        assert inserted
        assert evicted is None
        assert table.lookup(0) == "new"


class TestFlushHelper:
    def test_flush_makes_everything_clean_and_durable(self):
        harness = SchemeHarness("frm")
        tokens = {line(i): harness.store(line(i)) for i in range(5)}
        stall = harness.scheme._flush_all_dirty(harness.now)
        assert stall > 0
        for addr, token in tokens.items():
            assert harness.controller.read_token(addr) == token
        assert harness.hierarchy.dirty_line_count() == 0

    def test_flush_counts(self):
        harness = SchemeHarness("frm")
        harness.store(line(1))
        harness.scheme._flush_all_dirty(harness.now)
        assert harness.stats.get("flush.synchronous") == 1
        assert harness.stats.get("flush.lines_written") == 1

    def test_empty_flush_is_cheap(self):
        harness = SchemeHarness("frm")
        stall = harness.scheme._flush_all_dirty(harness.now)
        assert stall == 0
