"""Table II: the feature matrix data."""

import pytest

from repro.baselines import FEATURE_MATRIX


class TestTableII:
    def test_four_schemes(self):
        assert set(FEATURE_MATRIX) == {"FRM", "Journaling", "ThyNVM", "PiCL"}

    def test_only_picl_has_async_cache_flush(self):
        flags = {name: row["async_cache_flush"] for name, row in FEATURE_MATRIX.items()}
        assert flags == {
            "FRM": False,
            "Journaling": False,
            "ThyNVM": False,
            "PiCL": True,
        }

    def test_only_picl_has_multi_commit_overlap(self):
        assert FEATURE_MATRIX["PiCL"]["multi_commit_overlap"]
        assert not FEATURE_MATRIX["ThyNVM"]["multi_commit_overlap"]

    def test_thynvm_has_single_commit_overlap(self):
        assert FEATURE_MATRIX["ThyNVM"]["single_commit_overlap"]
        assert not FEATURE_MATRIX["Journaling"]["single_commit_overlap"]

    def test_undo_schemes_have_no_translation_layer(self):
        assert FEATURE_MATRIX["FRM"]["no_translation_layer"]
        assert FEATURE_MATRIX["PiCL"]["no_translation_layer"]
        assert not FEATURE_MATRIX["Journaling"]["no_translation_layer"]
        assert not FEATURE_MATRIX["ThyNVM"]["no_translation_layer"]

    def test_complexity_ranking(self):
        assert FEATURE_MATRIX["PiCL"]["mem_ctrl_complexity"] == "Low"
        assert FEATURE_MATRIX["ThyNVM"]["mem_ctrl_complexity"] == "High"

    def test_na_cells_use_none(self):
        # Undo coalescing is not applicable to redo schemes and vice versa.
        assert FEATURE_MATRIX["Journaling"]["undo_coalescing"] is None
        assert FEATURE_MATRIX["FRM"]["redo_page_coalescing"] is None

    @pytest.mark.parametrize("scheme", sorted(FEATURE_MATRIX))
    def test_rows_share_schema(self, scheme):
        assert set(FEATURE_MATRIX[scheme]) == set(FEATURE_MATRIX["PiCL"])
