"""Ideal NVM baseline: in-place writes, no checkpointing."""

from helpers import SchemeHarness, line


class TestIdeal:
    def test_epoch_boundary_is_free(self):
        harness = SchemeHarness("ideal")
        harness.store(line(1))
        assert harness.end_epoch() == 0

    def test_no_commits_recorded(self):
        harness = SchemeHarness("ideal")
        harness.end_epoch()
        assert harness.system.commit_count == 0

    def test_writebacks_go_in_place(self):
        harness = SchemeHarness("ideal")
        harness.scheme.write_back(line(1), 42, now=0)
        assert harness.controller.read_token(line(1)) == 42

    def test_recover_returns_no_commit(self):
        harness = SchemeHarness("ideal")
        harness.store(line(1))
        harness.system.crash()
        image, commit_id = harness.scheme.recover()
        assert commit_id is None
        # The dirty line never reached NVM: the image is torn/stale.
        assert image.get(line(1), 0) == 0

    def test_no_logging_traffic(self):
        harness = SchemeHarness("ideal")
        for i in range(20):
            harness.store(line(i))
        harness.end_epoch()
        assert harness.stats.get("nvm.iops.sequential") == 0
        assert harness.stats.get("nvm.iops.random") == 0

    def test_finalize_drains(self):
        harness = SchemeHarness("ideal")
        harness.scheme.write_back(line(1), 1, now=harness.now)
        assert harness.scheme.finalize(harness.now) > 0
