"""FRM: read-log-modify undo logging with per-epoch synchronous flushes."""

import pytest

from helpers import SchemeHarness, line


class TestReadLogModify:
    def test_writeback_logs_then_writes_in_place(self):
        harness = SchemeHarness("frm")
        harness.controller.write_token(line(1), 7)  # pre-existing data
        harness.scheme.write_back(line(1), 42, now=0)
        assert harness.controller.read_token(line(1)) == 42
        entries = list(harness.scheme.log.iter_entries_backward())
        assert len(entries) == 1
        assert entries[0].token == 7  # the undo data read from memory

    def test_random_read_per_writeback(self):
        harness = SchemeHarness("frm")
        harness.scheme.write_back(line(1), 1, now=0)
        harness.scheme.write_back(line(2), 2, now=0)
        assert harness.stats.get("nvm.iops.random") == 2
        assert harness.stats.get("nvm.iops.writeback") == 2

    def test_log_writes_are_coalesced(self):
        harness = SchemeHarness("frm")
        for i in range(harness.scheme.LOG_COALESCE_ENTRIES):
            harness.scheme.write_back(line(i), i, now=0)
        assert harness.stats.get("nvm.iops.sequential") == 1

    def test_no_store_time_overhead(self):
        harness = SchemeHarness("frm")
        assert harness.scheme.on_store(0, None, now=0) == 0


class TestEpochBoundary:
    def test_synchronous_flush_every_epoch(self):
        harness = SchemeHarness("frm")
        for i in range(8):
            harness.store(line(i))
        stall = harness.end_epoch()
        assert stall > 0
        assert harness.hierarchy.dirty_line_count() == 0
        assert harness.stats.get("flush.synchronous") == 1

    def test_exactly_one_commit_per_epoch(self):
        # Fig 11: "undo-based approaches do not suffer from this problem."
        harness = SchemeHarness("frm")
        for i in range(200):
            harness.store(line(i))
        harness.end_epoch()
        assert harness.system.commit_count == 1
        assert harness.stats.get("commits.forced", 0) == 0

    def test_log_truncated_at_commit(self):
        harness = SchemeHarness("frm")
        harness.store(line(1))
        harness.end_epoch()
        assert harness.scheme.log.entry_count == 0

    def test_epoch_index_advances(self):
        harness = SchemeHarness("frm")
        harness.end_epoch()
        harness.end_epoch()
        assert harness.scheme.epoch_index == 2


class TestRecovery:
    def test_uncommitted_epoch_reverted(self):
        harness = SchemeHarness("frm")
        token = harness.store(line(1))
        harness.end_epoch()  # commit 0: token durable
        harness.store(line(1))  # epoch 1, uncommitted
        harness.scheme._flush_all_dirty(harness.now)  # force in-place write
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        assert image[line(1)] == token
        assert reference[line(1)] == token

    def test_oldest_entry_wins_within_epoch(self):
        harness = SchemeHarness("frm")
        harness.controller.write_token(line(1), 5)
        # Two in-place writes to the same line within one epoch.
        harness.scheme.write_back(line(1), 10, now=0)
        harness.scheme.write_back(line(1), 20, now=0)
        image, _commit_id = harness.scheme.recover()
        assert image[line(1)] == 5

    def test_recovery_before_any_commit(self):
        harness = SchemeHarness("frm")
        harness.store(line(1))
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == -1
        assert reference == {}
        assert image.get(line(1), 0) == 0
