"""Shadow-Paging: page CoW, entry retention, page write-back."""

import pytest

from helpers import SchemeHarness, line, tiny_config
from repro.common.address import PAGE_SIZE


def make(table_entries=32):
    return SchemeHarness(
        "shadow", config=tiny_config(shadow_table_entries=table_entries)
    )


def page_line(page, index=0):
    return page * PAGE_SIZE + index * 64


class TestCopyOnWrite:
    def test_first_store_to_page_does_cow(self):
        harness = make()
        harness.store(page_line(0))
        assert harness.stats.get("shadow.page_cows") == 1

    def test_same_page_stores_share_the_cow(self):
        harness = make()
        harness.store(page_line(0, 0))
        harness.store(page_line(0, 1))
        harness.store(page_line(0, 2))
        assert harness.stats.get("shadow.page_cows") == 1

    def test_cow_is_sequential_module_local(self):
        harness = make()
        harness.store(page_line(0))
        assert harness.stats.get("nvm.iops.sequential") >= 1

    def test_retained_entry_avoids_cow_next_epoch(self):
        # Optimization 2: "even though the page is written back, the entry
        # is retained to avoid misses to the same memory page".
        harness = make()
        harness.store(page_line(0))
        harness.end_epoch()
        harness.store(page_line(0))
        assert harness.stats.get("shadow.page_cows") == 1


class TestEvictionPath:
    def test_writeback_goes_to_shadow(self):
        harness = make()
        harness.scheme.write_back(page_line(0), 42, now=0)
        assert harness.controller.read_token(page_line(0)) == 0
        assert harness.scheme.fill_token(page_line(0)) == 42


class TestCommit:
    def test_commit_writes_dirty_pages_back(self):
        harness = make()
        token = harness.store(page_line(0))
        harness.end_epoch()
        assert harness.controller.read_token(page_line(0)) == token
        assert harness.stats.get("shadow.page_writebacks") == 1

    def test_clean_retained_pages_not_rewritten(self):
        harness = make()
        harness.store(page_line(0))
        harness.end_epoch()
        harness.store(page_line(1))  # different page
        harness.end_epoch()
        # Second commit writes only page 1 back.
        assert harness.stats.get("shadow.page_writebacks") == 2

    def test_page_writeback_is_sequential(self):
        harness = make()
        harness.store(page_line(0))
        before = harness.stats.get("nvm.iops.sequential")
        harness.end_epoch()
        assert harness.stats.get("nvm.iops.sequential") > before


class TestOverflow:
    def test_clean_entries_evicted_before_forcing(self):
        harness = make(table_entries=16)  # one set
        harness.store(page_line(0))
        harness.end_epoch()  # page 0's entry retained, clean
        # 16 fresh dirty pages need the set; the clean entry must yield.
        for page in range(1, 17):
            harness.store(page_line(page))
        assert harness.stats.get("shadow.entries_evicted") >= 1

    def test_all_dirty_forces_commit(self):
        harness = make(table_entries=16)
        for page in range(20):
            harness.store(page_line(page))
        assert harness.stats.get("commits.forced") >= 1


class TestRecovery:
    def test_recovery_is_last_commit(self):
        harness = make()
        token = harness.store(page_line(0))
        harness.end_epoch()
        harness.store(page_line(0))
        image, commit_id, reference = harness.crash_and_recover()
        assert commit_id == 0
        assert image[page_line(0)] == token
        assert reference[page_line(0)] == token
