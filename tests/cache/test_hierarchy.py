"""Multi-level hierarchy: inclusion, write-back cascades, snooping."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, EvictionSink
from repro.common.stats import StatCounters
from repro.mem.controller import MemoryController
from repro.mem.timing import NvmTimings


class RecordingSink(EvictionSink):
    """Remembers every write-back routed to the scheme."""

    def __init__(self, controller):
        super().__init__(controller)
        self.writebacks = []

    def write_back(self, line_addr, token, now):
        self.writebacks.append((line_addr, token))
        return super().write_back(line_addr, token, now)


def make_hierarchy(n_cores=1, llc_size=4096, l1_size=256, l2_size=1024):
    stats = StatCounters()
    controller = MemoryController(NvmTimings(), stats)
    hierarchy = CacheHierarchy(
        controller,
        n_cores=n_cores,
        l1_size=l1_size,
        l1_assoc=2,
        l2_size=l2_size,
        l2_assoc=2,
        llc_size_per_core=llc_size,
        llc_assoc=2,
        stats=stats,
    )
    sink = RecordingSink(controller)
    hierarchy.attach_sink(sink)
    return hierarchy, controller, sink


class TestBasicAccess:
    def test_first_access_misses_everywhere(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, False, 0, now=0)
        assert hierarchy.stats.get("l1.misses") == 1
        assert hierarchy.stats.get("l2.misses") == 1
        assert hierarchy.stats.get("llc.misses") == 1

    def test_second_access_hits_l1(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, False, 0, now=0)
        wait = hierarchy.access(0, 0x40, False, 0, now=100)
        assert wait == hierarchy.l1(0).hit_latency
        assert hierarchy.stats.get("l1.hits") == 1

    def test_inclusion_after_fill(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, False, 0, now=0)
        assert hierarchy.l1(0).contains(0x40)
        assert hierarchy.l2(0).contains(0x40)
        assert hierarchy.llc.contains(0x40)

    def test_store_marks_dirty_everywhere_it_lives(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 7, now=0)
        assert hierarchy.l1(0).lookup(0x40).dirty
        assert hierarchy.l1(0).lookup(0x40).token == 7

    def test_store_miss_cheaper_than_load_miss(self):
        h1, _c, _s = make_hierarchy()
        load_wait = h1.access(0, 0x40, False, 0, now=0)
        h2, _c2, _s2 = make_hierarchy()
        store_wait = h2.access(0, 0x40, True, 1, now=0)
        assert store_wait < load_wait


class TestWritebackCascade:
    def test_dirty_data_flows_down_on_l1_eviction(self):
        hierarchy, _c, _s = make_hierarchy(l1_size=256)  # 2 sets x 2 ways
        # Fill one L1 set with dirty lines, then evict by touching more.
        stride = 2 * 64  # same L1 set
        hierarchy.access(0, 0, True, 1, now=0)
        hierarchy.access(0, stride, True, 2, now=0)
        hierarchy.access(0, 2 * stride, True, 3, now=0)  # evicts addr 0
        l2_line = hierarchy.l2(0).lookup(0, touch=False)
        assert l2_line is not None
        assert l2_line.dirty
        assert l2_line.token == 1

    def test_llc_eviction_routes_through_sink(self):
        hierarchy, _c, sink = make_hierarchy(llc_size=256, l1_size=128, l2_size=128)
        # LLC: 2 sets x 2 ways; same-set stride is 2*64.
        stride = 2 * 64
        hierarchy.access(0, 0, True, 1, now=0)
        hierarchy.access(0, stride, True, 2, now=0)
        hierarchy.access(0, 2 * stride, True, 3, now=0)
        assert (0, 1) in sink.writebacks

    def test_clean_llc_eviction_is_silent(self):
        hierarchy, _c, sink = make_hierarchy(llc_size=256, l1_size=128, l2_size=128)
        stride = 2 * 64
        for i in range(3):
            hierarchy.access(0, i * stride, False, 0, now=0)
        assert sink.writebacks == []

    def test_llc_eviction_pulls_fresh_private_data(self):
        hierarchy, controller, sink = make_hierarchy(
            llc_size=256, l1_size=128, l2_size=128
        )
        stride = 2 * 64
        hierarchy.access(0, 0, True, 42, now=0)  # dirty only in L1
        hierarchy.access(0, stride, False, 0, now=0)
        hierarchy.access(0, 2 * stride, False, 0, now=0)  # evicts line 0
        assert (0, 42) in sink.writebacks
        assert controller.read_token(0) == 42

    def test_back_invalidation_removes_private_copies(self):
        hierarchy, _c, _s = make_hierarchy(llc_size=256, l1_size=128, l2_size=128)
        stride = 2 * 64
        hierarchy.access(0, 0, True, 1, now=0)
        hierarchy.access(0, stride, False, 0, now=0)
        hierarchy.access(0, 2 * stride, False, 0, now=0)
        assert not hierarchy.l1(0).contains(0)
        assert not hierarchy.l2(0).contains(0)


class TestMultiCore:
    def test_cross_core_access_snoops_dirty_data(self):
        hierarchy, _c, _s = make_hierarchy(n_cores=2)
        hierarchy.access(0, 0x40, True, 5, now=0)
        token_seen = None
        hierarchy.access(1, 0x40, False, 0, now=100)
        line = hierarchy.l1(1).lookup(0x40, touch=False)
        token_seen = line.token
        assert token_seen == 5

    def test_snoop_invalidates_previous_owner(self):
        hierarchy, _c, _s = make_hierarchy(n_cores=2)
        hierarchy.access(0, 0x40, True, 5, now=0)
        hierarchy.access(1, 0x40, False, 0, now=100)
        assert not hierarchy.l1(0).contains(0x40)

    def test_owner_tracking(self):
        hierarchy, _c, _s = make_hierarchy(n_cores=2)
        hierarchy.access(0, 0x40, False, 0, now=0)
        assert hierarchy.llc.lookup(0x40, touch=False).owner == 0
        hierarchy.access(1, 0x40, False, 0, now=10)
        assert hierarchy.llc.lookup(0x40, touch=False).owner == 1


class TestFlushSupport:
    def test_sync_all_private_folds_dirty_data(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 9, now=0)
        llc_line = hierarchy.llc.lookup(0x40, touch=False)
        assert llc_line.token != 9 or llc_line.dirty is False  # stale before sync
        hierarchy.sync_all_private()
        assert llc_line.token == 9
        assert llc_line.dirty

    def test_collect_dirty_lines(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 1, now=0)
        hierarchy.access(0, 0x80, True, 2, now=0)
        hierarchy.access(0, 0xC0, False, 0, now=0)
        dirty = {line.addr for line in hierarchy.collect_dirty_lines()}
        assert dirty == {0x40, 0x80}

    def test_sync_private_line_single(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 9, now=0)
        llc_line = hierarchy.sync_private_line(0x40)
        assert llc_line.token == 9
        assert not hierarchy.l1(0).lookup(0x40, touch=False).dirty

    def test_dirty_line_count(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 1, now=0)
        assert hierarchy.dirty_line_count() == 1

    def test_invalidate_all(self):
        hierarchy, _c, _s = make_hierarchy()
        hierarchy.access(0, 0x40, True, 1, now=0)
        hierarchy.invalidate_all()
        assert len(hierarchy.llc) == 0
        assert len(hierarchy.l1(0)) == 0


class TestSchemeSnoopFill:
    def test_fill_token_override(self):
        hierarchy, controller, sink = make_hierarchy()

        class RedoSink(RecordingSink):
            def fill_token(self, line_addr):
                if line_addr == 0x40:
                    return 77
                return None

        hierarchy.attach_sink(RedoSink(controller))
        hierarchy.access(0, 0x40, False, 0, now=0)
        assert hierarchy.l1(0).lookup(0x40, touch=False).token == 77
        assert hierarchy.stats.get("llc.fills_from_log") == 1

    def test_eid_propagates_on_fill(self):
        hierarchy, _c, _s = make_hierarchy(l1_size=128)
        hierarchy.access(0, 0x40, True, 1, now=0)
        hierarchy.l1(0).lookup(0x40, touch=False).eid = 7
        hierarchy.l2(0).lookup(0x40, touch=False).eid = 7
        # Evict from L1 (2 ways, 1 set at 128B): two more same-set lines.
        hierarchy.access(0, 0x80, False, 0, now=0)
        hierarchy.access(0, 0xC0, False, 0, now=0)
        assert not hierarchy.l1(0).contains(0x40)
        # Refill: the EID must ride along from L2.
        hierarchy.access(0, 0x40, False, 0, now=0)
        assert hierarchy.l1(0).lookup(0x40, touch=False).eid == 7
