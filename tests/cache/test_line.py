"""Cache line state and fill propagation."""

from repro.cache.line import CacheLine, LineState
from repro.common.eid import EpochId


class TestInitialState:
    def test_fresh_line_has_no_eid(self):
        line = CacheLine(0x40)
        assert line.eid == EpochId.NONE

    def test_fresh_line_clean(self):
        assert not CacheLine(0).dirty

    def test_default_state(self):
        assert CacheLine(0).state == LineState.EXCLUSIVE

    def test_no_sub_eids_by_default(self):
        assert CacheLine(0).sub_eids is None

    def test_owner(self):
        assert CacheLine(0).owner is None
        assert CacheLine(0, owner=3).owner == 3


class TestCopyFill:
    def test_copies_token_and_eid(self):
        source = CacheLine(0x40, token=9)
        source.eid = 5
        copy = source.copy_fill(0x40)
        assert copy.token == 9
        assert copy.eid == 5

    def test_copies_sub_eids_deeply(self):
        source = CacheLine(0x40)
        source.sub_eids = [1, 2, 3, 4]
        copy = source.copy_fill(0x40)
        copy.sub_eids[0] = 99
        assert source.sub_eids[0] == 1

    def test_copy_is_independent_object(self):
        source = CacheLine(0x40, token=1)
        copy = source.copy_fill(0x40)
        copy.token = 2
        assert source.token == 1

    def test_repr_mentions_address(self):
        assert "0x40" in repr(CacheLine(0x40))
