"""Set-associative LRU cache structure."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.cache import SetAssocCache
from repro.cache.line import CacheLine
from repro.common.errors import ConfigurationError


def make(size=1024, assoc=2, line_size=64):
    return SetAssocCache("test", size, assoc, line_size)


class TestConstruction:
    def test_set_count(self):
        cache = make(size=1024, assoc=2)
        assert cache.n_sets == 8

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigurationError):
            make(size=1000)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache("bad", 3 * 64 * 2, 2, 64)

    def test_single_set_cache(self):
        cache = SetAssocCache("tiny", 128, 2, 64)
        assert cache.n_sets == 1


class TestLookupInsert:
    def test_miss_returns_none(self):
        assert make().lookup(0) is None

    def test_insert_then_hit(self):
        cache = make()
        cache.insert(CacheLine(0, token=5))
        line = cache.lookup(0)
        assert line is not None
        assert line.token == 5

    def test_insert_within_capacity_no_eviction(self):
        cache = make(size=1024, assoc=2)
        assert cache.insert(CacheLine(0)) is None
        # Same set: addresses 8 lines apart (8 sets).
        assert cache.insert(CacheLine(8 * 64)) is None

    def test_eviction_on_overflow(self):
        cache = make(size=1024, assoc=2)
        stride = 8 * 64
        cache.insert(CacheLine(0))
        cache.insert(CacheLine(stride))
        victim = cache.insert(CacheLine(2 * stride))
        assert victim is not None
        assert victim.addr == 0  # LRU

    def test_lookup_touch_updates_lru(self):
        cache = make(size=1024, assoc=2)
        stride = 8 * 64
        cache.insert(CacheLine(0))
        cache.insert(CacheLine(stride))
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.insert(CacheLine(2 * stride))
        assert victim.addr == stride

    def test_lookup_no_touch_preserves_lru(self):
        cache = make(size=1024, assoc=2)
        stride = 8 * 64
        cache.insert(CacheLine(0))
        cache.insert(CacheLine(stride))
        cache.lookup(0, touch=False)
        victim = cache.insert(CacheLine(2 * stride))
        assert victim.addr == 0

    def test_contains(self):
        cache = make()
        cache.insert(CacheLine(64))
        assert cache.contains(64)
        assert not cache.contains(128)

    def test_eviction_counter(self):
        cache = make(size=1024, assoc=2)
        stride = 8 * 64
        for i in range(3):
            cache.insert(CacheLine(i * stride))
        assert cache.stats.get("test.evictions") == 1


class TestRemoveInvalidate:
    def test_remove_returns_line(self):
        cache = make()
        cache.insert(CacheLine(64, token=3))
        removed = cache.remove(64)
        assert removed.token == 3
        assert cache.lookup(64) is None

    def test_remove_missing_returns_none(self):
        assert make().remove(64) is None

    def test_invalidate_all(self):
        cache = make()
        cache.insert(CacheLine(0))
        cache.insert(CacheLine(64))
        cache.invalidate_all()
        assert len(cache) == 0


class TestIteration:
    def test_iter_lines(self):
        cache = make()
        cache.insert(CacheLine(0))
        cache.insert(CacheLine(64))
        assert {line.addr for line in cache.iter_lines()} == {0, 64}

    def test_dirty_lines(self):
        cache = make()
        clean = CacheLine(0)
        dirty = CacheLine(64)
        dirty.dirty = True
        cache.insert(clean)
        cache.insert(dirty)
        assert [line.addr for line in cache.dirty_lines()] == [64]
        assert cache.dirty_count() == 1

    def test_resident_count(self):
        cache = make()
        cache.insert(CacheLine(0))
        assert cache.resident_count() == len(cache) == 1


class TestRunningCounters:
    """resident_count/dirty_count are O(1) bookkeeping, not scans.

    These tests pin the bookkeeping against every path that can change it:
    insert, remove, eviction, invalidate_all, and — the subtle one —
    external ``line.dirty`` flips on lines already resident (the hierarchy
    and the ACS engine both do this).
    """

    def test_dirty_count_tracks_external_flips(self):
        cache = make()
        line = CacheLine(0)
        cache.insert(line)
        assert cache.dirty_count() == 0
        line.dirty = True
        assert cache.dirty_count() == 1
        line.dirty = True  # idempotent
        assert cache.dirty_count() == 1
        line.dirty = False
        assert cache.dirty_count() == 0

    def test_insert_already_dirty_line(self):
        cache = make()
        line = CacheLine(0)
        line.dirty = True
        cache.insert(line)
        assert cache.dirty_count() == 1

    def test_removed_line_flips_do_not_corrupt_count(self):
        cache = make()
        line = CacheLine(0)
        cache.insert(line)
        line.dirty = True
        removed = cache.remove(0)
        assert cache.dirty_count() == 0
        removed.dirty = False  # no longer resident; must not go to -1
        assert cache.dirty_count() == 0

    def test_evicted_line_leaves_count(self):
        cache = make(size=1024, assoc=2)
        stride = 8 * 64
        first = CacheLine(0)
        cache.insert(first)
        first.dirty = True
        cache.insert(CacheLine(stride))
        victim = cache.insert(CacheLine(2 * stride))
        assert victim is first
        assert cache.dirty_count() == 0
        victim.dirty = False  # detached; count stays untouched
        assert cache.dirty_count() == 0

    def test_invalidate_all_resets_and_detaches(self):
        cache = make()
        line = CacheLine(0)
        cache.insert(line)
        line.dirty = True
        cache.invalidate_all()
        assert cache.dirty_count() == 0
        assert cache.resident_count() == 0
        line.dirty = False
        assert cache.dirty_count() == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.sampled_from(["touch", "dirty", "clean", "remove"]),
            ),
            max_size=80,
        )
    )
    def test_counts_match_iteration(self, ops):
        cache = make(size=512, assoc=2)
        for n, op in ops:
            addr = n * 64
            line = cache.lookup(addr)
            if op == "remove":
                cache.remove(addr)
                continue
            if line is None:
                line = CacheLine(addr)
                cache.insert(line)
                line = cache.lookup(addr)
            if op == "dirty":
                line.dirty = True
            elif op == "clean":
                line.dirty = False
        assert cache.resident_count() == len(list(cache.iter_lines()))
        assert cache.dirty_count() == len(list(cache.dirty_lines()))


class TestLruProperty:
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=60))
    def test_capacity_never_exceeded(self, accesses):
        cache = make(size=512, assoc=2)  # 4 sets
        for n in accesses:
            addr = n * 64
            if cache.lookup(addr) is None:
                cache.insert(CacheLine(addr))
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=60))
    def test_no_duplicate_lines(self, accesses):
        cache = make(size=512, assoc=2)
        for n in accesses:
            addr = n * 64
            if cache.lookup(addr) is None:
                cache.insert(CacheLine(addr))
        addrs = [line.addr for line in cache.iter_lines()]
        assert len(addrs) == len(set(addrs))
