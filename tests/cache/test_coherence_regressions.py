"""Regression pins for two hierarchy-coherence bugs caught by hypothesis.

Bug 1: sync paths merged L1 before L2, letting a stale dirty L2 copy
overwrite fresher L1 data in the LLC.

Bug 2: after a sync, a *stale-but-clean* L2 copy survived; when the fresh
L1 copy was later dropped by a clean eviction, a refill served the stale
L2 data — silently corrupting both execution and recovery.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.stats import StatCounters
from repro.mem.controller import MemoryController
from repro.mem.timing import NvmTimings


def make_hierarchy():
    stats = StatCounters()
    controller = MemoryController(NvmTimings(), stats)
    hierarchy = CacheHierarchy(
        controller,
        n_cores=1,
        l1_size=128,   # 1 set x 2 ways
        l1_assoc=2,
        l2_size=512,   # 2 sets x 4 ways
        l2_assoc=4,
        llc_size_per_core=4096,
        llc_assoc=4,
        stats=stats,
    )
    return hierarchy, controller


class TestMergeOrder:
    def test_l1_wins_over_stale_dirty_l2(self):
        """Bug 1: L1's newer dirty data must win the sync merge."""
        hierarchy, _controller = make_hierarchy()
        # Store twice with an L1 eviction in between, so L2 holds a stale
        # dirty copy and L1 a fresh dirty one.
        hierarchy.access(0, 0, True, 10, now=0)          # L1+L2 have line 0
        hierarchy.access(0, 2 * 64, False, 0, now=0)     # fills L1 set
        hierarchy.access(0, 4 * 64, False, 0, now=0)     # evicts 0 to L2 (dirty 10)
        hierarchy.access(0, 0, True, 20, now=0)          # refill, store 20 in L1
        hierarchy.sync_all_private()
        llc_line = hierarchy.llc.lookup(0, touch=False)
        assert llc_line.token == 20

    def test_sync_private_line_same_ordering(self):
        hierarchy, _controller = make_hierarchy()
        hierarchy.access(0, 0, True, 10, now=0)
        hierarchy.access(0, 2 * 64, False, 0, now=0)
        hierarchy.access(0, 4 * 64, False, 0, now=0)
        hierarchy.access(0, 0, True, 20, now=0)
        llc_line = hierarchy.sync_private_line(0)
        assert llc_line.token == 20


class TestStaleCopyRefresh:
    def test_stale_clean_l2_copy_cannot_shadow_synced_data(self):
        """Bug 2: after a sync, every private copy must match the LLC."""
        hierarchy, _controller = make_hierarchy()
        hierarchy.access(0, 0, True, 10, now=0)  # L1 dirty 10; L2 copy stale 0
        hierarchy.sync_private_line(0)           # LLC now 10, everyone clean
        # Drop the (clean) L1 copy via conflict evictions.
        hierarchy.access(0, 2 * 64, False, 0, now=0)
        hierarchy.access(0, 4 * 64, False, 0, now=0)
        assert not hierarchy.l1(0).contains(0)
        # The refill must serve the synced value, not a stale L2 copy.
        hierarchy.access(0, 0, False, 0, now=0)
        assert hierarchy.l1(0).lookup(0, touch=False).token == 10

    def test_sync_all_private_refreshes_everything(self):
        hierarchy, _controller = make_hierarchy()
        hierarchy.access(0, 0, True, 33, now=0)
        hierarchy.sync_all_private()
        for cache in (hierarchy.l1(0), hierarchy.l2(0)):
            copy = cache.lookup(0, touch=False)
            if copy is not None:
                assert copy.token == 33
                assert not copy.dirty
