"""EidIndex: the EID-array analogue and its bit-identicality guarantee.

Three layers of assurance:

* unit tests on the index structure itself (bucket moves, exclusivity,
  fail-fast on drift, range queries);
* sub-block regression tests for the scan hole the index closes: lines
  under 16 B tracking live in one dedicated bucket, so they are neither
  scanned twice (once per matching tag) nor missed once a partial persist
  leaves only some sub-EIDs interesting;
* differential property tests driving two identical systems — one on the
  indexed paths, one forced onto the original full-sweep oracle (the
  ``REPRO_BRUTE_SCAN=1`` escape hatch) — through random store/load/epoch
  sequences and asserting bit-identical stats, stall charges, cache
  contents, and flush ordering.
"""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import SchemeHarness, line, tiny_config
from repro.cache.cache import SetAssocCache
from repro.cache.eid_index import EidIndex
from repro.cache.line import CacheLine
from repro.core.picl import PiclConfig


def make_indexed_cache():
    """A small cache carrying an EID index, like the hierarchy's LLC."""
    cache = SetAssocCache("test", 1024, 2, 64)
    cache.eid_index = EidIndex()
    return cache


def tagged(addr, eid):
    cache_line = CacheLine(addr)
    cache_line.eid = eid
    return cache_line


class TestIndexMaintenance:
    def test_untagged_lines_not_indexed(self):
        cache = make_indexed_cache()
        cache.insert(CacheLine(line(1)))
        assert len(cache.eid_index) == 0

    def test_insert_tagged_line(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        assert set(cache.eid_index.buckets) == {4}
        assert set(cache.eid_index.buckets[4]) == {line(1)}

    def test_set_eid_moves_buckets_and_drops_empty(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        cache.lookup(line(1), touch=False).set_eid(7)
        assert set(cache.eid_index.buckets) == {7}

    def test_set_eid_tags_and_untags(self):
        cache = make_indexed_cache()
        cache.insert(CacheLine(line(1)))
        resident = cache.lookup(line(1), touch=False)
        resident.set_eid(3)
        assert set(cache.eid_index.buckets) == {3}
        resident.set_eid(-1)
        assert not cache.eid_index.buckets

    def test_remove_discards(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        cache.remove(line(1))
        assert len(cache.eid_index) == 0

    def test_eviction_discards(self):
        cache = make_indexed_cache()  # 8 sets, 2-way
        for n in (0, 8, 16):  # same set
            cache.insert(tagged(line(n), n))
        assert set(cache.eid_index.buckets) == {8 * 64 // 64, 16}
        # (line(0) was LRU and evicted; its bucket is gone)
        assert 0 not in cache.eid_index.buckets

    def test_invalidate_all_clears(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        cache.invalidate_all()
        assert len(cache.eid_index) == 0
        assert cache.dirty_count() == 0

    def test_detached_line_mutations_do_not_reach_index(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        removed = cache.remove(line(1))
        removed.set_eid(9)
        removed.dirty = True
        assert len(cache.eid_index) == 0
        assert cache.dirty_count() == 0

    def test_retag_fails_fast_on_drift(self):
        index = EidIndex()
        stray = tagged(line(1), 4)
        with pytest.raises(KeyError):
            index.retag(stray, 9)


class TestRangeQueries:
    def fill(self):
        cache = make_indexed_cache()
        for n, eid in ((1, 2), (2, 3), (3, 5)):
            cache.insert(tagged(line(n), eid))
        return cache

    def test_occupancy_counts_range(self):
        index = self.fill().eid_index
        assert index.occupancy(2, 3) == 2
        assert index.occupancy(0, 10) == 3
        assert index.occupancy(4, 4) == 0

    def test_candidates_in_range(self):
        index = self.fill().eid_index
        assert {c.addr for c in index.candidates(3, 5)} == {line(2), line(3)}

    def test_wide_range_iterates_buckets_not_range(self):
        # A range far wider than the bucket count must not cost O(range).
        index = self.fill().eid_index
        assert {c.addr for c in index.candidates(0, 10**9)} == {
            line(1), line(2), line(3),
        }


class TestSubBlockBucket:
    def test_init_sub_eids_moves_to_sub_bucket(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        resident = cache.lookup(line(1), touch=False)
        resident.init_sub_eids(4)
        assert set(cache.eid_index.sub) == {line(1)}
        assert not cache.eid_index.buckets  # exclusivity: not in both

    def test_sub_lines_are_candidates_for_any_range(self):
        cache = make_indexed_cache()
        cache.insert(tagged(line(1), 4))
        cache.lookup(line(1), touch=False).init_sub_eids(4)
        assert [c.addr for c in cache.eid_index.candidates(100, 200)] == [line(1)]


def subblock_harness():
    config = tiny_config(
        picl=PiclConfig(acs_gap=3, tracking_granularity=16)
    )
    return SchemeHarness("picl", config=config)


def index_matches_cache(llc):
    """The index must always equal a from-scratch recomputation."""
    index = llc.eid_index
    expected_sub = set()
    expected_buckets = {}
    for resident in llc.iter_lines():
        if resident.sub_eids is not None:
            expected_sub.add(resident.addr)
        elif resident.eid >= 0:
            expected_buckets.setdefault(resident.eid, set()).add(resident.addr)
    assert set(index.sub) == expected_sub
    assert {eid: set(b) for eid, b in index.buckets.items()} == expected_buckets
    for bucket in index.buckets.values():
        assert bucket, "empty bucket left behind"
        assert not set(bucket) & set(index.sub), "line indexed twice"


class TestSubBlockScanHole:
    """Sub-block lines: one bucket, one visit, never missed."""

    def test_subblock_line_in_sub_bucket_only(self):
        harness = subblock_harness()
        harness.store(line(1))
        index_matches_cache(harness.hierarchy.llc)
        assert line(1) in harness.hierarchy.llc.eid_index.sub

    def test_partial_persist_keeps_line_scannable(self):
        harness = subblock_harness()
        engine = harness.scheme.acs
        # Two stores to the same line in different epochs: the line's
        # sub-EIDs straddle epochs 0 and 1.
        harness.store(line(1))
        harness.end_epoch()
        harness.store(line(1))
        # Partial persist: epoch 0's scan writes the line back once.
        writes, _stall = engine.scan(0, now=harness.now)
        assert writes == 1
        llc_line = harness.hierarchy.llc.lookup(line(1), touch=False)
        assert llc_line.sub_eids is not None
        # The line must remain indexed (and findable) for epoch 1 ...
        index_matches_cache(harness.hierarchy.llc)
        assert line(1) in harness.hierarchy.llc.eid_index.sub
        harness.store(line(1))  # re-dirty in epoch 1
        writes, _stall = engine.scan(1, now=harness.now)
        assert writes == 1  # ... neither missed ...
        writes, _stall = engine.bulk_scan(0, 1, now=harness.now)
        assert writes == 0  # ... nor double-written.

    def test_scan_visits_each_line_once(self):
        harness = subblock_harness()
        for n in range(6):
            harness.store(line(n))
        harness.end_epoch()
        visited = list(harness.scheme.acs._iter_scan_lines(0, 0))
        assert len(visited) == len({id(v) for v in visited})

    def test_all_unset_sub_eids_matches_nothing(self):
        harness = subblock_harness()
        harness.load(line(1))
        llc_line = harness.hierarchy.llc.lookup(line(1), touch=False)
        llc_line.init_sub_eids(4)  # candidate with every sub-EID unset
        index_matches_cache(harness.hierarchy.llc)
        writes, _stall = harness.scheme.acs.bulk_scan(0, 10, now=harness.now)
        assert writes == 0


# ---------------------------------------------------------------------------
# differential property tests: indexed paths vs the brute-force oracle
# ---------------------------------------------------------------------------


def force_brute(harness):
    """Flip a built system onto the full-sweep oracle paths.

    Equivalent to constructing under REPRO_BRUTE_SCAN=1 (the flags are
    read per instance at construction; see test_env_escape_hatch).
    """
    hierarchy = harness.hierarchy
    hierarchy._brute_scan = True
    hierarchy.llc._brute_scan = True
    for core in range(hierarchy.n_cores):
        hierarchy.l1(core)._brute_scan = True
        hierarchy.l2(core)._brute_scan = True
    if hasattr(harness.scheme, "acs"):
        harness.scheme.acs._brute_scan = True


def run_ops(harness, ops, n_cores=1):
    for n, op in ops:
        core = n % n_cores
        if op == "store":
            harness.store(line(n), core=core)
        elif op == "load":
            harness.load(line(n), core=core)
        else:
            harness.end_epoch()


def snapshot(harness):
    """Everything observable: time (stall charges), stats, LLC contents."""
    llc = harness.hierarchy.llc
    return (
        harness.now,
        harness.stats.as_dict(),
        [(l.addr, l.token, l.dirty, l.eid, l.sub_eids) for l in llc.iter_lines()],
        [l.addr for l in llc.dirty_lines()],
        harness.arch_state(),
    )


def assert_differential(scheme, ops, config_kwargs=None, n_cores=1):
    kwargs = dict(config_kwargs or {})
    if n_cores > 1:
        kwargs["n_cores"] = n_cores
    indexed = SchemeHarness(scheme, config=tiny_config(**kwargs))
    brute = SchemeHarness(scheme, config=tiny_config(**kwargs))
    force_brute(brute)
    run_ops(indexed, ops, n_cores)
    run_ops(brute, ops, n_cores)
    # Force the flush/scan machinery before comparing.
    if hasattr(indexed.scheme, "persist_all_now"):
        indexed.scheme.persist_all_now(indexed.now)
        brute.scheme.persist_all_now(brute.now)
    else:
        indexed.end_epoch()
        brute.end_epoch()
    index_matches_cache(indexed.hierarchy.llc)
    assert snapshot(indexed) == snapshot(brute)
    # collect_dirty_lines must agree in *order* (flush timing depends on it).
    assert [l.addr for l in indexed.hierarchy.collect_dirty_lines()] == [
        l.addr for l in brute.hierarchy.collect_dirty_lines()
    ]


OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.sampled_from(["store", "store", "load", "epoch"]),
    ),
    max_size=120,
)


class TestBruteDifferential:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS)
    def test_picl(self, ops):
        assert_differential("picl", ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=OPS)
    def test_picl_subblock(self, ops):
        assert_differential(
            "picl",
            ops,
            config_kwargs=dict(
                picl=PiclConfig(acs_gap=3, tracking_granularity=16)
            ),
        )

    @settings(max_examples=10, deadline=None)
    @given(ops=OPS)
    def test_picl_multicore(self, ops):
        assert_differential("picl", ops, n_cores=2)

    @settings(max_examples=10, deadline=None)
    @given(ops=OPS)
    def test_frm_checkpoint_flush(self, ops):
        # FRM's checkpoint flush reads the log per dirty line, so even its
        # *timing* depends on flush order — the sharpest order oracle.
        assert_differential("frm", ops)

    @settings(max_examples=8, deadline=None)
    @given(ops=OPS)
    def test_journaling(self, ops):
        assert_differential("journaling", ops)


class TestCrashRecoveryDifferential:
    def test_recovery_identical_after_mixed_epochs(self):
        ops = [(n % 13, "store") for n in range(40)]
        ops[10] = ops[20] = ops[30] = (0, "epoch")
        indexed = SchemeHarness("picl")
        brute = SchemeHarness("picl")
        force_brute(brute)
        run_ops(indexed, ops)
        run_ops(brute, ops)
        image_i, commit_i, _ref = indexed.crash_and_recover()
        image_b, commit_b, _ref = brute.crash_and_recover()
        assert commit_i == commit_b
        assert image_i == image_b


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_BRUTE_SCAN", "1")
    harness = SchemeHarness("picl")
    assert harness.hierarchy._brute_scan
    assert harness.hierarchy.llc._brute_scan
    assert harness.scheme.acs._brute_scan
    monkeypatch.setenv("REPRO_BRUTE_SCAN", "")
    harness = SchemeHarness("picl")
    assert not harness.hierarchy._brute_scan
    assert not harness.scheme.acs._brute_scan
