"""Shared test utilities.

``SchemeHarness`` is the public :class:`repro.sim.interactive.InteractiveSystem`
preconfigured with a deliberately tiny system — fast to drive, easy to
overflow — which lets unit tests express scenarios like the paper's Fig 6
multi-undo example directly: store these lines, commit, store again,
crash, recover, compare.
"""

from repro.sim.config import SystemConfig
from repro.sim.interactive import InteractiveSystem


def tiny_config(**overrides):
    """A deliberately small system: fast to drive, easy to overflow."""
    defaults = dict(
        n_cores=1,
        l1_size=512,
        l1_assoc=2,
        l2_size=2048,
        l2_assoc=4,
        llc_size_per_core=8192,
        llc_assoc=4,
        epoch_instructions=10_000,
        journal_table_entries=64,
        shadow_table_entries=64,
        thynvm_block_entries=32,
        thynvm_page_entries=32,
        table_assoc=16,
        track_reference=True,
        reference_depth=64,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class SchemeHarness(InteractiveSystem):
    """InteractiveSystem defaulting to the tiny test configuration."""

    def __init__(self, scheme_name="picl", config=None, **config_overrides):
        if config is None:
            config = tiny_config(**config_overrides)
        super().__init__(scheme_name, config)


def images_equal(image_a, image_b):
    """Token-exact comparison treating absent lines as token 0."""
    for addr in set(image_a) | set(image_b):
        if image_a.get(addr, 0) != image_b.get(addr, 0):
            return False
    return True


def line(n):
    """The address of the n-th cache line (64 B lines)."""
    return n * 64
