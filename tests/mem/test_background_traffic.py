"""Background (no-backpressure) traffic semantics.

Regression pins for the timing-model bug where repeated posted writes at
a frozen clock turned the backpressure accounting quadratic: autonomous
engines (ACS, ThyNVM's apply) enqueue without stalling, and synchronous
loops must advance their clock by the accumulated stall.
"""

import pytest

from repro.mem.nvm import AccessCategory, NvmDevice
from repro.mem.timing import NvmTimings


@pytest.fixture
def device():
    return NvmDevice(NvmTimings())


class TestEnqueueWrite:
    def test_no_stall_ever(self, device):
        for i in range(500):
            _finish, stall = device.write_line(i * 64, now=0, backpressure=False)
            assert stall == 0

    def test_load_still_accumulates(self, device):
        for i in range(100):
            device.write_line(i * 64, now=0, backpressure=False)
        assert device.drain_cycles(0) >= 100 * device.timings.row_write_cycles

    def test_bulk_write_no_backpressure(self, device):
        for _ in range(50):
            _finish, stall = device.bulk_write(2048, now=0, backpressure=False)
            assert stall == 0

    def test_log_read_no_backpressure(self, device):
        for i in range(100):
            _finish, stall = device.log_read_line(i * 64, now=0, backpressure=False)
            assert stall == 0

    def test_background_load_slows_demand_reads_boundedly(self, device):
        for i in range(100):
            device.write_line(i * 64, now=0, backpressure=False)
        finish = device.read_line(0, now=0)
        # Interference capped at one in-progress row write.
        assert finish <= (
            device.timings.row_write_cycles + device.timings.line_read_cycles()
        )


class TestAdvancingClockStaysLinear:
    def test_posted_writes_with_advancing_clock(self, device):
        """Total stall of n writes issued at the stalled clock is ~n * occupancy."""
        occupancy = device.timings.line_write_cycles()
        total_stall = 0
        n = 200
        for i in range(n):
            _finish, stall = device.write_line(i * 64, now=total_stall)
            total_stall += stall
        # Linear: total is bounded by the full service time of n writes.
        assert total_stall <= n * occupancy
        # And not wildly below it either (the queue limit absorbs a prefix).
        assert total_stall >= (n - 10) * occupancy - device.timings.write_queue_limit_cycles

    def test_frozen_clock_is_what_backpressure_false_is_for(self, device):
        """With a frozen clock and backpressure on, stalls overcount —
        the documented reason background engines must use enqueue."""
        occupancy = device.timings.line_write_cycles()
        frozen_stall = 0
        n = 200
        for i in range(n):
            _finish, stall = device.write_line(i * 64, now=0)
            frozen_stall += stall
        advancing_stall = 0
        fresh = NvmDevice(NvmTimings())
        for i in range(n):
            _finish, stall = fresh.write_line(i * 64, now=advancing_stall)
            advancing_stall += stall
        assert frozen_stall >= advancing_stall
        del occupancy


class TestCategoriesUnaffected:
    def test_enqueue_still_counts_iops(self, device):
        device.write_line(0, now=0, backpressure=False, category=AccessCategory.RANDOM)
        assert device.stats.get("nvm.iops.random") == 1
