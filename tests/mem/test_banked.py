"""Open-page banked NVM device (the opt-in fidelity extension)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.banked import ROW_HIT_FRACTION, BankedNvmDevice, make_device
from repro.mem.controller import MemoryController
from repro.mem.nvm import NvmDevice
from repro.mem.timing import NvmTimings


def banked(**kwargs):
    return BankedNvmDevice(NvmTimings(**kwargs))


class TestFactory:
    def test_closed_policy_builds_base_device(self):
        device = make_device(NvmTimings(page_policy="closed"))
        assert type(device) is NvmDevice

    def test_open_policy_builds_banked_device(self):
        device = make_device(NvmTimings(page_policy="open"))
        assert isinstance(device, BankedNvmDevice)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(page_policy="adaptive")

    def test_bad_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(n_banks=6)

    def test_controller_respects_policy(self):
        controller = MemoryController(NvmTimings(page_policy="open"))
        assert isinstance(controller.device, BankedNvmDevice)


class TestRowBuffer:
    def test_first_access_misses(self):
        device = banked(page_policy="open")
        device.read_line(0, now=0)
        assert device.stats.get("nvm.row_misses") == 1
        assert device.stats.get("nvm.row_hits") == 0

    def test_same_row_hits(self):
        device = banked(page_policy="open")
        device.read_line(0, now=0)
        device.read_line(64, now=10_000)  # same 2 KB row
        assert device.stats.get("nvm.row_hits") == 1

    def test_row_hit_is_cheaper(self):
        device = banked(page_policy="open")
        first = device.read_line(0, now=0)
        second = device.read_line(64, now=1_000_000) - 1_000_000
        assert second < first * (ROW_HIT_FRACTION + 0.3)

    def test_conflicting_row_closes_the_old_one(self):
        device = banked(page_policy="open", n_banks=2)
        row_bytes = device.timings.row_buffer_bytes
        device.read_line(0, now=0)                      # bank 0, row 0
        device.read_line(2 * row_bytes, now=10_000)     # bank 0, row 2
        device.read_line(0, now=20_000)                 # row 0 again: miss
        assert device.stats.get("nvm.row_misses") == 3

    def test_banks_track_rows_independently(self):
        device = banked(page_policy="open", n_banks=8)
        row_bytes = device.timings.row_buffer_bytes
        for bank in range(8):
            device.read_line(bank * row_bytes, now=0)
        for bank in range(8):
            device.read_line(bank * row_bytes + 64, now=100_000)
        assert device.stats.get("nvm.row_hits") == 8

    def test_writes_track_rows_too(self):
        device = banked(page_policy="open")
        device.write_line(0, now=0)
        device.write_line(64, now=0)
        assert device.stats.get("nvm.row_hits") == 1

    def test_row_hit_rate(self):
        device = banked(page_policy="open")
        assert device.row_hit_rate() == 0.0
        device.read_line(0, now=0)
        device.read_line(64, now=0)
        assert device.row_hit_rate() == pytest.approx(0.5)


class TestEndToEnd:
    def test_sequential_stream_mostly_hits(self):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import Simulation

        config = SystemConfig().scaled(256, nvm=NvmTimings(page_policy="open"))
        sim = Simulation(config, "ideal", ["lbm"], 40_000, seed=2)
        sim.run()
        device = sim.controller.device
        assert device.row_hit_rate() > 0.1

    def test_open_page_helps_but_preserves_ordering(self):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import Simulation

        results = {}
        for policy in ("closed", "open"):
            config = SystemConfig().scaled(
                256, nvm=NvmTimings(page_policy=policy)
            )
            ideal = Simulation(config, "ideal", ["gcc"], 60_000, seed=4).run()
            picl = Simulation(config, "picl", ["gcc"], 60_000, seed=4).run()
            frm = Simulation(config, "frm", ["gcc"], 60_000, seed=4).run()
            results[policy] = {
                "ideal": ideal.cycles,
                "picl": picl.normalized_to(ideal),
                "frm": frm.normalized_to(ideal),
            }
        # Open-page never hurts the baseline...
        assert results["open"]["ideal"] <= results["closed"]["ideal"]
        # ...and PiCL's near-zero overhead is policy-independent. (FRM can
        # even beat Ideal on micro-runs — its flushes pre-clean the cache —
        # so cross-scheme ordering is only asserted at benchmark scale.)
        for policy in ("closed", "open"):
            assert results[policy]["picl"] <= 1.1

    def test_picl_recovery_unaffected_by_policy(self):
        from helpers import SchemeHarness, images_equal, line, tiny_config

        config = tiny_config(nvm=NvmTimings(page_policy="open"))
        harness = SchemeHarness("picl", config=config)
        for i in range(20):
            harness.store(line(i % 7))
            if i % 5 == 4:
                harness.end_epoch()
        image, _commit, reference = harness.crash_and_recover()
        assert reference is not None
        assert images_equal(image, reference)
