"""Functional memory image semantics."""

from hypothesis import given, strategies as st

from repro.mem.image import INITIAL_TOKEN, MemoryImage


class TestReadWrite:
    def test_unwritten_reads_initial(self):
        image = MemoryImage()
        assert image.read(0x1000) == INITIAL_TOKEN

    def test_write_then_read(self):
        image = MemoryImage()
        image.write(0x40, 7)
        assert image.read(0x40) == 7

    def test_overwrite(self):
        image = MemoryImage()
        image.write(0x40, 7)
        image.write(0x40, 9)
        assert image.read(0x40) == 9

    def test_len_counts_written_lines(self):
        image = MemoryImage()
        image.write(0, 1)
        image.write(64, 2)
        image.write(0, 3)
        assert len(image) == 2

    def test_written_lines(self):
        image = MemoryImage()
        image.write(0, 1)
        image.write(128, 2)
        assert sorted(image.written_lines()) == [0, 128]


class TestSnapshotRestore:
    def test_snapshot_isolated_from_future_writes(self):
        image = MemoryImage()
        image.write(0, 1)
        snap = image.snapshot()
        image.write(0, 2)
        assert snap[0] == 1

    def test_restore(self):
        image = MemoryImage()
        image.write(0, 1)
        snap = image.snapshot()
        image.write(0, 2)
        image.write(64, 3)
        image.restore(snap)
        assert image.read(0) == 1
        assert image.read(64) == INITIAL_TOKEN


class TestComparison:
    def test_equal_snapshots(self):
        image = MemoryImage()
        image.write(0, 1)
        assert image.equals_snapshot({0: 1})

    def test_zero_tokens_equivalent_to_absent(self):
        image = MemoryImage()
        image.write(0, INITIAL_TOKEN)
        assert image.equals_snapshot({})
        assert image.equals_snapshot({64: INITIAL_TOKEN})

    def test_mismatch_detected(self):
        image = MemoryImage()
        image.write(0, 1)
        assert not image.equals_snapshot({0: 2})

    def test_missing_line_detected(self):
        image = MemoryImage()
        assert not image.equals_snapshot({0: 5})

    def test_differences(self):
        image = MemoryImage()
        image.write(0, 1)
        image.write(64, 2)
        diffs = image.differences({0: 1, 64: 9, 128: 3})
        assert diffs == {64: (2, 9), 128: (0, 3)}

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=63).map(lambda n: n * 64),
            st.integers(min_value=1, max_value=100),
            max_size=20,
        )
    )
    def test_snapshot_always_equals_itself(self, contents):
        image = MemoryImage()
        for addr, token in contents.items():
            image.write(addr, token)
        assert image.equals_snapshot(image.snapshot())
        assert image.differences(image.snapshot()) == {}
