"""DRAM memory-side cache extension (§IV-C)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KB
from repro.mem.controller import MemoryController
from repro.mem.dram_cache import DramCache, DramCacheMode
from repro.mem.timing import NvmTimings


def make(mode, capacity_kb=64, assoc=2):
    cache = DramCache(capacity_kb * KB, assoc=assoc, mode=mode)
    controller = MemoryController(NvmTimings(), dram_cache=cache)
    return controller, cache


class TestWriteThrough:
    def test_write_reaches_nvm_immediately(self):
        controller, _cache = make(DramCacheMode.WRITE_THROUGH)
        controller.writeback(0x40, 9, now=0)
        assert controller.image.read(0x40) == 9

    def test_read_hit_is_fast(self):
        controller, cache = make(DramCacheMode.WRITE_THROUGH)
        controller.demand_fill(0x40, now=0)  # miss fills the page
        latency, _token = controller.demand_fill(0x80, now=10_000)  # same page
        assert latency == cache.hit_latency

    def test_read_miss_pays_page_fill(self):
        controller, cache = make(DramCacheMode.WRITE_THROUGH)
        latency, _token = controller.demand_fill(0x40, now=0)
        assert latency > cache.hit_latency

    def test_hit_returns_nvm_data(self):
        controller, _cache = make(DramCacheMode.WRITE_THROUGH)
        controller.writeback(0x40, 5, now=0)
        _latency, token = controller.demand_fill(0x40, now=1000)
        assert token == 5

    def test_hit_miss_counters(self):
        controller, _cache = make(DramCacheMode.WRITE_THROUGH)
        controller.demand_fill(0x40, now=0)
        controller.demand_fill(0x40, now=1000)
        assert controller.stats.get("dram.misses") == 1
        assert controller.stats.get("dram.hits") == 1


class TestWriteBack:
    def test_dirty_data_not_in_nvm_until_eviction(self):
        controller, _cache = make(DramCacheMode.WRITE_BACK)
        controller.writeback(0x40, 9, now=0)
        # Volatile in DRAM: the NVM image must not see it yet.
        assert controller.image.read(0x40) == 0

    def test_read_returns_dirty_dram_data(self):
        controller, _cache = make(DramCacheMode.WRITE_BACK)
        controller.writeback(0x40, 9, now=0)
        _latency, token = controller.demand_fill(0x40, now=100)
        assert token == 9

    def test_eviction_writes_page_back(self):
        controller, cache = make(DramCacheMode.WRITE_BACK, capacity_kb=8, assoc=1)
        controller.writeback(0, 1, now=0)
        # Touch another page mapping to the same set to force eviction.
        n_sets = cache.n_sets
        conflicting = n_sets * 4096
        controller.demand_fill(conflicting, now=100)
        assert controller.image.read(0) == 1
        assert controller.stats.get("dram.page_writebacks") == 1

    def test_flush_all(self):
        controller, cache = make(DramCacheMode.WRITE_BACK)
        controller.writeback(0x40, 9, now=0)
        controller.writeback(0x2040, 10, now=0)
        assert cache.dirty_page_count() == 2
        cache.flush_all(now=1000)
        assert controller.image.read(0x40) == 9
        assert controller.image.read(0x2040) == 10
        assert cache.dirty_page_count() == 0


class TestStructure:
    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            DramCache(4096, assoc=2)

    def test_lru_within_set(self):
        controller, cache = make(DramCacheMode.WRITE_THROUGH, capacity_kb=8, assoc=2)
        n_sets = cache.n_sets
        base = 0
        second = n_sets * 4096
        third = 2 * n_sets * 4096
        controller.demand_fill(base, now=0)
        controller.demand_fill(second, now=10)
        controller.demand_fill(base, now=20)  # touch LRU -> MRU
        controller.demand_fill(third, now=30)  # evicts `second`
        hits_before = controller.stats.get("dram.hits")
        controller.demand_fill(base, now=40)
        assert controller.stats.get("dram.hits") == hits_before + 1
