"""NVM device model: channel timing and IOPS accounting."""

import pytest

from repro.mem.nvm import AccessCategory, NvmDevice
from repro.mem.timing import NvmTimings


@pytest.fixture
def device():
    return NvmDevice(NvmTimings())


class TestReads:
    def test_read_latency_is_service_time_when_idle(self, device):
        finish = device.read_line(0, now=0)
        assert finish == device.timings.line_read_cycles()

    def test_reads_serialize_fcfs(self, device):
        first = device.read_line(0, now=0)
        second = device.read_line(64, now=0)
        assert second == first + device.timings.line_read_cycles()

    def test_read_after_idle_gap_starts_immediately(self, device):
        device.read_line(0, now=0)
        finish = device.read_line(64, now=100_000)
        assert finish == 100_000 + device.timings.line_read_cycles()

    def test_write_backlog_interferes_boundedly(self, device):
        # Pile up a large write backlog, then read: interference is capped
        # at one row write (read priority).
        for i in range(50):
            device.write_line(i * 64, now=0)
        finish = device.read_line(0, now=0)
        expected_max = (
            device.timings.row_write_cycles + device.timings.line_read_cycles()
        )
        assert finish <= expected_max

    def test_counts_demand_reads(self, device):
        device.read_line(0, now=0)
        assert device.stats.get("nvm.iops.demand_read") == 1
        assert device.stats.get("nvm.bytes_read") == 64


class TestPostedWrites:
    def test_no_stall_below_queue_limit(self, device):
        _finish, stall = device.write_line(0, now=0)
        assert stall == 0

    def test_backpressure_above_queue_limit(self, device):
        stalled = 0
        for i in range(100):
            _finish, stall = device.write_line(i * 64, now=0)
            stalled += stall
        assert stalled > 0

    def test_backlog_drains_over_time(self, device):
        for i in range(20):
            device.write_line(i * 64, now=0)
        much_later = 10_000_000
        assert device.drain_cycles(much_later) == 0

    def test_counts_writebacks(self, device):
        device.write_line(0, now=0, category=AccessCategory.WRITEBACK)
        assert device.stats.get("nvm.iops.writeback") == 1
        assert device.stats.get("nvm.bytes_written") == 64

    def test_random_category(self, device):
        device.write_line(0, now=0, category=AccessCategory.RANDOM)
        assert device.stats.get("nvm.iops.random") == 1


class TestBulkOps:
    def test_bulk_write_is_one_iop(self, device):
        device.bulk_write(2048, now=0)
        assert device.stats.get("nvm.iops.sequential") == 1
        assert device.stats.get("nvm.bytes_written") == 2048

    def test_bulk_write_cheaper_than_random(self, device):
        bulk_finish, _ = device.bulk_write(2048, now=0)
        random_total = 32 * device.timings.line_write_cycles()
        assert bulk_finish < random_total

    def test_bulk_read_counts(self, device):
        device.bulk_read(4096, now=0)
        assert device.stats.get("nvm.iops.sequential") == 1
        assert device.stats.get("nvm.bytes_read") == 4096

    def test_log_read_line_counts_random(self, device):
        device.log_read_line(0, now=0)
        assert device.stats.get("nvm.iops.random") == 1


class TestChannels:
    def test_channel_mapping_deterministic(self, device):
        assert device.channel_for(0x1234) == device.channel_for(0x1234)

    def test_single_channel_maps_everything_to_zero(self, device):
        assert device.channel_for(1 << 40) == 0

    def test_multi_channel_row_interleaving(self):
        device = NvmDevice(NvmTimings(n_channels=4))
        rows = {device.channel_for(row * 2048) for row in range(8)}
        assert rows == {0, 1, 2, 3}

    def test_multi_channel_parallelism(self):
        one = NvmDevice(NvmTimings(n_channels=1))
        four = NvmDevice(NvmTimings(n_channels=4))
        for device in (one, four):
            for row in range(8):
                device.bulk_write(2048, now=0)
        assert four.drain_cycles(0) < one.drain_cycles(0)

    def test_drain_covers_all_channels(self):
        device = NvmDevice(NvmTimings(n_channels=2))
        device.write_line(0, now=0)
        device.write_line(2048, now=0)
        assert device.drain_cycles(0) > 0
