"""Memory controller: demand path, logging path, functional image."""

import pytest

from repro.mem.controller import MemoryController
from repro.mem.nvm import AccessCategory
from repro.mem.timing import NvmTimings


@pytest.fixture
def controller():
    return MemoryController(NvmTimings())


class TestDemandPath:
    def test_fill_returns_latency_and_token(self, controller):
        latency, token = controller.demand_fill(0x40, now=0)
        assert latency > 0
        assert token == 0

    def test_fill_sees_written_data(self, controller):
        controller.writeback(0x40, 42, now=0)
        _latency, token = controller.demand_fill(0x40, now=10_000)
        assert token == 42

    def test_writeback_updates_image_immediately(self, controller):
        controller.writeback(0x80, 7, now=0)
        assert controller.read_token(0x80) == 7

    def test_writeback_counts(self, controller):
        controller.writeback(0x80, 7, now=0)
        assert controller.stats.get("mem.writebacks") == 1
        assert controller.stats.get("nvm.iops.writeback") == 1

    def test_demand_fill_counts(self, controller):
        controller.demand_fill(0, now=0)
        assert controller.stats.get("mem.demand_fills") == 1


class TestLoggingPath:
    def test_log_read_returns_old_token(self, controller):
        controller.writeback(0x40, 11, now=0)
        token, _completion, _stall = controller.log_read_line(0x40, now=0)
        assert token == 11

    def test_log_read_does_not_change_image(self, controller):
        controller.log_read_line(0x40, now=0)
        assert controller.read_token(0x40) == 0

    def test_log_write_does_not_touch_image(self, controller):
        controller.log_write_line(0x40, now=0)
        assert controller.read_token(0x40) == 0

    def test_bulk_log_write_is_sequential(self, controller):
        controller.bulk_log_write(2048, now=0)
        assert controller.stats.get("nvm.iops.sequential") == 1

    def test_bulk_copy_is_sequential_and_linkless(self, controller):
        controller.bulk_copy(4096, now=0)
        assert controller.stats.get("nvm.iops.sequential") == 1
        # Module-local: no link bytes accounted.
        assert controller.stats.get("nvm.bytes_written") == 0


class TestSynchronization:
    def test_drain_zero_when_idle(self, controller):
        assert controller.drain(now=0) == 0

    def test_drain_after_writes(self, controller):
        controller.writeback(0, 1, now=0)
        assert controller.drain(now=0) > 0

    def test_drain_eventually_clears(self, controller):
        controller.writeback(0, 1, now=0)
        assert controller.drain(now=10_000_000) == 0


class TestFunctionalHelpers:
    def test_write_token(self, controller):
        controller.write_token(0x100, 5)
        assert controller.read_token(0x100) == 5

    def test_snapshot(self, controller):
        controller.write_token(0x100, 5)
        snap = controller.snapshot_image()
        controller.write_token(0x100, 6)
        assert snap[0x100] == 5
