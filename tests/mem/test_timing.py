"""NVM timing parameters and derived service times."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KB
from repro.mem.timing import NvmTimings


class TestDefaults:
    def test_table_iv_row_latencies(self):
        t = NvmTimings()
        assert t.row_read_cycles == 256
        assert t.row_write_cycles == 736

    def test_row_buffer_is_2kb(self):
        assert NvmTimings().row_buffer_bytes == 2 * KB

    def test_single_channel_default(self):
        assert NvmTimings().n_channels == 1


class TestValidation:
    def test_bad_row_buffer(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(row_buffer_bytes=1500)

    def test_bad_channels(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(n_channels=0)

    def test_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(cpu_ghz=0)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NvmTimings(link_gb_per_s=-1)


class TestServiceTimes:
    def test_line_read_includes_transfer(self):
        t = NvmTimings()
        assert t.line_read_cycles() == t.row_read_cycles + t.transfer_cycles(64)

    def test_line_write_includes_transfer(self):
        t = NvmTimings()
        assert t.line_write_cycles() == t.row_write_cycles + t.transfer_cycles(64)

    def test_transfer_scales_with_size(self):
        t = NvmTimings()
        assert t.transfer_cycles(2048) >= 32 * t.transfer_cycles(64) - 32

    def test_bulk_write_amortizes_row_cost(self):
        t = NvmTimings()
        bulk = t.bulk_write_cycles(2048)
        random = 32 * t.line_write_cycles()
        # One row activation for 32 lines vs 32 activations.
        assert bulk < random / 5

    def test_bulk_write_multiple_rows(self):
        t = NvmTimings()
        assert t.bulk_write_cycles(4096) >= 2 * t.row_write_cycles

    def test_bulk_read_smaller_than_random_reads(self):
        t = NvmTimings()
        assert t.bulk_read_cycles(2048) < 32 * t.line_read_cycles() / 5

    def test_tiny_bulk_still_pays_one_row(self):
        t = NvmTimings()
        assert t.bulk_write_cycles(64) >= t.row_write_cycles

    def test_slow_write_latency_propagates(self):
        slow = NvmTimings(row_write_ns=968.0)
        fast = NvmTimings(row_write_ns=68.0)
        assert slow.line_write_cycles() > fast.line_write_cycles()
        assert slow.line_read_cycles() == fast.line_read_cycles()
