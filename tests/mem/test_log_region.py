"""Log region: appends, superblocks, GC, exhaustion."""

import pytest

from repro.common.errors import ConfigurationError, LogExhaustedError
from repro.core.undo import UndoEntry
from repro.mem.log_region import LogRegion, SuperBlock


def entry(addr, token, valid_from, valid_till):
    return UndoEntry(addr, token, valid_from, valid_till)


class TestSuperBlock:
    def test_tracks_max_valid_till(self):
        block = SuperBlock()
        block.add(entry(0, 1, 0, 2))
        block.add(entry(64, 2, 1, 5))
        assert block.max_valid_till == 5

    def test_expiry(self):
        block = SuperBlock()
        block.add(entry(0, 1, 0, 2))
        assert block.expired(persisted_eid=2)
        assert not block.expired(persisted_eid=1)

    def test_len(self):
        block = SuperBlock()
        assert len(block) == 0
        block.add(entry(0, 1, 0, 1))
        assert len(block) == 1


class TestAppend:
    def test_counts_entries_and_bytes(self):
        log = LogRegion(entry_bytes=72)
        log.append(entry(0, 1, 0, 1))
        assert log.entry_count == 1
        assert log.used_bytes == 72
        assert log.stats.get("log.entries_appended") == 1
        assert log.stats.get("log.bytes_appended") == 72

    def test_superblock_rollover(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        for i in range(5):
            log.append(entry(i * 64, i, 0, 1))
        # Two entries per superblock -> three blocks for five entries.
        assert log.superblock_count == 3

    def test_append_many(self):
        log = LogRegion()
        log.append_many([entry(i * 64, i, 0, 1) for i in range(10)])
        assert log.entry_count == 10


class TestIteration:
    def test_backward_iteration_is_newest_first(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        entries = [entry(i * 64, i, 0, 1) for i in range(5)]
        log.append_many(entries)
        assert list(log.iter_entries_backward()) == list(reversed(entries))

    def test_superblocks_backward(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        log.append_many([entry(i * 64, i, 0, i + 1) for i in range(4)])
        tills = [b.max_valid_till for b in log.iter_superblocks_backward()]
        assert tills == sorted(tills, reverse=True)


class TestGarbageCollection:
    def test_expired_head_blocks_reclaimed(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        log.append_many([entry(i * 64, i, 0, 1) for i in range(4)])  # till=1
        log.append_many([entry(i * 64, i, 4, 5) for i in range(2)])  # till=5
        reclaimed = log.collect_garbage(persisted_eid=1)
        assert reclaimed == 4 * 72
        assert log.entry_count == 2

    def test_gc_stops_at_first_live_block(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        log.append_many([entry(0, 1, 4, 5), entry(64, 2, 4, 5)])  # live
        log.append_many([entry(0, 3, 0, 1), entry(64, 4, 0, 1)])  # "old" but behind
        assert log.collect_garbage(persisted_eid=1) == 0

    def test_gc_updates_used_bytes(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        log.append_many([entry(i * 64, i, 0, 1) for i in range(2)])
        before = log.used_bytes
        log.collect_garbage(persisted_eid=3)
        assert log.used_bytes == before - 2 * 72

    def test_gc_of_everything(self):
        log = LogRegion(entry_bytes=72, superblock_bytes=144)
        log.append_many([entry(i * 64, i, 0, 1) for i in range(6)])
        log.collect_garbage(persisted_eid=10)
        assert log.entry_count == 0
        assert len(log) == 0


class TestExhaustion:
    def test_default_grows_unbounded(self):
        log = LogRegion(capacity_bytes=144, entry_bytes=72)
        for i in range(10):
            log.append(entry(i * 64, i, 0, 1))
        assert log.stats.get("log.extensions") >= 1
        assert log.stats.get("log.exhaustion_interrupts") >= 1

    def test_hard_cap_raises(self):
        log = LogRegion(capacity_bytes=144, entry_bytes=72, max_capacity_bytes=288)
        log.append(entry(0, 1, 0, 1))
        log.append(entry(64, 2, 0, 1))
        log.append(entry(128, 3, 0, 1))
        log.append(entry(192, 4, 0, 1))
        with pytest.raises(LogExhaustedError):
            log.append(entry(256, 5, 0, 1))

    def test_custom_exhaustion_callback(self):
        calls = []

        def grant(region, needed):
            calls.append(needed)
            region.capacity_bytes += 10_000
            return True

        log = LogRegion(capacity_bytes=72, entry_bytes=72, on_exhausted=grant)
        log.append(entry(0, 1, 0, 1))
        log.append(entry(64, 2, 0, 1))
        assert calls == [72]


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            LogRegion(capacity_bytes=0)

    def test_bad_entry_size(self):
        with pytest.raises(ConfigurationError):
            LogRegion(entry_bytes=0)

    def test_superblock_must_fit_entry(self):
        with pytest.raises(ConfigurationError):
            LogRegion(entry_bytes=100, superblock_bytes=50)
