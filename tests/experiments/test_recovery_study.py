"""Recovery-latency/availability study at a micro preset."""

from repro.experiments import recovery_study
from repro.experiments.presets import Preset

MICRO = Preset("micro", scale=1024, epochs_per_run=2)


class TestMeasure:
    def test_structure(self):
        results = recovery_study.measure(MICRO, benchmark="gcc", gaps=(0, 2))
        assert set(results) == {0, 2}
        row = results[0]
        assert {
            "overhead",
            "recovery_entries",
            "recovery_cycles",
            "recovery_s_paper_scale",
            "availability",
            "effective_throughput",
        } <= set(row)

    def test_availability_in_range(self):
        results = recovery_study.measure(MICRO, benchmark="gcc", gaps=(1,))
        assert 0.9 < results[1]["availability"] <= 1.0

    def test_format(self):
        results = recovery_study.measure(MICRO, benchmark="gcc", gaps=(1,))
        text = recovery_study.format_result(results)
        assert "gap=1" in text
        assert "avail" in text
