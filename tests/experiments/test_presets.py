"""Experiment presets."""

import pytest

from repro.experiments.presets import PRESETS, Preset, get_preset


class TestGetPreset:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRESET", raising=False)
        assert get_preset().name == "quick"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRESET", "full")
        assert get_preset().name == "full"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRESET", "full")
        assert get_preset("quick").name == "quick"

    def test_preset_instance_passthrough(self):
        preset = PRESETS["quick"]
        assert get_preset(preset) is preset

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_preset("gigantic")


class TestPreset:
    def test_config_carries_scale(self):
        preset = Preset("t", scale=64, epochs_per_run=4)
        assert preset.config().scale == 64

    def test_instruction_budget(self):
        preset = Preset("t", scale=64, epochs_per_run=4)
        config = preset.config()
        assert preset.instructions(config) == config.epoch_instructions * 4

    def test_instruction_budget_multicore(self):
        preset = Preset("t", scale=64, epochs_per_run=2)
        config = preset.config(n_cores=8)
        assert preset.instructions(config) == config.epoch_instructions * 2 * 8

    def test_epochs_override(self):
        preset = Preset("t", scale=64, epochs_per_run=4)
        config = preset.config()
        assert preset.instructions(config, epochs=1) == config.epoch_instructions

    def test_full_is_larger_than_quick(self):
        quick = PRESETS["quick"]
        full = PRESETS["full"]
        assert full.scale < quick.scale
        assert full.epochs_per_run > quick.epochs_per_run
