"""Report helpers: means and table formatting."""

import pytest

from repro.experiments.report import amean, format_table, geomean


class TestMeans:
    def test_geomean_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_identity(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([0, 2, 8]) == pytest.approx(4.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_amean(self):
        assert amean([1, 2, 3]) == 2.0

    def test_amean_empty(self):
        assert amean([]) == 0.0

    def test_geomean_le_amean(self):
        values = [1.1, 2.5, 9.0, 1.0]
        assert geomean(values) <= amean(values)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "a"], [["x", 1.5]])
        assert "name" in text
        assert "x" in text
        assert "1.500" in text

    def test_large_values_fewer_decimals(self):
        text = format_table(["name", "a"], [["x", 123.456]])
        assert "123.5" in text

    def test_alignment_consistent(self):
        text = format_table(["n", "a", "b"], [["x", 1.0, 2.0], ["yy", 3.0, 4.0]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) == 1

    def test_string_cells(self):
        text = format_table(["n", "v"], [["row", "n/a"]])
        assert "n/a" in text
