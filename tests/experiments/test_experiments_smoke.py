"""Smoke tests: every figure module runs end-to-end on a micro preset.

These do not validate the paper's shapes (the benchmark harness under
``benchmarks/`` does, at real presets); they validate that each experiment
is runnable and produces well-formed output.
"""

import pytest

from repro.experiments import fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16
from repro.experiments import table3
from repro.experiments.presets import Preset

MICRO = Preset("micro", scale=1024, epochs_per_run=2)

TWO_BENCHMARKS = ["gcc", "gamess"]


class TestFig09:
    def test_run_and_format(self):
        result = fig09.run(MICRO, benchmarks=TWO_BENCHMARKS)
        assert set(result) == set(TWO_BENCHMARKS)
        for row in result.values():
            assert set(row) == set(fig09.SCHEMES)
            assert all(value > 0 for value in row.values())
        text = fig09.format_result(result)
        assert "GMean" in text
        assert "picl" in text

    def test_picl_has_lowest_overhead(self):
        result = fig09.run(MICRO, benchmarks=["gcc"])
        row = result["gcc"]
        assert row["picl"] <= min(row[s] for s in fig09.SCHEMES)


class TestFig10:
    def test_run_one_mix(self):
        result = fig10.run(MICRO, mixes=["W0"], epochs=1)
        assert set(result) == {"W0"}
        assert set(result["W0"]) == set(fig10.SCHEMES)
        assert "W0" in fig10.format_result(result)


class TestFig11:
    def test_commit_rates(self):
        result = fig11.run(MICRO, benchmarks=TWO_BENCHMARKS)
        for row in result.values():
            assert row["picl"] >= 1.0
            assert row["journaling"] >= row["picl"]
        assert "GMean" in fig11.format_result(result)


class TestFig12:
    def test_breakdown_structure(self):
        result = fig12.run(MICRO, benchmarks=["gcc"])
        row = result["gcc"]
        assert set(row) == set(fig12.SCHEMES)
        # At the micro scale the trace may not evict at all; with any
        # evictions, Ideal's writebacks normalize to exactly 1.0.
        assert row["ideal"]["writeback"] in (0.0, pytest.approx(1.0))
        assert row["ideal"]["random"] == 0.0
        text = fig12.format_result(result)
        assert "gcc:P" in text


class TestFig13:
    def test_log_sizes_positive(self):
        result = fig13.run(MICRO, benchmarks=TWO_BENCHMARKS)
        for raw, extrapolated in result.values():
            assert raw > 0
            assert extrapolated == pytest.approx(raw * 1024)
        assert "AMean" in fig13.format_result(result)


class TestFig14:
    def test_observed_epoch_lengths(self):
        result = fig14.run(MICRO, benchmarks=["gamess"])
        row = result["gamess"]
        for scheme in fig14.SCHEMES:
            assert row[scheme] > 0
        assert "GMean" in fig14.format_result(result)

    def test_picl_sustains_long_epochs_on_compute(self):
        result = fig14.run(MICRO, benchmarks=["gamess"])
        row = result["gamess"]
        assert row["picl"] >= row["journaling"]


class TestFig15:
    def test_sweep_structure(self):
        result = fig15.run(
            MICRO, benchmarks=["gcc"], multipliers=(1, 2), epochs=1
        )
        assert set(result) == {1, 2}
        assert set(result[1]) == set(fig15.SCHEMES)
        assert "LLC" in fig15.format_result(result, 32)


class TestFig16:
    def test_sweep_structure(self):
        result = fig16.run(MICRO, benchmarks=["gcc"], latencies=(168, 968), epochs=1)
        assert set(result) == {168, 968}
        assert "968" in fig16.format_result(result)

    def test_flush_schemes_degrade_with_write_latency(self):
        result = fig16.run(
            MICRO, benchmarks=["gcc"], latencies=(68, 968), epochs=2
        )
        assert result[968]["frm"] >= result[68]["frm"]


class TestTable3:
    def test_storage_model(self):
        rows = table3.run()
        total = table3.total_bits(rows)
        assert total > 0
        llc_row = [r for r in rows if "LLC EID" in r.component][0]
        l2_row = [r for r in rows if "L2 EID" in r.component][0]
        # Four tags per 64 B line vs one per 16 B line on a bigger cache.
        assert llc_row.bits == 8 * l2_row.bits

    def test_format(self):
        text = table3.format_result(table3.run())
        assert "Total" in text
        assert "BRAM" in text

    def test_custom_geometry(self):
        rows = table3.run(geometry={"llc_bytes": 128 * 1024})
        llc_row = [r for r in rows if "LLC EID" in r.component][0]
        assert llc_row.bits == 32768
