"""Ablation sweeps run end-to-end at a micro preset."""

import pytest

from repro.experiments import ablations
from repro.experiments.presets import Preset

MICRO = Preset("micro", scale=1024, epochs_per_run=2)
ONE_BENCH = ("gcc",)


class TestAcsGapSweep:
    def test_structure(self):
        sweep = ablations.sweep_acs_gap(MICRO, gaps=(0, 2), benchmarks=ONE_BENCH)
        assert set(sweep) == {0, 2}
        row = sweep[0]["gcc"]
        assert set(row) == {"overhead", "acs_writebacks", "persist_lag_epochs"}

    def test_persist_lag_recorded(self):
        sweep = ablations.sweep_acs_gap(MICRO, gaps=(2,), benchmarks=ONE_BENCH)
        assert sweep[2]["gcc"]["persist_lag_epochs"] == 2


class TestUndoBufferSweep:
    def test_small_buffer_flushes_more(self):
        sweep = ablations.sweep_undo_buffer(
            MICRO, entry_counts=(2, 64), benchmarks=ONE_BENCH
        )
        assert (
            sweep[2]["gcc"]["buffer_flushes"] > sweep[64]["gcc"]["buffer_flushes"]
        )


class TestBloomSweep:
    def test_structure(self):
        sweep = ablations.sweep_bloom_bits(
            MICRO, bit_sizes=(64, 4096), benchmarks=ONE_BENCH
        )
        for bits in (64, 4096):
            row = sweep[bits]["gcc"]
            assert row["forced_flushes"] >= 0
            assert row["false_positives"] >= 0


class TestGranularitySweep:
    def test_subblock_entries_at_least_line_entries(self):
        sweep = ablations.sweep_granularity(MICRO, benchmarks=ONE_BENCH)
        assert sweep[16]["gcc"]["entries"] >= sweep[64]["gcc"]["entries"]


class TestEpochLengthSweep:
    def test_longer_epochs_log_no_more(self):
        sweep = ablations.sweep_epoch_length(
            MICRO, multipliers=(0.5, 4), benchmarks=ONE_BENCH
        )
        assert sweep[4]["gcc"]["log_bytes"] <= sweep[0.5]["gcc"]["log_bytes"]


class TestFormatting:
    def test_format_sweep(self):
        sweep = ablations.sweep_acs_gap(MICRO, gaps=(0,), benchmarks=ONE_BENCH)
        text = ablations.format_sweep(sweep, "overhead", "gap", "x")
        assert "gcc" in text
        assert "0" in text
