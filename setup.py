"""Setuptools shim.

The environment this repository targets is fully offline and has no
``wheel`` package, so PEP 517 editable installs (which need
``bdist_wheel``) fail. Keeping a ``setup.py`` alongside ``pyproject.toml``
lets ``pip install -e .`` fall back to the legacy develop-mode code path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
