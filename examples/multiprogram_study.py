#!/usr/bin/env python
"""Eight-core multiprogram study (the paper's Fig 10 on one mix).

Runs a Table V workload mix on the eight-core system under every scheme
and reports normalized execution time plus the per-scheme NVM traffic
split, showing why the multi-core case is where prior work hurts most:
eight write sets share one translation table, and a synchronous flush
stalls all eight cores.

Usage::

    python examples/multiprogram_study.py [mix] [scale]
"""

import sys

from repro import MULTIPROGRAM_MIXES, SystemConfig, run_mix


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    mix = argv[0] if argv else "W2"
    scale = int(argv[1]) if len(argv) > 1 else 128
    if mix not in MULTIPROGRAM_MIXES:
        raise SystemExit("unknown mix %r; choose from %s" % (
            mix, ", ".join(sorted(MULTIPROGRAM_MIXES))))

    config = SystemConfig().scaled(scale, n_cores=8)
    n_instructions = config.epoch_instructions * 3  # per core

    print("Mix %s: %s" % (mix, " ".join(MULTIPROGRAM_MIXES[mix])))
    print("8 cores, shared %d KB LLC, 1/%d-scale system" % (
        config.llc_size_per_core * 8 // 1024, scale))
    print()
    print("%-12s %8s %9s %9s %9s %9s" % (
        "scheme", "norm", "commits", "seq-ops", "rand-ops", "wb-ops"))

    ideal = run_mix(config, "ideal", mix, n_instructions)
    for scheme in ("ideal", "journaling", "shadow", "frm", "thynvm", "picl"):
        result = ideal if scheme == "ideal" else run_mix(
            config, scheme, mix, n_instructions)
        split = result.iops_breakdown
        print("%-12s %8.3f %9d %9d %9d %9d" % (
            scheme,
            result.normalized_to(ideal),
            result.commits,
            split["sequential"],
            split["random"],
            split["writeback"],
        ))

    print()
    print("The paper reports 1.6x-2.6x for prior work on these mixes and")
    print("~1.0x for PiCL; the random-op column shows where the time goes.")


if __name__ == "__main__":
    main()
