#!/usr/bin/env python
"""The DRAM memory-side cache extension (paper §IV-C).

Low-IOPS NVMs are often fronted by a DRAM page cache. The paper argues
PiCL composes with it: in write-through mode nothing changes (writes
still reach the NVM, so PiCL's view is identical), while reads get
DRAM-speed hits. This script builds both systems, runs the same access
pattern, and shows (a) the read-latency win and (b) that crash recovery
is still token-exact.

Usage::

    python examples/dram_cache_extension.py
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.stats import StatCounters
from repro.common.units import KB
from repro.cpu.core import CoreState
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.mem.dram_cache import DramCache, DramCacheMode
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_scheme


def build(with_dram):
    config = SystemConfig().scaled(256)
    stats = StatCounters()
    dram = (
        DramCache(256 * KB, assoc=4, mode=DramCacheMode.WRITE_THROUGH)
        if with_dram
        else None
    )
    controller = MemoryController(config.nvm, stats, dram_cache=dram)
    hierarchy = CacheHierarchy(
        controller,
        n_cores=1,
        l1_size=config.l1_size,
        l1_assoc=config.l1_assoc,
        l2_size=config.l2_size,
        l2_assoc=config.l2_assoc,
        llc_size_per_core=config.llc_size_per_core,
        llc_assoc=config.llc_assoc,
        stats=stats,
    )
    system = System(
        controller, hierarchy, [CoreState(0)], stats=stats, track_reference=True
    )
    scheme = build_scheme("picl", system, config)
    return system, scheme, hierarchy, stats


def drive(system, scheme, hierarchy):
    now = 0
    # A page-friendly scan with rewrites, across several epochs.
    for epoch in range(6):
        for i in range(200):
            addr = (i % 120) * 64
            token = system.new_token()
            wait = hierarchy.access(0, addr, True, token, now)
            system.note_store(addr, token)
            now += wait + 1
        stall = scheme.on_epoch_boundary(now)
        now += stall
    return now


def main():
    print("PiCL over bare NVM vs PiCL over NVM + write-through DRAM cache")
    print()
    for label, with_dram in (("bare NVM", False), ("NVM + DRAM cache", True)):
        system, scheme, hierarchy, stats = build(with_dram)
        cycles = drive(system, scheme, hierarchy)
        system.crash()
        image, commit_id = scheme.recover()
        reference = system.commit_snapshot(commit_id)
        exact = all(
            image.get(a, 0) == reference.get(a, 0)
            for a in set(image) | set(reference)
        )
        print("%-18s %9d cycles   dram hits=%-6d recovery to commit %d: %s"
              % (
                  label,
                  cycles,
                  stats.get("dram.hits"),
                  commit_id,
                  "exact" if exact else "BROKEN",
              ))
    print()
    print("Write-through DRAM changes performance, never correctness —")
    print("exactly the paper's point: 'no modifications are needed'.")


if __name__ == "__main__":
    main()
