#!/usr/bin/env python
"""Define your own workload profile and see which scheme suits it.

The synthetic trace generator is parameterized by memory intensity, store
fraction, working-set size, and three locality knobs. This example builds
two custom workloads — a key-value-store-like random writer and a
log-structured sequential writer — and compares every scheme on both.

Usage::

    python examples/custom_workload.py
"""

from repro import SCHEME_NAMES, SystemConfig
from repro.common.units import MB
from repro.sim.simulator import Simulation
from repro.trace.profiles import WorkloadProfile
import repro.trace.profiles as profiles_module

CUSTOM = [
    WorkloadProfile(
        name="kvstore",
        mem_ratio=0.30,
        write_frac=0.45,
        working_set_bytes=96 * MB,
        seq_frac=0.05,
        chase_frac=0.55,  # hash-bucket chasing: no spatial locality
        zipf_alpha=0.9,   # hot keys
        category="pointer",
        write_zipf_bias=0.3,
    ),
    WorkloadProfile(
        name="logwriter",
        mem_ratio=0.25,
        write_frac=0.50,
        working_set_bytes=64 * MB,
        seq_frac=0.85,    # append-only log
        chase_frac=0.05,
        zipf_alpha=0.8,
        category="stream",
        write_seq_bias=0.95,
    ),
]


def register(profile):
    """Make a custom profile resolvable by name for Simulation."""
    profiles_module._BY_NAME[profile.name.lower()] = profile


def main():
    config = SystemConfig().scaled(128)
    n_instructions = config.epoch_instructions * 4

    for profile in CUSTOM:
        register(profile)
        print("workload %r (%s): %d%% refs, %d%% stores, %d MB working set"
              % (
                  profile.name,
                  profile.category,
                  profile.mem_ratio * 100,
                  profile.write_frac * 100,
                  profile.working_set_bytes // MB,
              ))
        ideal = Simulation(config, "ideal", [profile.name], n_instructions).run()
        for scheme in SCHEME_NAMES:
            if scheme == "ideal":
                continue
            result = Simulation(
                config, scheme, [profile.name], n_instructions
            ).run()
            print("  %-12s %.3fx  (%d commits, %d random ops)" % (
                scheme,
                result.normalized_to(ideal),
                result.commits,
                result.iops_breakdown["random"],
            ))
        print()

    print("Scattered writers overflow block-granularity tables (journaling)")
    print("AND page-granularity ones (shadow); sequential writers are kind")
    print("to shadow-paging. PiCL should not care either way.")


if __name__ == "__main__":
    main()
