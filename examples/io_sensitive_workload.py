#!/usr/bin/env python
"""I/O consistency under deferred persistency (paper §IV-C).

PiCL trades persist latency for performance: a checkpoint becomes durable
only ACS-gap epochs after it commits, so externally visible I/O writes
must be buffered until their epoch persists. This script shows:

* ordinary I/O writes released automatically as ACS persists their epochs,
* a latency-critical write forcing a *bulk ACS* (persist everything now),
* unreliable-interface writes (TCP-like) skipping the buffer entirely.

Usage::

    python examples/io_sensitive_workload.py
"""

from repro import IoConsistencyBuffer, SystemConfig
from repro.core.picl import PiclConfig
from repro.sim.interactive import InteractiveSystem


def main():
    config = SystemConfig().scaled(256)
    config.picl = PiclConfig(acs_gap=3)
    system = InteractiveSystem("picl", config)
    io = IoConsistencyBuffer(system.scheme)

    print("PiCL with ACS-gap = 3: persistency trails execution by 3 epochs")
    print()

    # Epoch 0: compute something and send a network packet about it.
    for i in range(10):
        system.store(0x1000 + i * 64)
    io.io_write("packet-about-epoch-0", now=system.now)
    print("epoch 0: queued 'packet-about-epoch-0' (pending: %d)"
          % io.pending_count())

    for epoch in range(1, 5):
        for i in range(10):
            system.store(0x1000 + (epoch * 10 + i) * 64)
        system.end_epoch()
        persisted = system.scheme.epochs.persisted_eid
        print("epoch %d committed; PersistedEID=%d; pending I/O: %d"
              % (epoch - 1, persisted, io.pending_count()))

    released = [w.payload for w in io.released]
    print("released so far: %s" % released)
    print()

    # A latency-critical write (say, an fsync acknowledgment) cannot wait
    # three epochs: force a bulk ACS.
    system.store(0x9000)
    released_at = io.io_write("fsync-ack", now=system.now, critical=True)
    system.advance(released_at - system.now)  # the bulk ACS stalls the core
    print("critical 'fsync-ack' forced a bulk ACS and released at cycle %d"
          % released_at)
    print("PersistedEID is now %d (everything outstanding persisted)"
          % system.scheme.epochs.persisted_eid)

    # Unreliable interfaces have application-level fault tolerance and
    # need no buffering at all.
    at = io.io_write("udp-datagram", now=system.now, unreliable=True)
    print("unreliable 'udp-datagram' released immediately at cycle %d" % at)

    print()
    print("delays of buffered writes (cycles):",
          [w.delay for w in io.released if w.delay is not None])


if __name__ == "__main__":
    main()
