#!/usr/bin/env python
"""Quickstart: measure PiCL's overhead against Ideal NVM and prior work.

Runs one SPEC-like workload (gcc) through the scaled Table IV system under
every crash-consistency scheme and prints the normalized execution time —
a one-benchmark slice of the paper's Fig 9.

Usage::

    python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import SCHEME_NAMES, Simulation, SystemConfig


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    benchmark = argv[0] if argv else "gcc"
    scale = int(argv[1]) if len(argv) > 1 else 128

    # The paper's system (Table IV), shrunk to laptop size: caches,
    # translation tables, epoch lengths, and working sets all divide by
    # `scale` so the capacity ratios that drive the results survive.
    config = SystemConfig().scaled(scale)
    n_instructions = config.epoch_instructions * 5  # five epochs

    print("PiCL quickstart: %s, 1/%d-scale system, %d instructions" % (
        benchmark, scale, n_instructions))
    print("  LLC %d KB, epoch %d instructions, NVM row write %.0f ns" % (
        config.llc_size_per_core // 1024,
        config.epoch_instructions,
        config.nvm.row_write_ns,
    ))
    print()

    ideal = Simulation(config, "ideal", [benchmark], n_instructions).run()
    print("  %-12s %10d cycles   (baseline, no crash consistency)"
          % ("ideal", ideal.cycles))

    for scheme in SCHEME_NAMES:
        if scheme == "ideal":
            continue
        result = Simulation(config, scheme, [benchmark], n_instructions).run()
        slowdown = result.normalized_to(ideal)
        print("  %-12s %10d cycles   %.3fx   (%d commits)"
              % (scheme, result.cycles, slowdown, result.commits))

    print()
    print("PiCL should sit within a few percent of ideal; prior work pays")
    print("for synchronous cache flushes and random NVM logging.")


if __name__ == "__main__":
    main()
