#!/usr/bin/env python
"""The paper's motivating example: a torn linked-list append, and recovery.

From the introduction: "when a doubly linked list is appended, two memory
locations are updated with new pointers. If these pointers reside in
different cache lines and are not both propagated to memory when the
system crashes, the memory state can be irreversibly corrupted."

This script performs exactly that append on (a) Ideal NVM — no crash
consistency — where the crash tears the structure, and (b) PiCL, where
recovery rolls memory back to the last persisted checkpoint and the list
is consistent (either fully before or fully after the append — never half).

Usage::

    python examples/crash_recovery_demo.py
"""

from repro.sim.config import SystemConfig
from repro.sim.interactive import InteractiveSystem

#: The two pointer fields live in different cache lines.
NODE_A_NEXT = 0x1000  # A.next
NODE_C_PREV = 0x2000  # C.prev


def describe(image, label):
    a_next = image.get(NODE_A_NEXT, 0)
    c_prev = image.get(NODE_C_PREV, 0)
    consistent = (a_next == 0) == (c_prev == 0)
    state = "consistent" if consistent else "CORRUPTED (half-appended!)"
    print("  %-24s A.next=%-6s C.prev=%-6s -> %s" % (
        label,
        a_next or "old",
        c_prev or "old",
        state,
    ))
    return consistent


def run_append_and_crash(scheme_name):
    print("%s:" % scheme_name)
    config = SystemConfig().scaled(256)
    system = InteractiveSystem(scheme_name, config)

    # A few epochs of unrelated work, so checkpoints exist.
    for epoch in range(4):
        for i in range(20):
            system.store(0x100000 + (epoch * 20 + i) * 64)
        system.end_epoch()

    # The append: two dependent pointer stores in different lines.
    system.store(NODE_A_NEXT)  # A.next = B
    # <-- power fails between the two stores reaching durable memory.
    system.store(NODE_C_PREV)  # C.prev = B
    # Force one of the lines (only!) toward memory, as an unlucky eviction
    # schedule would: write A.next in place while C.prev stays volatile.
    system.scheme.write_back(
        NODE_A_NEXT,
        system.arch_state()[NODE_A_NEXT],
        system.now,
    )

    image, commit_id, _reference = system.crash_and_recover()
    label = (
        "recovered to commit %s" % commit_id
        if commit_id is not None
        else "raw NVM contents"
    )
    return describe(image, label)


def main():
    print("Linked-list append torn by a power failure")
    print("=" * 60)
    ideal_ok = run_append_and_crash("ideal")
    picl_ok = run_append_and_crash("picl")
    print()
    if not ideal_ok and picl_ok:
        print("Ideal NVM tore the structure; PiCL recovered a consistent")
        print("checkpoint - software-transparent crash consistency at work.")
    elif ideal_ok:
        print("(The eviction schedule happened to be kind to Ideal NVM this")
        print("time; PiCL is consistent by construction, not by luck.)")


if __name__ == "__main__":
    main()
