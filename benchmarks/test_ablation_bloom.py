"""Ablation: bloom filter sizing.

The eviction-hazard filter trades bits for spurious flushes: at the
paper's 4096 bits (vs a 32-entry buffer) false positives are negligible;
tiny filters force the undo buffer to flush on unrelated evictions.
"""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.presets import get_preset


def test_ablation_bloom(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, ablations.sweep_bloom_bits, preset)
    archive(
        "ablation_bloom",
        "Ablation: forced undo-buffer flushes vs bloom filter bits "
        "(preset=%s)" % preset.name,
        ablations.format_sweep(sweep, "forced_flushes", "bloom_bits", "count")
        + "\n\nFalse positives:\n"
        + ablations.format_sweep(sweep, "false_positives", "bloom_bits", "count"),
    )
    sizes = sorted(sweep)
    smallest, largest = sizes[0], sizes[-1]
    totals = {
        size: sum(row["false_positives"] for row in sweep[size].values())
        for size in sizes
    }
    # Tiny filters produce (many) more false positives than the paper's.
    assert totals[smallest] > totals[largest]
    # At 4096 bits, false positives are negligible relative to evictions.
    forced_large = sum(row["forced_flushes"] for row in sweep[largest].values())
    fp_large = totals[largest]
    assert fp_large <= forced_large  # false positives are a subset
