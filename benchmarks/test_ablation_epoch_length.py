"""Ablation: epoch length.

"PiCL is generally agnostic to checkpoint lengths and has reliable
performance when using checkpoints of up to 100ms" — and unlike the redo
schemes it *benefits* from longer epochs (fewer cross-epoch stores means
less logging).
"""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.presets import get_preset


def test_ablation_epoch_length(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, ablations.sweep_epoch_length, preset)
    archive(
        "ablation_epoch_length",
        "Ablation: PiCL overhead and log volume vs epoch length "
        "(multiples of the 30M-instruction default; preset=%s)" % preset.name,
        ablations.format_sweep(sweep, "overhead", "epoch_x", "x")
        + "\n\nLog bytes appended:\n"
        + ablations.format_sweep(sweep, "log_bytes", "epoch_x", "bytes"),
    )
    multipliers = sorted(sweep)
    # Reliable performance at every epoch length, short to very long.
    for multiplier in multipliers:
        for bench_name, row in sweep[multiplier].items():
            assert row["overhead"] < 1.10, (multiplier, bench_name)
    # Longer epochs log less (fewer epoch boundaries to cross).
    for bench_name in sweep[multipliers[0]]:
        short = sweep[multipliers[0]][bench_name]["log_bytes"]
        long_ = sweep[multipliers[-1]][bench_name]["log_bytes"]
        assert long_ <= short, bench_name
