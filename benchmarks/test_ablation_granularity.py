"""Ablation: tracking granularity (64 B default vs OpenPiton's 16 B).

The prototype's 16 B sub-blocks quadruple the EID tags but shrink each
undo entry; whether the log grows or shrinks depends on how many
sub-blocks of a line each epoch actually touches.
"""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.presets import get_preset


def test_ablation_granularity(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, ablations.sweep_granularity, preset)
    archive(
        "ablation_granularity",
        "Ablation: PiCL with 64B vs 16B tracking granularity (preset=%s)"
        % preset.name,
        ablations.format_sweep(sweep, "overhead", "granularity", "x")
        + "\n\nUndo entries created:\n"
        + ablations.format_sweep(sweep, "entries", "granularity", "count")
        + "\n\nLog bytes appended:\n"
        + ablations.format_sweep(sweep, "log_bytes", "granularity", "bytes"),
    )
    for granularity in (64, 16):
        for bench_name, row in sweep[granularity].items():
            assert row["overhead"] < 1.10, (granularity, bench_name)
    for bench_name in sweep[64]:
        # Sub-block tracking creates at least as many entries...
        assert (
            sweep[16][bench_name]["entries"] >= sweep[64][bench_name]["entries"]
        ), bench_name
        # ...but each is smaller, so log volume does not blow up 4x.
        assert (
            sweep[16][bench_name]["log_bytes"]
            < sweep[64][bench_name]["log_bytes"] * 2
        ), bench_name
