"""Profile one throughput row under cProfile.

Perf PRs should start from data, not guesses: this wraps a single
simulation in cProfile and prints the hottest functions, so "what got
slower" has an answer before anything is rewritten.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --scheme picl --bench lbm --scale 128
    PYTHONPATH=src python benchmarks/profile_hotpath.py --row picl/W2/acs
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --row picl/hmmer --vector on --sort tottime
    PYTHONPATH=src python benchmarks/profile_hotpath.py --multicore
    PYTHONPATH=src python benchmarks/profile_hotpath.py --multicore --miss

``--row`` profiles one of the named throughput rows (exact config the
bench times, see perf_common.make_rows and make_columnar_rows);
``--scheme/--bench/--scale`` builds an ad-hoc single-core (or, with
``--cores``, multi-core mix) row. ``--vector on|off`` pins
``REPRO_VECTOR`` so the columnar interpreter's hot path (``bulk_span``
vs ``scalar_span`` vs ``L1TagMirror.sync`` time split) can be profiled
against the scalar loop on the identical simulation. ``--miss``
profiles *only* the residual-replay windows: the profiler is switched
on around each batched miss-chain drain call and off everywhere else,
so the report shows where miss-chain time goes without the bulk hit
path drowning it out — and prints the drain's share of the wall clock,
the number the docs' Amdahl breakdown quotes. Sorting/limits mirror
``python -m repro <fig> --profile`` but this runs one row in-process,
no experiment plumbing around it.
"""

import argparse
import cProfile
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

import perf_common  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402


def build_row(args):
    if args.multicore:
        for row in perf_common.make_multicore_rows():
            if row[0] == (args.row or "picl/W2"):
                return row
        raise SystemExit("--multicore rows are the fig10 matrix; "
                         "got %r" % args.row)
    if args.row is not None:
        rows = (
            perf_common.make_rows()
            + perf_common.make_columnar_rows()
            + perf_common.make_multicore_rows()
        )
        for row in rows:
            if row[0] == args.row:
                return row
        labels = ", ".join(dict.fromkeys(r[0] for r in rows))
        raise SystemExit("unknown row %r (have: %s)" % (args.row, labels))
    config = SystemConfig().scaled(args.scale, n_cores=args.cores)
    n = config.epoch_instructions * args.epochs
    is_mix = args.cores > 1
    label = "%s/%s@%d" % (args.scheme, args.bench, args.scale)
    return (label, args.scheme, args.bench, config, n, is_mix, False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--row", help="named throughput row (e.g. picl/lbm/acs)")
    parser.add_argument("--scheme", default="picl", help="scheme name")
    parser.add_argument("--bench", default="lbm", help="benchmark or mix name")
    parser.add_argument("--scale", type=int, default=128, help="config scale divisor")
    parser.add_argument("--cores", type=int, default=1, help="cores (>1 = mix run)")
    parser.add_argument("--epochs", type=int, default=4, help="epochs to simulate")
    parser.add_argument(
        "--sort", default="cumulative", help="pstats sort key (default: cumulative)"
    )
    parser.add_argument("--limit", type=int, default=30, help="rows to print")
    parser.add_argument(
        "--vector", choices=("on", "off"),
        help="pin REPRO_VECTOR for the profiled run (default: inherit the "
        "environment, i.e. the columnar interpreter on single-core rows)",
    )
    parser.add_argument(
        "--miss", action="store_true",
        help="profile only residual-replay windows: enable the profiler "
        "inside batched miss-chain drain calls and nowhere else (pins "
        "REPRO_VECTOR=1 and REPRO_BATCH_MISS=1)",
    )
    parser.add_argument(
        "--multicore", action="store_true",
        help="profile the horizon-batched eight-core interpreter on a "
        "fig10 matrix row (default picl/W2; pick another with --row). "
        "Pins REPRO_VECTOR=1; combine with --miss to see only the "
        "per-core drain windows",
    )
    args = parser.parse_args(argv)

    # Profile real simulation work, not result-cache reads.
    os.environ.setdefault("REPRO_NO_CACHE", "1")
    if args.multicore:
        if args.vector == "off":
            raise SystemExit("--multicore profiles the batched loop "
                             "(drop --vector off)")
        os.environ["REPRO_VECTOR"] = "1"
    if args.vector is not None:
        os.environ["REPRO_VECTOR"] = "1" if args.vector == "on" else "0"
    if args.miss:
        if args.vector == "off":
            raise SystemExit("--miss needs the columnar interpreter "
                             "(drop --vector off)")
        # The drain only exists inside the columnar interpreter with the
        # batched engine attached.
        os.environ["REPRO_VECTOR"] = "1"
        os.environ["REPRO_BATCH_MISS"] = "1"
    row = build_row(args)
    print(
        "profiling row %s (%d instructions, REPRO_VECTOR=%s%s)"
        % (
            row[0],
            row[4],
            os.environ.get("REPRO_VECTOR", "1"),
            ", drain windows only" if args.miss else "",
        )
    )
    profiler = cProfile.Profile()
    if args.miss:
        refs, elapsed, drain_stats = profile_miss_windows(profiler, row)
        print(
            "refs=%d wall=%.2fs refs/sec=%.0f" % (refs, elapsed, refs / elapsed)
        )
        if drain_stats["calls"] == 0:
            raise SystemExit(
                "no drain windows ran — the engine declined this row "
                "(banked NVM or multi-channel configs fall back to the "
                "scalar chain)"
            )
        print(
            "drain: %d window calls, %.2fs in-drain (%.0f%% of wall)"
            % (
                drain_stats["calls"],
                drain_stats["seconds"],
                100.0 * drain_stats["seconds"] / elapsed,
            )
        )
    else:
        profiler.enable()
        refs, elapsed = perf_common.run_row(row)
        profiler.disable()
        print(
            "refs=%d wall=%.2fs refs/sec=%.0f" % (refs, elapsed, refs / elapsed)
        )
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)


def profile_miss_windows(profiler, row):
    """Run ``row`` with the profiler live only inside drain calls.

    Wraps ``MissChainEngine.make_drain`` so every drain the interpreter
    builds is bracketed by ``profiler.enable()``/``disable()``; the bulk
    hit path, window classification, and trace generation all run
    unprofiled. Returns (refs, wall seconds, {calls, seconds}) where
    ``seconds`` is wall time spent inside drain windows.
    """
    from repro.cache.miss_engine import MissChainEngine

    drain_stats = {"calls": 0, "seconds": 0.0}
    original = MissChainEngine.make_drain

    class ProfiledGen(object):
        """Bracket every resume of a persistent drain generator.

        The multi-core interpreter bypasses the one-shot drain wrapper:
        it builds a generator via ``drain.turn_gen`` and parks it across
        heap turns, so the profiler must switch on around each
        ``next``/``send`` (one resume == one drain window) rather than
        around one call.
        """

        __slots__ = ("_gen",)

        def __init__(self, gen):
            self._gen = gen

        def _bracket(self, resume):
            start = time.perf_counter()
            profiler.enable()
            try:
                return resume()
            finally:
                profiler.disable()
                drain_stats["calls"] += 1
                drain_stats["seconds"] += time.perf_counter() - start

        def __next__(self):
            return self._bracket(lambda: next(self._gen))

        def send(self, value):
            return self._bracket(lambda: self._gen.send(value))

        def close(self):
            # close() runs the generator's finally block (the deferred
            # stat flush) — still drain work, so bracket it too.
            self._bracket(self._gen.close)

    def make_profiled_drain(self, *build_args):
        drain = original(self, *build_args)

        def profiled_drain(*args):
            start = time.perf_counter()
            profiler.enable()
            try:
                return drain(*args)
            finally:
                profiler.disable()
                drain_stats["calls"] += 1
                drain_stats["seconds"] += time.perf_counter() - start

        def profiled_turn_gen(*args, **kwargs):
            return ProfiledGen(drain.turn_gen(*args, **kwargs))

        profiled_drain.turn_gen = profiled_turn_gen
        return profiled_drain

    MissChainEngine.make_drain = make_profiled_drain
    try:
        refs, elapsed = perf_common.run_row(row)
    finally:
        MissChainEngine.make_drain = original
    return refs, elapsed, drain_stats


if __name__ == "__main__":
    main()
