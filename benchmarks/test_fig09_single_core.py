"""Fig 9: single-core execution time normalized to Ideal NVM.

Shape criteria (paper): PiCL ≈ 1.0x everywhere (worst case a few percent);
every prior scheme costs measurably more, with Journaling's overflow-prone
cases the worst (the paper's worst single-core case is ~10.7x).
"""

from conftest import run_once

from repro.experiments import fig09
from repro.experiments.presets import get_preset
from repro.experiments.report import geomean


def test_fig09_single_core(benchmark, archive):
    preset = get_preset()
    normalized = run_once(benchmark, fig09.run, preset)
    archive(
        "fig09_single_core",
        "Fig 9: single-core execution time normalized to Ideal NVM "
        "(preset=%s, lower is better)" % preset.name,
        fig09.format_result(normalized),
    )
    gmeans = {
        scheme: geomean(row[scheme] for row in normalized.values())
        for scheme in fig09.SCHEMES
    }
    # PiCL: "almost no overhead" — under 5% at the geomean, and the best
    # scheme overall.
    assert gmeans["picl"] < 1.05
    assert gmeans["picl"] == min(gmeans.values())
    # Prior work pays real overheads.
    assert gmeans["journaling"] > 1.5
    assert gmeans["frm"] > 1.1
    assert gmeans["shadow"] > 1.1
    # Worst cases are multiples, like the paper's 10.7x outliers.
    worst = max(
        row[scheme] for row in normalized.values() for scheme in fig09.SCHEMES
    )
    assert worst > 3.0
    # PiCL's own worst case stays within a few percent (sphinx3-like cases).
    picl_worst = max(row["picl"] for row in normalized.values())
    assert picl_worst < 1.15
