"""Fig 11: commits per default epoch interval.

Shape criteria (paper): PiCL (undo-based) always commits exactly once per
interval; Journaling overflows its translation table and commits an order
of magnitude more often on write-heavy workloads; Shadow-Paging sits in
between, helped by page-granularity entries on sequential writers and
hurt on scattered ones (astar).
"""

from conftest import run_once

from repro.experiments import fig11
from repro.experiments.presets import get_preset
from repro.experiments.report import geomean


def test_fig11_commits(benchmark, archive):
    preset = get_preset()
    commits = run_once(benchmark, fig11.run, preset)
    archive(
        "fig11_commits",
        "Fig 11: commits per default epoch interval (preset=%s, 1.0 = never "
        "forced)" % preset.name,
        fig11.format_result(commits),
    )
    # Undo-based PiCL never overflows: exactly one commit per interval.
    for bench_name, row in commits.items():
        assert row["picl"] == 1.0, bench_name
    # Journaling's forced commits are an order of magnitude beyond PiCL's.
    j_gmean = geomean(row["journaling"] for row in commits.values())
    assert j_gmean > 5.0
    worst_journal = max(row["journaling"] for row in commits.values())
    assert worst_journal > 16.0
    # Shadow tracks 64 lines per entry, so it commits less than Journaling.
    s_gmean = geomean(row["shadow"] for row in commits.values())
    assert s_gmean < j_gmean
    # Compute-bound write sets fit the table ("tracked quite consistently").
    assert commits["gamess"]["journaling"] < 4.0
    assert commits["povray"]["journaling"] < 4.0
    # Sequential writes favor Shadow-Paging (mcf).
    assert commits["mcf"]["shadow"] < commits["mcf"]["journaling"] / 4
