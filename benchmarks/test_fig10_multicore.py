"""Fig 10: eight-thread multiprogram mixes W0-W7.

Shape criteria (paper): prior work costs 1.6x-2.6x on the mixes; PiCL
stays at ~1.0x.
"""

from conftest import run_once

from repro.experiments import fig10
from repro.experiments.presets import get_preset
from repro.experiments.report import geomean


def test_fig10_multicore(benchmark, archive):
    preset = get_preset()
    normalized = run_once(benchmark, fig10.run, preset)
    archive(
        "fig10_multicore",
        "Fig 10: 8-thread multiprogram execution normalized to Ideal NVM "
        "(preset=%s, lower is better)" % preset.name,
        fig10.format_result(normalized),
    )
    gmeans = {
        scheme: geomean(row[scheme] for row in normalized.values())
        for scheme in fig10.SCHEMES
    }
    assert gmeans["picl"] < 1.05
    assert gmeans["picl"] == min(gmeans.values())
    # Each prior scheme costs real overhead on the mixes.
    for scheme in ("journaling", "shadow", "frm", "thynvm"):
        assert gmeans[scheme] > 1.1, scheme
    # The worst prior-work mix lands in (or beyond) the paper's 1.6-2.6x.
    worst_prior = max(
        row[scheme]
        for row in normalized.values()
        for scheme in fig10.SCHEMES
        if scheme != "picl"
    )
    assert worst_prior > 1.6
