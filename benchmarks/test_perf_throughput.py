"""Simulator throughput microbenchmark (refs/sec).

Not a paper figure: this pins the raw speed of the per-reference
simulation loop so hot-path regressions show up as numbers, not vibes.
Three single-core workloads cover the interesting paths — Ideal NVM
(pure hierarchy, no scheme work), PiCL on a cache-friendly trace, and
PiCL on a write-heavy streaming trace that exercises the undo log and
ACS hard.

The harness is fixed (scale=128, 4 epochs, seed=20180101) so runs are
comparable across commits on the same machine; the archived table in
``results/perf_throughput.txt`` keeps the seed-commit baseline alongside
the current numbers. Absolute refs/sec is machine-dependent, so the
assertions only check the run completed sanely — read the archived
speedup column for the perf story.
"""

import time

from repro.sim.config import SystemConfig
from repro.sim.sweep import run_single

#: (scheme, benchmark) points measured, in order.
WORKLOADS = [("ideal", "gcc"), ("picl", "gcc"), ("picl", "lbm")]

#: refs/sec at the growth seed (commit 927c3e6) with this same harness on
#: the reference machine — the "before" column of the archived table.
SEED_BASELINE = {
    ("ideal", "gcc"): 209633,
    ("picl", "gcc"): 162984,
    ("picl", "lbm"): 145722,
    "overall": 166026,
}


def measure():
    """Run every workload once; returns (rows, overall refs/sec)."""
    config = SystemConfig().scaled(128)
    n = config.epoch_instructions * 4
    rows = []
    total_refs = 0
    total_time = 0.0
    for scheme, benchmark in WORKLOADS:
        start = time.perf_counter()
        result = run_single(config, scheme, benchmark, n, seed=20180101)
        elapsed = time.perf_counter() - start
        refs = result.stat("loads") + result.stat("stores")
        rows.append((scheme, benchmark, refs, elapsed, refs / elapsed))
        total_refs += refs
        total_time += elapsed
    return rows, total_refs / total_time


def format_result(rows, overall):
    lines = [
        "%-8s %-8s %10s %9s %12s %10s %9s"
        % ("scheme", "bench", "refs", "time", "refs/sec", "seed", "speedup")
    ]
    for scheme, benchmark, refs, elapsed, rate in rows:
        seed_rate = SEED_BASELINE[(scheme, benchmark)]
        lines.append(
            "%-8s %-8s %10d %8.3fs %12.0f %10d %8.2fx"
            % (scheme, benchmark, refs, elapsed, rate, seed_rate, rate / seed_rate)
        )
    lines.append(
        "%-8s %-8s %10s %9s %12.0f %10d %8.2fx"
        % (
            "overall", "", "", "",
            overall,
            SEED_BASELINE["overall"],
            overall / SEED_BASELINE["overall"],
        )
    )
    return "\n".join(lines)


def test_perf_throughput(benchmark, archive):
    rows, overall = benchmark.pedantic(measure, rounds=1, iterations=1)
    archive(
        "perf_throughput",
        "Simulator throughput (scale=128, 4 epochs, seed=20180101; "
        "seed column = commit 927c3e6 baseline)",
        format_result(rows, overall),
    )
    # Sanity, not speed: the same fixed workload must have run end to end.
    for scheme, benchmark_name, refs, _elapsed, rate in rows:
        assert refs > 100_000, (scheme, benchmark_name)
        assert rate > 0
    # Both gcc runs see the identical trace, so identical reference counts.
    assert rows[0][2] == rows[1][2]
