"""Simulator throughput microbenchmark (refs/sec).

Not a paper figure: this pins the raw speed of the simulation loop so
hot-path regressions show up as numbers, not vibes. The measured rows
live in ``perf_common.make_rows()``: the historical scale-128 quartet
(Ideal NVM, PiCL on gcc/lbm, the eight-core W2 mix) plus two ACS-heavy
rows (scale 16, oversized LLC, short epochs) where the persist scan
dominates — the rows that regress if the EID-index scan paths ever fall
back to sweeping the cache.

Protocol: fixed seeds, each row run twice, fastest pass kept (noise on
shared hardware is strictly additive, so best-of-N is the stable
statistic). The ``pr3`` column is commit 7af47fa re-measured on this
machine via a worktree with the same rows and protocol, two rounds
interleaved with the current code so both sides saw the same machine
conditions — see ``PR3_BASELINE``. Absolute refs/sec is
machine-dependent, so the assertions only check the run completed
sanely; the archived table and ``results/BENCH_scan.json`` carry the
perf story. ``overall`` sums references over summed best times across
every row.
"""

import os

from perf_common import (
    COLUMNAR_PROTOCOL,
    MISSCHAIN_PROTOCOL,
    PROTOCOL,
    SEED,
    bench_payload,
    columnar_payload,
    make_columnar_rows,
    make_misschain_rows,
    make_rows,
    measure,
    measure_columnar,
    measure_misschain,
    misschain_payload,
    write_bench_json,
)

#: refs/sec at PR 3 (commit 7af47fa) with this same harness — see the
#: module docstring for the re-measurement protocol. ``overall`` is the
#: all-rows aggregate.
PR3_BASELINE = {
    "ideal/gcc": 466655,
    "picl/gcc": 452137,
    "picl/lbm": 293343,
    "picl/W2": 248447,
    "picl/lbm/acs": 148672,
    "picl/W2/acs": 88834,
    "overall": 199647,
}


def format_result(measurements, overall):
    lines = [
        "%-14s %10s %9s %12s %10s %9s"
        % ("row", "refs", "time", "refs/sec", "pr3", "speedup")
    ]
    for m in measurements:
        base_rate = PR3_BASELINE[m["label"]]
        lines.append(
            "%-14s %10d %8.3fs %12.0f %10d %8.2fx"
            % (
                m["label"],
                m["refs"],
                m["seconds"],
                m["refs_per_sec"],
                base_rate,
                m["refs_per_sec"] / base_rate,
            )
        )
    lines.append(
        "%-14s %10s %9s %12.0f %10d %8.2fx"
        % ("overall", "", "", overall, PR3_BASELINE["overall"],
           overall / PR3_BASELINE["overall"])
    )
    return "\n".join(lines)


def test_perf_throughput(benchmark, archive):
    measurements, overall = benchmark.pedantic(measure, rounds=1, iterations=1)
    archive(
        "perf_throughput",
        "Simulator throughput (seed=%d; rows per perf_common.make_rows; "
        "best of 2 passes per row; pr3 column = commit 7af47fa re-measured "
        "on this machine with the same protocol, 2 interleaved rounds; "
        "overall = all rows)" % SEED,
        format_result(measurements, overall),
    )
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    write_bench_json(
        os.path.join(results_dir, "BENCH_scan.json"),
        bench_payload(
            measurements,
            overall,
            baseline={"pr": 3, "commit": "7af47fa", "rows": PR3_BASELINE},
            note="%s; best-of-2 passes" % PROTOCOL,
        ),
    )
    # Sanity, not speed: the same fixed workloads must have run end to end.
    by_label = {m["label"]: m for m in measurements}
    assert set(by_label) == {row[0] for row in make_rows()}
    for m in measurements:
        assert m["refs"] > 100_000, m["label"]
        assert m["refs_per_sec"] > 0
    # Both gcc runs see the identical trace, so identical reference counts.
    assert by_label["ideal/gcc"]["refs"] == by_label["picl/gcc"]["refs"]


def format_columnar(measurements, overall):
    lines = [
        "%-14s %10s %12s %12s %9s"
        % ("row", "refs", "scalar r/s", "columnar r/s", "speedup")
    ]
    for m in measurements:
        lines.append(
            "%-14s %10d %12.0f %12.0f %8.2fx"
            % (
                m["label"],
                m["refs"],
                m["scalar_refs_per_sec"],
                m["columnar_refs_per_sec"],
                m["speedup"],
            )
        )
    lines.append(
        "%-14s %10s %12.0f %12.0f %8.2fx"
        % (
            "overall",
            "",
            overall["scalar_refs_per_sec"],
            overall["columnar_refs_per_sec"],
            overall["speedup"],
        )
    )
    return "\n".join(lines)


def test_perf_columnar(benchmark, archive):
    """Scalar vs columnar interpreter, measured strictly interleaved.

    Both modes run the identical simulation (``REPRO_VECTOR=0`` vs
    ``=1``; bit-identity is asserted by tests/sim/test_vectorized.py)
    back to back within each pass, so the per-row speedup column is the
    one number that survives machine noise. Assertions stay sanity-level
    — absolute refs/sec is machine-dependent and the speedup on
    miss-heavy rows is legitimately ~1x (Amdahl: the interpreter loop is
    a minority of their wall clock) — the archived table and
    ``results/BENCH_columnar.json`` carry the perf story.
    """
    measurements, overall = benchmark.pedantic(
        measure_columnar, rounds=1, iterations=1
    )
    archive(
        "perf_columnar",
        "Scalar vs columnar interpreter (seed=%d; rows per "
        "perf_common.make_columnar_rows; REPRO_VECTOR=0 vs =1 interleaved, "
        "best of 2 passes per mode; overall = all rows)" % SEED,
        format_columnar(measurements, overall),
    )
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    write_bench_json(
        os.path.join(results_dir, "BENCH_columnar.json"),
        columnar_payload(
            measurements,
            overall,
            note="%s; best-of-2 passes per mode, interleaved" % COLUMNAR_PROTOCOL,
        ),
    )
    by_label = {m["label"]: m for m in measurements}
    assert set(by_label) == {row[0] for row in make_columnar_rows()}
    for m in measurements:
        # Identical refs in both modes is implied by construction (one
        # refs count per row); check it ran end to end at sane volume.
        assert m["refs"] > 50_000, m["label"]
        assert m["scalar_refs_per_sec"] > 0
        assert m["columnar_refs_per_sec"] > 0
    # Trace identity across schemes, as for the scan rows.
    assert by_label["ideal/hmmer"]["refs"] == by_label["picl/hmmer"]["refs"]


def format_misschain(measurements, overall):
    lines = [
        "%-14s %10s %12s %12s %9s"
        % ("row", "refs", "scalar r/s", "batched r/s", "speedup")
    ]
    for m in measurements:
        lines.append(
            "%-14s %10d %12.0f %12.0f %8.2fx"
            % (
                m["label"],
                m["refs"],
                m["scalar_refs_per_sec"],
                m["batched_refs_per_sec"],
                m["speedup"],
            )
        )
    lines.append(
        "%-14s %10s %12.0f %12.0f %8.2fx"
        % (
            "overall",
            "",
            overall["scalar_refs_per_sec"],
            overall["batched_refs_per_sec"],
            overall["speedup"],
        )
    )
    return "\n".join(lines)


def test_perf_misschain(benchmark, archive):
    """Scalar vs batched miss chain, measured strictly interleaved.

    Both sides run under the columnar interpreter (``REPRO_VECTOR=1``)
    with only ``REPRO_BATCH_MISS`` toggled, so the ratio isolates the
    drain against the per-miss call chain; bit-identity is asserted by
    tests/sim/test_batched_miss.py. Rows lead with gcc — the miss-heavy
    rows the engine exists for — and assertions stay sanity-level: the
    speedup on hit-dominated hmmer rows is legitimately ~1x (the drain
    barely runs there). ``results/BENCH_misschain.json`` carries the
    perf story.
    """
    measurements, overall = benchmark.pedantic(
        measure_misschain, rounds=1, iterations=1
    )
    archive(
        "perf_misschain",
        "Scalar vs batched miss chain (seed=%d; rows per "
        "perf_common.make_misschain_rows; REPRO_BATCH_MISS=0 vs =1 under "
        "REPRO_VECTOR=1, interleaved, best of 2 passes per mode; "
        "overall = all rows)" % SEED,
        format_misschain(measurements, overall),
    )
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    write_bench_json(
        os.path.join(results_dir, "BENCH_misschain.json"),
        misschain_payload(
            measurements,
            overall,
            note="%s; best-of-2 passes per mode, interleaved"
            % MISSCHAIN_PROTOCOL,
        ),
    )
    by_label = {m["label"]: m for m in measurements}
    assert set(by_label) == {row[0] for row in make_misschain_rows()}
    for m in measurements:
        assert m["refs"] > 50_000, m["label"]
        assert m["scalar_refs_per_sec"] > 0
        assert m["batched_refs_per_sec"] > 0
    assert by_label["ideal/gcc"]["refs"] == by_label["picl/gcc"]["refs"]
