"""Simulator throughput microbenchmark (refs/sec).

Not a paper figure: this pins the raw speed of the simulation loop so
hot-path regressions show up as numbers, not vibes. Three single-core
workloads cover the interesting paths — Ideal NVM (pure hierarchy, no
scheme work), PiCL on a cache-friendly trace, and PiCL on a write-heavy
streaming trace that exercises the undo log and ACS hard — plus one
eight-core PiCL mix run that times the interleaved multi-core loop (which
takes none of the single-core batching fast paths).

The harness is fixed (scale=128, seed=20180101; 4 epochs single-core,
2 system epochs for the mix) so runs are comparable across commits on the
same machine; the archived table in ``results/perf_throughput.txt`` keeps
the previous-PR baseline alongside the current numbers. Each workload is
run twice and the faster pass is kept: shared hardware swings individual
runs by ±10-20% (frequency scaling, co-tenancy) and the noise is strictly
additive, so best-of-N is the stable comparison statistic. The baseline
column was produced under the same protocol (see ``PR1_BASELINE``).
Absolute refs/sec is machine-dependent, so the assertions only check the
run completed sanely — read the archived speedup column for the perf
story. The ``overall`` row aggregates the three single-core workloads
only, keeping it comparable with the table's history.
"""

import time

from repro.sim.config import SystemConfig
from repro.sim.sweep import run_mix, run_single

#: (scheme, benchmark-or-mix) points measured, in order. "W2" is the
#: eight-core multiprogram mix row (see repro.trace.mixes).
WORKLOADS = [("ideal", "gcc"), ("picl", "gcc"), ("picl", "lbm"), ("picl", "W2")]

#: Mix rows (timed and archived, excluded from the single-core overall).
MIX_WORKLOADS = {("picl", "W2")}

#: refs/sec at the previous PR (commit ba41785) with this same harness
#: (same ``measure()`` best-of-2 protocol), re-measured on the current
#: machine via a worktree at that commit — two rounds interleaved with
#: runs of the current code so both sides saw the same machine
#: conditions, best row kept. This is the "before" column of the
#: archived table. (The table archived *at* ba41785 was taken on
#: different hardware and is not comparable.) ``overall`` is
#: single-core refs over the summed best-row times.
PR1_BASELINE = {
    ("ideal", "gcc"): 425547,
    ("picl", "gcc"): 361865,
    ("picl", "lbm"): 260431,
    ("picl", "W2"): 242952,
    "overall": 325041,
}


def measure(passes=2):
    """Run every workload ``passes`` times, keep each row's fastest pass.

    Returns (rows, overall refs/sec). ``overall`` covers the single-core
    rows only (refs summed over their best-pass wall times); the mix row
    has its own rate and baseline.
    """
    config = SystemConfig().scaled(128)
    n = config.epoch_instructions * 4
    config8 = SystemConfig().scaled(128, n_cores=8)
    n8 = config8.epoch_instructions * 2
    rows = []
    total_refs = 0
    total_time = 0.0
    for scheme, workload in WORKLOADS:
        best = None
        for _ in range(passes):
            start = time.perf_counter()
            if (scheme, workload) in MIX_WORKLOADS:
                result = run_mix(config8, scheme, workload, n8, seed=20180101)
            else:
                result = run_single(config, scheme, workload, n, seed=20180101)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        refs = result.stat("loads") + result.stat("stores")
        rows.append((scheme, workload, refs, best, refs / best))
        if (scheme, workload) not in MIX_WORKLOADS:
            total_refs += refs
            total_time += best
    return rows, total_refs / total_time


def format_result(rows, overall):
    lines = [
        "%-8s %-8s %10s %9s %12s %10s %9s"
        % ("scheme", "bench", "refs", "time", "refs/sec", "pr1", "speedup")
    ]
    for scheme, workload, refs, elapsed, rate in rows:
        base_rate = PR1_BASELINE[(scheme, workload)]
        lines.append(
            "%-8s %-8s %10d %8.3fs %12.0f %10d %8.2fx"
            % (scheme, workload, refs, elapsed, rate, base_rate, rate / base_rate)
        )
    lines.append(
        "%-8s %-8s %10s %9s %12.0f %10d %8.2fx"
        % (
            "overall", "1-core", "", "",
            overall,
            PR1_BASELINE["overall"],
            overall / PR1_BASELINE["overall"],
        )
    )
    return "\n".join(lines)


def test_perf_throughput(benchmark, archive):
    rows, overall = benchmark.pedantic(measure, rounds=1, iterations=1)
    archive(
        "perf_throughput",
        "Simulator throughput (scale=128, seed=20180101; 4 epochs 1-core, "
        "2 system epochs 8-core mix; best of 2 passes per row; pr1 column "
        "= commit ba41785 re-measured on this machine with the same "
        "protocol, 2 interleaved rounds; overall = single-core rows only)",
        format_result(rows, overall),
    )
    # Sanity, not speed: the same fixed workloads must have run end to end.
    for scheme, workload, refs, _elapsed, rate in rows:
        if (scheme, workload) in MIX_WORKLOADS:
            assert refs > 500_000, (scheme, workload)
        else:
            assert refs > 100_000, (scheme, workload)
        assert rate > 0
    # Both gcc runs see the identical trace, so identical reference counts.
    assert rows[0][2] == rows[1][2]
