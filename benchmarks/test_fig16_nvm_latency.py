"""Fig 16: sensitivity to NVM row-write latency.

Shape criteria: schemes whose logging is random or whose flushes are
synchronous degrade as writes slow from DRAM-like (68 ns) to slow SCM
(968 ns); PiCL's posted, sequential logging keeps it near 1.0x across the
range.
"""

from conftest import run_once

from repro.experiments import fig16
from repro.experiments.presets import get_preset


def test_fig16_nvm_latency(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, fig16.run, preset)
    archive(
        "fig16_nvm_latency",
        "Fig 16: gmean normalized execution vs NVM row-write latency "
        "(preset=%s, lower is better)" % preset.name,
        fig16.format_result(sweep),
    )
    latencies = sorted(sweep)
    fastest, slowest = latencies[0], latencies[-1]
    # PiCL tolerates even the slowest writes.
    for latency in latencies:
        assert sweep[latency]["picl"] < 1.08
    # Flush-based schemes degrade with write latency.
    for scheme in ("frm", "journaling"):
        assert sweep[slowest][scheme] > sweep[fastest][scheme], scheme
    # At the slowest point the gap to PiCL is widest.
    gap_slow = min(
        sweep[slowest][s] for s in fig16.SCHEMES if s != "picl"
    ) - sweep[slowest]["picl"]
    gap_fast = min(
        sweep[fastest][s] for s in fig16.SCHEMES if s != "picl"
    ) - sweep[fastest]["picl"]
    assert gap_slow > gap_fast * 0.8
