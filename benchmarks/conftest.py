"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures: it runs the
corresponding experiment once (timed by pytest-benchmark), prints the same
rows/series the paper reports, archives them under
``benchmarks/results/``, and asserts the *shape* criteria — who wins, by
roughly what factor — that the reproduction is expected to preserve.

The system scale is controlled by the ``REPRO_PRESET`` environment
variable (``quick`` default, ``full`` for the EXPERIMENTS.md numbers).
"""

import os

import pytest

# Benchmarks time (and archive) real simulations; a warm .repro_cache/
# would turn them into cache reads. Explicit REPRO_NO_CACHE= re-enables.
os.environ.setdefault("REPRO_NO_CACHE", "1")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def archive(capsys):
    """Returns a writer that prints a table and archives it to results/."""

    def write(name, title, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        body = "%s\n%s\n" % (title, text)
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
            handle.write(body)
        with capsys.disabled():
            print()
            print(body)

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an experiment and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
