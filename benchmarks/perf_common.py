"""Shared row definitions and protocol for the throughput microbenchmark.

One place defines the measured workload rows so the pytest bench
(``test_perf_throughput.py``), the CI regression check
(``check_perf_regression.py``), and the profiler wrapper
(``profile_hotpath.py``) all time exactly the same simulations.

Rows come in two groups:

* the historical rows (scale=128; three single-core workloads plus the
  eight-core W2 mix) that every PR's table has carried, and
* two ACS-heavy rows (scale=16, oversized LLC, short epochs) where the
  persist scan dominates: a single-core lbm run with 4 MB of LLC and
  2048-instruction epochs, and an eight-core W2 mix with 4 MB of LLC per
  core and 512-instruction epochs. These are the rows that regress if
  the EID-index scan paths ever fall back to sweeping the cache.

A third group (``make_columnar_rows``) times the same simulation under
``REPRO_VECTOR=0`` and ``=1`` strictly interleaved, producing the
scalar-vs-columnar matrix in ``BENCH_columnar.json`` — single-core
plain rows only, since the columnar interpreter serves exactly one
core.

A fourth group (``make_misschain_rows``) reuses the columnar grid but
ordered miss-heavy first, timing ``REPRO_BATCH_MISS=0`` vs ``=1`` with
the columnar interpreter pinned on for both sides — the batched
miss-chain matrix in ``BENCH_misschain.json``.

A fifth group (``make_multicore_rows``) is the eight-core fig10 grid:
every Table V mix under picl plus two scheme variants of W2, timed
under ``REPRO_VECTOR=0`` vs ``=1`` strictly interleaved — the
horizon-batched multi-core matrix in ``BENCH_multicore.json``. Its
``overall`` adds a per-row geometric-mean speedup alongside the
throughput ratio, because the mixes span very different reference
counts and the geomean is what the regression gate watches.

The protocol is best-of-N passes per row (noise on shared hardware is
strictly additive, so the fastest pass is the stable statistic), fixed
seeds, and rates in refs/sec. ``overall`` aggregates every row: summed
references over summed best-pass times.
"""

import json
import math
import os
import time

from repro.common.units import MB
from repro.sim.config import SystemConfig
from repro.sim.sweep import run_mix, run_single

SEED = 20180101

#: Schema tag for BENCH_scan.json, bumped when rows/protocol change.
PROTOCOL = "throughput-v2"

#: Schema tag for BENCH_columnar.json (the REPRO_VECTOR=0 vs =1 matrix).
COLUMNAR_PROTOCOL = "columnar-v1"

#: Schema tag for BENCH_misschain.json (REPRO_BATCH_MISS=0 vs =1, both
#: under the columnar interpreter).
MISSCHAIN_PROTOCOL = "misschain-v1"

#: Schema tag for BENCH_multicore.json (REPRO_VECTOR=0 vs =1 on the
#: eight-core fig10 mixes).
MULTICORE_PROTOCOL = "multicore-v1"


def make_rows():
    """The measured rows: (label, scheme, workload, config, n, is_mix, acs)."""
    cfg = SystemConfig().scaled(128)
    n = cfg.epoch_instructions * 4
    cfg8 = SystemConfig().scaled(128, n_cores=8)
    n8 = cfg8.epoch_instructions * 2
    acs1 = SystemConfig().scaled(
        16, llc_size_per_core=4 * MB, epoch_instructions=2048
    )
    acs8 = SystemConfig().scaled(
        16, n_cores=8, llc_size_per_core=4 * MB, epoch_instructions=512
    )
    return [
        ("ideal/gcc", "ideal", "gcc", cfg, n, False, False),
        ("picl/gcc", "picl", "gcc", cfg, n, False, False),
        ("picl/lbm", "picl", "lbm", cfg, n, False, False),
        ("picl/W2", "picl", "W2", cfg8, n8, True, False),
        ("picl/lbm/acs", "picl", "lbm", acs1, 2048 * 192, False, True),
        ("picl/W2/acs", "picl", "W2", acs8, 2048 * 96, True, True),
    ]


def make_columnar_rows():
    """The dual-mode (scalar vs columnar) rows: plain single-core only.

    The columnar interpreter attaches to exactly one in-order core, so
    every row here is single-core at the historical scale 128. The rows
    deliberately span the classifier's regimes: gcc (miss-heavy; the
    self-tuning controller spends most refs in disengaged scalar
    bursts), lbm and h264ref (long same-line runs; the run-based cost
    model), and hmmer on both ideal and picl (hit-dominated; the bulk
    path carries nearly every window and the speedup is largest).
    """
    cfg = SystemConfig().scaled(128)
    n = cfg.epoch_instructions * 4
    return [
        ("ideal/gcc", "ideal", "gcc", cfg, n, False, False),
        ("picl/gcc", "picl", "gcc", cfg, n, False, False),
        ("picl/lbm", "picl", "lbm", cfg, n, False, False),
        ("picl/h264ref", "picl", "h264ref", cfg, n, False, False),
        ("ideal/hmmer", "ideal", "hmmer", cfg, n, False, False),
        ("picl/hmmer", "picl", "hmmer", cfg, n, False, False),
    ]


def run_row(row):
    """Run one row once; returns (references, elapsed seconds)."""
    _label, scheme, workload, config, n, is_mix, _acs = row
    start = time.perf_counter()
    if is_mix:
        result = run_mix(config, scheme, workload, n, seed=SEED)
    else:
        result = run_single(config, scheme, workload, n, seed=SEED)
    elapsed = time.perf_counter() - start
    return result.stat("loads") + result.stat("stores"), elapsed


def make_misschain_rows():
    """The batched-miss-chain matrix rows, gcc (miss-heavy) first.

    Same single-core grid as :func:`make_columnar_rows`, but ordered by
    how much the row exercises the miss chain: the gcc rows lead because
    they are the ones the batched engine exists for (sparse access
    pattern, most references reach L2/LLC/NVM), then the long-run rows
    (lbm, h264ref), then hit-dominated hmmer where the drain is nearly
    idle and the matrix mostly checks that the engine costs nothing.
    """
    rows = {row[0]: row for row in make_columnar_rows()}
    order = [
        "picl/gcc",
        "ideal/gcc",
        "picl/lbm",
        "picl/h264ref",
        "picl/hmmer",
        "ideal/hmmer",
    ]
    return [rows[label] for label in order]


def run_row_engine(row, batched):
    """Run one row with the batched miss-chain engine forced on or off.

    Both sides run under the columnar interpreter (``REPRO_VECTOR=1``):
    the engine is the interpreter's residual-miss drain, so the
    meaningful ratio is batched-drain vs scalar-replay *within* columnar
    mode. Like ``REPRO_VECTOR``, ``REPRO_BATCH_MISS`` is read when the
    simulation runs, so it is pinned around the run and restored after.
    """
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_VECTOR", "REPRO_BATCH_MISS")
    }
    os.environ["REPRO_VECTOR"] = "1"
    os.environ["REPRO_BATCH_MISS"] = "1" if batched else "0"
    try:
        return run_row(row)
    finally:
        for name, value in saved.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value


def measure_misschain(passes=2, rows=None):
    """Measure each row with the miss-chain engine off and on, interleaved.

    The same protocol as :func:`measure_columnar`: every pass runs both
    modes back to back per row so they see identical machine conditions,
    and the fastest pass per mode is kept. Returns (measurements,
    overall); ``speedup`` is scalar-chain time over batched-engine time.
    """
    if rows is None:
        rows = make_misschain_rows()
    measurements = []
    totals = {"refs": 0, "scalar": 0.0, "batched": 0.0}
    for row in rows:
        refs = None
        best = {False: None, True: None}
        for _ in range(passes):
            for batched in (False, True):
                row_refs, elapsed = run_row_engine(row, batched)
                refs = row_refs
                if best[batched] is None or elapsed < best[batched]:
                    best[batched] = elapsed
        measurements.append(
            {
                "label": row[0],
                "refs": refs,
                "scalar_seconds": best[False],
                "batched_seconds": best[True],
                "scalar_refs_per_sec": refs / best[False],
                "batched_refs_per_sec": refs / best[True],
                "speedup": best[False] / best[True],
            }
        )
        totals["refs"] += refs
        totals["scalar"] += best[False]
        totals["batched"] += best[True]
    overall = {
        "scalar_refs_per_sec": totals["refs"] / totals["scalar"],
        "batched_refs_per_sec": totals["refs"] / totals["batched"],
        "speedup": totals["scalar"] / totals["batched"],
    }
    return measurements, overall


def misschain_payload(measurements, overall, note=""):
    """The machine-readable BENCH_misschain.json payload."""
    return {
        "protocol": MISSCHAIN_PROTOCOL,
        "seed": SEED,
        "note": note,
        "rows": {
            m["label"]: {
                "refs": m["refs"],
                "scalar_seconds": round(m["scalar_seconds"], 4),
                "batched_seconds": round(m["batched_seconds"], 4),
                "scalar_refs_per_sec": round(m["scalar_refs_per_sec"]),
                "batched_refs_per_sec": round(m["batched_refs_per_sec"]),
                "speedup": round(m["speedup"], 3),
            }
            for m in measurements
        },
        "overall": {
            "scalar_refs_per_sec": round(overall["scalar_refs_per_sec"]),
            "batched_refs_per_sec": round(overall["batched_refs_per_sec"]),
            "speedup": round(overall["speedup"], 3),
        },
    }


def run_row_vector(row, vector):
    """Run one row with the columnar interpreter forced on or off.

    ``REPRO_VECTOR`` is read when the cache hierarchy is built, so it
    must be pinned in the environment before the simulation is
    constructed (and restored afterwards, so one measurement cannot
    leak its mode into the next).
    """
    previous = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = "1" if vector else "0"
    try:
        return run_row(row)
    finally:
        if previous is None:
            del os.environ["REPRO_VECTOR"]
        else:
            os.environ["REPRO_VECTOR"] = previous


def measure_columnar(passes=2, rows=None):
    """Measure each row in both modes, strictly interleaved.

    Every pass runs scalar then columnar back to back per row, so both
    modes see the same machine conditions; the fastest pass per mode is
    kept (noise is additive). Returns (measurements, overall) where each
    measurement carries both rates and their ratio, and ``overall``
    aggregates summed refs over summed best times per mode.
    """
    if rows is None:
        rows = make_columnar_rows()
    measurements = []
    totals = {"refs": 0, "scalar": 0.0, "columnar": 0.0}
    for row in rows:
        refs = None
        best = {False: None, True: None}
        for _ in range(passes):
            for vector in (False, True):
                row_refs, elapsed = run_row_vector(row, vector)
                refs = row_refs
                if best[vector] is None or elapsed < best[vector]:
                    best[vector] = elapsed
        measurements.append(
            {
                "label": row[0],
                "refs": refs,
                "scalar_seconds": best[False],
                "columnar_seconds": best[True],
                "scalar_refs_per_sec": refs / best[False],
                "columnar_refs_per_sec": refs / best[True],
                "speedup": best[False] / best[True],
            }
        )
        totals["refs"] += refs
        totals["scalar"] += best[False]
        totals["columnar"] += best[True]
    overall = {
        "scalar_refs_per_sec": totals["refs"] / totals["scalar"],
        "columnar_refs_per_sec": totals["refs"] / totals["columnar"],
        "speedup": totals["scalar"] / totals["columnar"],
    }
    return measurements, overall


def columnar_payload(measurements, overall, note=""):
    """The machine-readable BENCH_columnar.json payload."""
    return {
        "protocol": COLUMNAR_PROTOCOL,
        "seed": SEED,
        "note": note,
        "rows": {
            m["label"]: {
                "refs": m["refs"],
                "scalar_seconds": round(m["scalar_seconds"], 4),
                "columnar_seconds": round(m["columnar_seconds"], 4),
                "scalar_refs_per_sec": round(m["scalar_refs_per_sec"]),
                "columnar_refs_per_sec": round(m["columnar_refs_per_sec"]),
                "speedup": round(m["speedup"], 3),
            }
            for m in measurements
        },
        "overall": {
            "scalar_refs_per_sec": round(overall["scalar_refs_per_sec"]),
            "columnar_refs_per_sec": round(overall["columnar_refs_per_sec"]),
            "speedup": round(overall["speedup"], 3),
        },
    }


def make_multicore_rows():
    """The eight-core fig10 matrix rows.

    Every Table V mix runs under picl at the historical scale 128 so the
    matrix spans the full range of sharing behaviour (W0 is the most
    hit-dominated mix, W5 the most miss-heavy), then W2 repeats under
    journaling and thynvm so the grid also covers schemes whose epoch
    hooks do real work at the boundary. All rows are mixes; n follows
    the two-epoch convention of the historical W2 row.
    """
    cfg8 = SystemConfig().scaled(128, n_cores=8)
    n8 = cfg8.epoch_instructions * 2
    rows = [
        ("picl/%s" % mix, "picl", mix, cfg8, n8, True, False)
        for mix in ("W0", "W1", "W2", "W3", "W4", "W5", "W6", "W7")
    ]
    rows.append(("journaling/W2", "journaling", "W2", cfg8, n8, True, False))
    rows.append(("thynvm/W2", "thynvm", "W2", cfg8, n8, True, False))
    return rows


def measure_multicore(passes=2, rows=None):
    """Measure each eight-core row in both modes, strictly interleaved.

    The same protocol as :func:`measure_columnar` — every pass runs the
    scalar heap loop then the horizon-batched loop back to back per row,
    keeping the fastest pass per mode — but ``overall`` also carries
    ``speedup_geomean``, the geometric mean of the per-row ratios, which
    is the acceptance statistic for the multi-core interpreter (the
    summed-time ratio overweights the slowest mixes).
    """
    if rows is None:
        rows = make_multicore_rows()
    measurements = []
    totals = {"refs": 0, "scalar": 0.0, "batched": 0.0}
    for row in rows:
        refs = None
        best = {False: None, True: None}
        for _ in range(passes):
            for vector in (False, True):
                row_refs, elapsed = run_row_vector(row, vector)
                refs = row_refs
                if best[vector] is None or elapsed < best[vector]:
                    best[vector] = elapsed
        measurements.append(
            {
                "label": row[0],
                "refs": refs,
                "scalar_seconds": best[False],
                "batched_seconds": best[True],
                "scalar_refs_per_sec": refs / best[False],
                "batched_refs_per_sec": refs / best[True],
                "speedup": best[False] / best[True],
            }
        )
        totals["refs"] += refs
        totals["scalar"] += best[False]
        totals["batched"] += best[True]
    log_sum = sum(math.log(m["speedup"]) for m in measurements)
    overall = {
        "scalar_refs_per_sec": totals["refs"] / totals["scalar"],
        "batched_refs_per_sec": totals["refs"] / totals["batched"],
        "speedup": totals["scalar"] / totals["batched"],
        "speedup_geomean": math.exp(log_sum / len(measurements)),
    }
    return measurements, overall


def multicore_payload(measurements, overall, note=""):
    """The machine-readable BENCH_multicore.json payload."""
    return {
        "protocol": MULTICORE_PROTOCOL,
        "seed": SEED,
        "note": note,
        "rows": {
            m["label"]: {
                "refs": m["refs"],
                "scalar_seconds": round(m["scalar_seconds"], 4),
                "batched_seconds": round(m["batched_seconds"], 4),
                "scalar_refs_per_sec": round(m["scalar_refs_per_sec"]),
                "batched_refs_per_sec": round(m["batched_refs_per_sec"]),
                "speedup": round(m["speedup"], 3),
            }
            for m in measurements
        },
        "overall": {
            "scalar_refs_per_sec": round(overall["scalar_refs_per_sec"]),
            "batched_refs_per_sec": round(overall["batched_refs_per_sec"]),
            "speedup": round(overall["speedup"], 3),
            "speedup_geomean": round(overall["speedup_geomean"], 3),
        },
    }


def measure(passes=2, rows=None):
    """Run each row ``passes`` times, keep its fastest pass.

    Returns (measurements, overall refs/sec) where each measurement is a
    dict with label/refs/seconds/refs_per_sec/acs_heavy. ``overall`` is
    summed refs over summed best times across every row.
    """
    if rows is None:
        rows = make_rows()
    measurements = []
    total_refs = 0
    total_time = 0.0
    for row in rows:
        refs = None
        best = None
        for _ in range(passes):
            row_refs, elapsed = run_row(row)
            refs = row_refs
            if best is None or elapsed < best:
                best = elapsed
        measurements.append(
            {
                "label": row[0],
                "refs": refs,
                "seconds": best,
                "refs_per_sec": refs / best,
                "acs_heavy": row[6],
            }
        )
        total_refs += refs
        total_time += best
    return measurements, total_refs / total_time


def bench_payload(measurements, overall, baseline=None, note=""):
    """The machine-readable BENCH_scan.json payload."""
    payload = {
        "protocol": PROTOCOL,
        "seed": SEED,
        "note": note,
        "rows": {
            m["label"]: {
                "refs": m["refs"],
                "seconds": round(m["seconds"], 4),
                "refs_per_sec": round(m["refs_per_sec"]),
                "acs_heavy": m["acs_heavy"],
            }
            for m in measurements
        },
        "overall_refs_per_sec": round(overall),
    }
    if baseline is not None:
        payload["baseline"] = baseline
    return payload


def write_bench_json(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path):
    with open(path) as handle:
        return json.load(handle)
