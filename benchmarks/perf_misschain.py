"""Measure the batched miss-chain engine and write BENCH_misschain.json.

Runs the misschain matrix (``perf_common.make_misschain_rows``, gcc
rows first) with ``REPRO_BATCH_MISS=0`` and ``=1`` strictly interleaved
— both sides under the columnar interpreter — keeping the fastest pass
per mode, and writes ``benchmarks/results/BENCH_misschain.json``.

The committed JSON is the PR-acceptance artifact for the engine: the
gcc rows must show >=1.5x and the overall aggregate >=1.3x. ``--check``
turns those thresholds into a hard exit code for local verification;
CI instead consumes the speedups through
``check_perf_regression.py`` (warn-only, per-row), because absolute
thresholds on shared runners flake while the interleaved ratio only
drifts when the engine itself regresses.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf_misschain.py --passes 3
    PYTHONPATH=src python benchmarks/perf_misschain.py --check
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

import perf_common  # noqa: E402

RESULTS = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_misschain.json"
)

#: Rows the engine was built for; --check holds these to >=1.5x.
GCC_ROWS = ("picl/gcc", "ideal/gcc")
GCC_SPEEDUP = 1.5
OVERALL_SPEEDUP = 1.3


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--passes", type=int, default=3,
        help="interleaved passes per row, best kept per mode (default 3)",
    )
    parser.add_argument(
        "--output", default=RESULTS,
        help="where to write BENCH_misschain.json",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the gcc rows reach %.1fx and the "
        "overall aggregate %.1fx" % (GCC_SPEEDUP, OVERALL_SPEEDUP),
    )
    args = parser.parse_args(argv)

    # Time real simulation work, not result-cache reads.
    os.environ.setdefault("REPRO_NO_CACHE", "1")

    measurements, overall = perf_common.measure_misschain(passes=args.passes)
    print("%-14s %12s %12s %9s" % (
        "row", "scalar r/s", "batched r/s", "speedup"))
    for m in measurements:
        print("%-14s %12.0f %12.0f %8.2fx" % (
            m["label"],
            m["scalar_refs_per_sec"],
            m["batched_refs_per_sec"],
            m["speedup"],
        ))
    print("%-14s %12.0f %12.0f %8.2fx" % (
        "overall",
        overall["scalar_refs_per_sec"],
        overall["batched_refs_per_sec"],
        overall["speedup"],
    ))

    perf_common.write_bench_json(
        args.output,
        perf_common.misschain_payload(
            measurements,
            overall,
            note="%s; perf_misschain passes=%d"
            % (perf_common.MISSCHAIN_PROTOCOL, args.passes),
        ),
    )
    print("wrote %s" % args.output)

    if args.check:
        failures = []
        by_label = {m["label"]: m for m in measurements}
        for label in GCC_ROWS:
            speedup = by_label[label]["speedup"]
            if speedup < GCC_SPEEDUP:
                failures.append(
                    "%s: %.2fx < %.1fx" % (label, speedup, GCC_SPEEDUP)
                )
        if overall["speedup"] < OVERALL_SPEEDUP:
            failures.append(
                "overall: %.2fx < %.1fx"
                % (overall["speedup"], OVERALL_SPEEDUP)
            )
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        print(
            "OK: gcc rows >= %.1fx, overall >= %.1fx"
            % (GCC_SPEEDUP, OVERALL_SPEEDUP)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
