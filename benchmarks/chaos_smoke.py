"""CI smoke for the remote-worker fleet: chaos vs. bit-identity.

One gating script, three phases:

1. **Serial reference** — ``repro fig09 --preset ci`` with the cache
   off: the ground truth every distributed configuration must reproduce
   byte-for-byte.
2. **Zero-worker degradation** — a fresh daemon with *no* registered
   workers serves the figure purely from its local thread-pool path;
   output must be byte-identical to serial (the graceful-degradation
   guarantee).
3. **3-worker fleet under seeded chaos** — a fresh daemon plus three
   ``repro worker`` processes, each dealt a deterministic fault schedule
   (:class:`repro.fault.chaos.ChaosPlan.seeded`):

   * worker-1: SIGKILLs itself mid-unit (a supervisor restarts it clean);
   * worker-2: freezes heartbeats past the (shortened) lease, then a
     late frame, plus a dropped/truncated result frame;
   * worker-3: garbles a result frame, then partitions just before a
     delivery and pushes the result under its dead identity.

   The figure must still print byte-identical to serial, and the durable
   event log must show **exactly one accepted execution per point
   digest** plus positive evidence that each chaos path actually ran
   (worker_lost, worker_expired, protocol_error, requeue).

Run from the repository root:

    PYTHONPATH=src python benchmarks/chaos_smoke.py [seed]
"""

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fault.chaos import ChaosPlan  # noqa: E402
from repro.service.client import ServiceClient, wait_until_ready  # noqa: E402
from repro.service.events import (  # noqa: E402
    executions_per_digest,
    read_events,
)

FIGURE_ARGS = ["fig09", "--preset", "ci"]

#: Shortened lease so freeze-driven expiry lands while the sweep is
#: still running (default 15 s would usually outlive a ci figure).
CHAOS_LEASE = "2.0"


def log(message):
    print("chaos_smoke: %s" % message, flush=True)


def fail(message):
    print("chaos_smoke: FAIL: %s" % message, file=sys.stderr, flush=True)
    sys.exit(1)


def run_cli(args, env, timeout=900):
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=timeout,
    )
    if proc.returncode != 0:
        fail(
            "repro %s exited %d\n%s"
            % (" ".join(args), proc.returncode, proc.stderr.decode())
        )
    return proc.stdout


class WorkerSupervisor:
    """Run one ``repro worker`` subprocess; restart it clean if killed.

    The restart models an operator (or systemd) bringing a crashed host
    back: the replacement runs with *no* chaos so the fleet converges.
    """

    def __init__(self, name, sock, env, chaos_spec):
        self.name = name
        self.sock = sock
        self.env = dict(env)
        if chaos_spec:
            self.env["REPRO_CHAOS"] = chaos_spec
        self.proc = None
        self.restarts = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._supervise, daemon=True)

    def _spawn(self, chaos):
        env = dict(self.env)
        if not chaos:
            env.pop("REPRO_CHAOS", None)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--socket", self.sock, "--name", self.name,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def start(self):
        self.proc = self._spawn(chaos=True)
        self._thread.start()
        return self

    def _supervise(self):
        while not self._stop.is_set():
            proc = self.proc
            if proc is not None and proc.poll() is not None:
                if self._stop.is_set():
                    return
                self.restarts += 1
                log(
                    "worker %s exited %s; restarting clean (restart #%d)"
                    % (self.name, proc.returncode, self.restarts)
                )
                self.proc = self._spawn(chaos=False)
            time.sleep(0.1)

    def stop(self):
        self._stop.set()
        proc = self.proc
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()


def assert_exactly_once(events_path, label):
    counts = executions_per_digest(read_events(events_path))
    if not counts:
        fail("%s: event log records no completed executions" % label)
    duplicated = {d: c for d, c in counts.items() if c != 1}
    if duplicated:
        fail(
            "%s: digests not executed exactly once: %r" % (label, duplicated)
        )
    return counts


def main():
    seed = sys.argv[1] if len(sys.argv) > 1 else "picl-chaos-1"
    home = tempfile.mkdtemp(prefix="rchaos-", dir="/tmp")

    base_env = dict(os.environ)
    base_env.setdefault("PYTHONPATH", "src")

    serial_env = dict(base_env)
    serial_env["REPRO_NO_CACHE"] = "1"

    daemon = None
    supervisors = []
    sock = None

    def start_daemon(tag, jobs=2, lease=None):
        spool = os.path.join(home, "spool-%s" % tag)
        sock = os.path.join(home, "%s.sock" % tag)
        env = dict(base_env)
        env["REPRO_NO_CACHE"] = ""
        env["REPRO_CACHE_DIR"] = os.path.join(home, "cache-%s" % tag)
        if lease is not None:
            env["REPRO_LEASE"] = lease
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--spool", spool, "--socket", sock, "--jobs", str(jobs),
            ],
            env=env,
        )
        wait_until_ready(socket_path=sock, timeout=60)
        return proc, sock, env, os.path.join(spool, "events.jsonl")

    def stop_daemon(proc, sock):
        if proc is not None and proc.poll() is None:
            try:
                with ServiceClient(socket_path=sock) as client:
                    client.shutdown()
                proc.wait(timeout=30)
            except Exception:
                proc.kill()
                proc.wait()

    try:
        # Phase 1: the serial ground truth.
        log("phase 1: serial reference (repro %s)" % " ".join(FIGURE_ARGS))
        serial = run_cli(FIGURE_ARGS + ["--jobs", "2"], serial_env)

        # Phase 2: zero workers — the daemon must degrade to the local
        # pool bit-identically.
        log("phase 2: zero-worker daemon (local-pool degradation)")
        daemon, sock, env, events_path = start_daemon("local")
        output = run_cli(["submit"] + FIGURE_ARGS + ["--socket", sock], env)
        if output != serial:
            fail("zero-worker daemon output differs from the serial run")
        counts = assert_exactly_once(events_path, "zero-worker")
        records = read_events(events_path)
        if any(r["event"] == "assign" for r in records):
            fail("zero-worker daemon somehow assigned to a fleet")
        log(
            "zero-worker daemon byte-identical to serial "
            "(%d digests, local pool only)" % len(counts)
        )
        stop_daemon(daemon, sock)
        daemon = None

        # Phase 3: a 3-worker fleet under seeded chaos.
        log("phase 3: 3-worker fleet under chaos (seed %r)" % seed)
        daemon, sock, env, events_path = start_daemon(
            "fleet", jobs=2, lease=CHAOS_LEASE
        )
        worker_env = dict(env)
        worker_env["REPRO_LEASE"] = CHAOS_LEASE
        # Deal each worker a deterministic schedule from the seed; the
        # occurrences are low so every fault lands inside a ci sweep.
        plans = {
            "chaos-w1": ChaosPlan.seeded(seed + "|w1", ["kill"], hi=3),
            "chaos-w2": ChaosPlan.seeded(seed + "|w2", ["freeze", "drop"], hi=3),
            "chaos-w3": ChaosPlan.seeded(
                seed + "|w3", ["garble", "partition"], hi=3
            ),
        }
        for name, plan in sorted(plans.items()):
            log("  %s: %s" % (name, plan.describe()))
            supervisors.append(
                WorkerSupervisor(name, sock, worker_env, plan.to_spec()).start()
            )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with ServiceClient(socket_path=sock) as client:
                live = client.status()["workers"]["live"]
            if live >= 3:
                break
            time.sleep(0.1)
        else:
            fail("fleet never reached 3 live workers")
        log("  3 workers registered; submitting under chaos")

        output = run_cli(
            ["submit"] + FIGURE_ARGS + ["--socket", sock], env, timeout=1200
        )
        if output != serial:
            fail("chaos-fleet output differs from the serial run")
        counts = assert_exactly_once(events_path, "chaos-fleet")
        log(
            "chaos fleet byte-identical to serial; %d digests each "
            "accepted exactly once" % len(counts)
        )

        # Positive evidence every chaos path actually executed.
        records = read_events(events_path)
        event_counts = {}
        for record in records:
            event_counts[record["event"]] = (
                event_counts.get(record["event"], 0) + 1
            )
        if not event_counts.get("assign"):
            fail("fleet never received an assignment")
        evidence = {
            # kill (connection died) / garble / drop (framing broken).
            "worker_lost": "a worker connection was never lost",
            # freeze: the lease lapsed while the connection stayed up.
            "worker_expired": "no lease ever expired (freeze did not land)",
            # garble/drop: the daemon saw a corrupt frame.
            "protocol_error": "no corrupt frame ever reached the daemon",
            # every failure path funnels into requeue.
            "requeue": "no unit was ever requeued",
        }
        for event, message in sorted(evidence.items()):
            if not event_counts.get(event):
                fail("chaos evidence missing: %s" % message)
        killed = [s for s in supervisors if s.restarts]
        if not killed:
            fail("chaos kill never fired (no worker was restarted)")
        log(
            "chaos evidence: %s; %d worker restart(s)"
            % (
                ", ".join(
                    "%s=%d" % (event, event_counts[event])
                    for event in sorted(evidence)
                ),
                sum(s.restarts for s in killed),
            )
        )
        stale = event_counts.get("stale_result", 0)
        if stale:
            log("zombie deliveries discarded: %d" % stale)
        log("OK")
        return 0
    finally:
        for supervisor in supervisors:
            supervisor.stop()
        if daemon is not None:
            stop_daemon(daemon, sock)
        shutil.rmtree(home, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
