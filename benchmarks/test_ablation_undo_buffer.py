"""Ablation: on-chip undo buffer size.

The paper sizes the buffer at 2 KB / 32 entries "to match the NVM row
buffers"; smaller buffers flush sub-row bursts more often, larger ones
add little ("performance degradation ... can occur with a very large
on-chip undo buffer, but it is minimal at 2KB").
"""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.presets import get_preset


def test_ablation_undo_buffer(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, ablations.sweep_undo_buffer, preset)
    archive(
        "ablation_undo_buffer",
        "Ablation: PiCL overhead and flush count vs undo-buffer entries "
        "(preset=%s)" % preset.name,
        ablations.format_sweep(sweep, "overhead", "entries", "x")
        + "\n\nBuffer flushes:\n"
        + ablations.format_sweep(sweep, "buffer_flushes", "entries", "count"),
    )
    sizes = sorted(sweep)
    # Smaller buffers flush more often.
    for bench_name in sweep[sizes[0]]:
        small = sweep[sizes[0]][bench_name]["buffer_flushes"]
        large = sweep[sizes[-1]][bench_name]["buffer_flushes"]
        assert small > large, bench_name
    # Performance stays unharmed across the whole range (coalescing keeps
    # every flush sequential even when small).
    for size in sizes:
        for bench_name, row in sweep[size].items():
            assert row["overhead"] < 1.12, (size, bench_name)
