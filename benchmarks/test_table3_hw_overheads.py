"""Table III: hardware overheads (analytic storage model).

Shape criteria (paper): PiCL's added state is small — EID arrays cost a
few percent of BRAM, total logic under 1% of LUTs — and the LLC carries
most of the addition (four EID tags per 64 B line).
"""

from conftest import run_once

from repro.experiments import table3


def test_table3_hw_overheads(benchmark, archive):
    rows = run_once(benchmark, table3.run)
    archive(
        "table3_hw_overheads",
        "Table III: PiCL hardware overhead (analytic storage model, "
        "Genesys2 / Kintex-7 325T)",
        table3.format_result(rows),
    )
    total = table3.total_bits(rows)
    # The whole addition is small: under 2% of the FPGA's BRAM bits.
    fpga_bits = table3.FPGA_BRAM36 * table3.BRAM36_BITS
    assert total / fpga_bits < 0.02
    # The LLC EID array dominates the cache-side storage, as in the paper
    # ("the LLC maintains four EID values per 64-byte cache [line]").
    by_name = {row.component: row.bits for row in rows}
    llc_bits = by_name["LLC EID array (4 tags / 64B line)"]
    l2_bits = by_name["L2 EID array (4b / 16B line)"]
    assert llc_bits > l2_bits
    # The write-through L1 needs nothing.
    assert by_name["L1 (write-through, untouched)"] == 0
    # Undo buffer is the largest single controller structure.
    assert by_name["Undo buffer (2KB, double-buffered)"] >= 32 * 1024
