"""Measure the horizon-batched multi-core loop and write BENCH_multicore.json.

Runs the eight-core fig10 matrix (``perf_common.make_multicore_rows``:
every Table V mix under picl plus journaling/thynvm variants of W2)
with ``REPRO_VECTOR=0`` and ``=1`` strictly interleaved, keeping the
fastest pass per mode, and writes
``benchmarks/results/BENCH_multicore.json``.

The committed JSON is the PR-acceptance artifact for the multi-core
interpreter; the headline statistic is ``speedup_geomean`` in
``overall`` (the summed-time ratio overweights the slowest mixes).
``--check`` holds the geomean to a floor for local verification; CI
instead consumes the per-row speedups through
``check_perf_regression.py`` (warn-only), because absolute thresholds
on shared runners flake while the interleaved ratio only drifts when
the interpreter itself regresses.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf_multicore.py --passes 3
    PYTHONPATH=src python benchmarks/perf_multicore.py --check
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

import perf_common  # noqa: E402

RESULTS = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_multicore.json"
)

#: Floor for --check: the geometric mean of per-row speedups. The
#: eight-core mixes run 74-78% L1 hit rates (shared-LLC
#: back-invalidations), so the heap turns average only 2.5-4.3
#: references and the batched loop's headroom is far below the
#: single-core matrices' 1.6-1.7x — the committed artifact reads
#: ~1.05x geomean. The floor therefore asserts no NET regression (the
#: batched loop must never lose to the scalar heap loop overall), not
#: a speedup target; see benchmarks/README.md for the breakdown.
GEOMEAN_SPEEDUP = 1.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--passes", type=int, default=3,
        help="interleaved passes per row, best kept per mode (default 3)",
    )
    parser.add_argument(
        "--output", default=RESULTS,
        help="where to write BENCH_multicore.json",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the per-row geomean reaches %.1fx"
        % GEOMEAN_SPEEDUP,
    )
    args = parser.parse_args(argv)

    # Time real simulation work, not result-cache reads.
    os.environ.setdefault("REPRO_NO_CACHE", "1")

    measurements, overall = perf_common.measure_multicore(passes=args.passes)
    print("%-14s %12s %12s %9s" % (
        "row", "scalar r/s", "batched r/s", "speedup"))
    for m in measurements:
        print("%-14s %12.0f %12.0f %8.2fx" % (
            m["label"],
            m["scalar_refs_per_sec"],
            m["batched_refs_per_sec"],
            m["speedup"],
        ))
    print("%-14s %12.0f %12.0f %8.2fx" % (
        "overall",
        overall["scalar_refs_per_sec"],
        overall["batched_refs_per_sec"],
        overall["speedup"],
    ))
    print("%-14s %34s %8.2fx" % ("geomean", "", overall["speedup_geomean"]))

    perf_common.write_bench_json(
        args.output,
        perf_common.multicore_payload(
            measurements,
            overall,
            note="%s; perf_multicore passes=%d"
            % (perf_common.MULTICORE_PROTOCOL, args.passes),
        ),
    )
    print("wrote %s" % args.output)

    if args.check:
        geomean = overall["speedup_geomean"]
        if geomean < GEOMEAN_SPEEDUP:
            print("FAIL: geomean %.2fx < %.1fx" % (geomean, GEOMEAN_SPEEDUP))
            return 1
        print("OK: geomean %.2fx >= %.1fx" % (geomean, GEOMEAN_SPEEDUP))
    return 0


if __name__ == "__main__":
    sys.exit(main())
