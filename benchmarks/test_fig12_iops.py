"""Fig 12: NVM operations, split sequential/random/write-back.

Shape criteria (paper): checkpointing can add 2x-6x the baseline
write-back traffic; FRM has the highest random IOPS (read-log-modify per
write-back); PiCL adds almost nothing — its logging is sequential and its
ACS in-place writes are minimal.
"""

from conftest import run_once

from repro.experiments import fig12
from repro.experiments.presets import get_preset


def total_extra(split):
    """Operations beyond the scheme's own write-backs."""
    return split["sequential"] + split["random"]


def test_fig12_iops(benchmark, archive):
    preset = get_preset()
    breakdown = run_once(benchmark, fig12.run, preset)
    archive(
        "fig12_iops",
        "Fig 12: NVM ops normalized to Ideal's write-backs (preset=%s; "
        "I/J/S/F/P per benchmark)" % preset.name,
        fig12.format_result(breakdown),
    )
    # Benchmarks whose working set fits the scaled caches never evict
    # under Ideal NVM, making "normalized to Ideal's write-backs"
    # degenerate (division by ~zero); assert ratios only where the
    # baseline actually wrote back.
    meaningful = {
        name: row
        for name, row in breakdown.items()
        if row["ideal"]["writeback"] >= 1.0
    }
    assert len(meaningful) >= len(breakdown) * 0.6

    for bench_name, row in breakdown.items():
        # Ideal is pure write-backs by construction.
        assert row["ideal"]["random"] == 0
        assert row["ideal"]["sequential"] == 0
        # FRM's read-log-modify gives it the highest random IOPS among
        # the undo schemes.
        assert row["frm"]["random"] >= row["picl"]["random"], bench_name

    for bench_name, row in meaningful.items():
        # PiCL adds only a trickle beyond the baseline write-backs.
        assert total_extra(row["picl"]) < 0.6, bench_name
        # PiCL's extra traffic is dominated by sequential log writes.
        assert row["picl"]["sequential"] >= row["picl"]["random"] * 0.5 or (
            row["picl"]["random"] < 0.2
        ), bench_name
        # Every scheme's in-place write-backs track the baseline's.
        assert row["picl"]["writeback"] <= 1.2, bench_name

    # Somewhere in the suite, prior work adds multiples of the baseline
    # traffic (the paper reports 2x-6x).
    worst_extra = max(
        total_extra(row[scheme])
        for row in meaningful.values()
        for scheme in ("journaling", "shadow", "frm")
    )
    assert worst_extra > 2.0
