"""Ablation: ACS-gap (deferred persistency vs bandwidth).

Deferring persistency lets ACS skip lines rewritten within the gap ("ACS
can be delayed by a few epochs to save even more bandwidth"), at the cost
of a recovery point that lags further behind.
"""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.presets import get_preset


def test_ablation_acs_gap(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, ablations.sweep_acs_gap, preset)
    archive(
        "ablation_acs_gap",
        "Ablation: PiCL overhead and ACS write volume vs ACS-gap "
        "(preset=%s)" % preset.name,
        ablations.format_sweep(sweep, "overhead", "acs_gap", "x")
        + "\n\nACS in-place writebacks:\n"
        + ablations.format_sweep(sweep, "acs_writebacks", "acs_gap", "ops"),
    )
    gaps = sorted(sweep)
    for gap in gaps:
        for bench_name, row in sweep[gap].items():
            # Gap 0 persists every epoch's whole write set in place —
            # heavier on bandwidth; any nonzero gap is near-free.
            limit = 1.6 if gap == 0 else 1.10
            assert row["overhead"] < limit, (gap, bench_name)
    # A larger gap never *increases* ACS write volume: lines rewritten
    # within the window are persisted once, not per epoch.
    for bench_name in sweep[gaps[0]]:
        first = sweep[gaps[0]][bench_name]["acs_writebacks"]
        last = sweep[gaps[-1]][bench_name]["acs_writebacks"]
        assert last <= first * 1.1, bench_name
