"""Fig 14: observed epoch length with a 500 M-instruction target.

Shape criteria (paper): only compute-bound workloads sustain the target
under Journaling/Shadow; elsewhere Journaling's effective epochs collapse
to a small fraction of the target and Shadow's to an intermediate one,
while PiCL (bounded only by a 1 GB log) sustains the target everywhere.
"""

from conftest import run_once

from repro.experiments import fig14
from repro.experiments.presets import get_preset
from repro.experiments.report import geomean

#: A representative subset (the full 29 at 500 M-instruction epochs is
#: disproportionately slow; the subset spans every workload category).
SUBSET = [
    "gamess",
    "povray",
    "hmmer",
    "gcc",
    "bzip2",
    "astar",
    "mcf",
    "lbm",
    "milc",
    "wrf",
]


def test_fig14_long_epochs(benchmark, archive):
    preset = get_preset()
    observed = run_once(benchmark, fig14.run, preset, benchmarks=SUBSET)
    archive(
        "fig14_long_epochs",
        "Fig 14: observed epoch length (M instr at paper scale) with a "
        "500M target (preset=%s, higher is better)" % preset.name,
        fig14.format_result(observed),
    )
    target = fig14.TARGET_INSTRUCTIONS
    # PiCL sustains the target wherever the (scaled) 1 GB log holds the
    # epoch's undo volume; even the heaviest streamers — whose synthetic
    # write sets are relatively larger than SPEC's — keep epochs within a
    # small factor of the target, not the order-of-magnitude collapse of
    # the redo schemes.
    for bench_name, row in observed.items():
        assert row["picl"] >= target * 0.25, bench_name
    sustained = sum(1 for row in observed.values() if row["picl"] >= target * 0.95)
    assert sustained >= len(observed) * 0.4
    # Compute-bound workloads sustain it under the redo schemes too.
    for bench_name in ("gamess", "povray"):
        assert observed[bench_name]["journaling"] >= target * 0.9
        assert observed[bench_name]["shadow"] >= target * 0.9
    # Write-heavy workloads collapse under Journaling, less under Shadow.
    for bench_name in ("astar", "mcf", "lbm"):
        assert observed[bench_name]["journaling"] < target / 4
        assert (
            observed[bench_name]["shadow"] > observed[bench_name]["journaling"]
        )
    j_gmean = geomean(row["journaling"] for row in observed.values())
    p_gmean = geomean(row["picl"] for row in observed.values())
    assert p_gmean > 3 * j_gmean
