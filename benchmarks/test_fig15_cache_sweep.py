"""Fig 15: sensitivity to LLC size.

Shape criteria (paper): flush-based schemes degrade as the cache (and so
the flush volume) grows; ThyNVM degrades fastest (redo-buffer pressure);
PiCL stays flat at ~1.0x across all sizes.
"""

from conftest import run_once

from repro.experiments import fig15
from repro.experiments.presets import get_preset


def test_fig15_cache_sweep(benchmark, archive):
    preset = get_preset()
    sweep = run_once(benchmark, fig15.run, preset)
    base_kb = preset.config().llc_size_per_core // 1024
    archive(
        "fig15_cache_sweep",
        "Fig 15: gmean normalized execution vs LLC size (preset=%s, lower "
        "is better)" % preset.name,
        fig15.format_result(sweep, base_kb),
    )
    multipliers = sorted(sweep)
    smallest, largest = multipliers[0], multipliers[-1]
    # PiCL is flat across cache sizes.
    for multiplier in multipliers:
        assert sweep[multiplier]["picl"] < 1.06
    # Synchronous-flush schemes get *worse* with bigger caches.
    assert sweep[largest]["frm"] > sweep[smallest]["frm"]
    # ThyNVM's overhead grows faster than FRM's (redo-buffer pressure).
    thynvm_growth = sweep[largest]["thynvm"] / sweep[smallest]["thynvm"]
    frm_growth = sweep[largest]["frm"] / sweep[smallest]["frm"]
    assert thynvm_growth > frm_growth * 0.9
    # At the largest cache, every prior scheme is measurably worse than PiCL.
    for scheme in ("journaling", "shadow", "frm", "thynvm"):
        assert sweep[largest][scheme] > sweep[largest]["picl"] + 0.05
