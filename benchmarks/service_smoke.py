"""CI smoke for the sweep service: concurrency, crash, cache, identity.

One gating script, four phases:

1. **Serial reference** — ``repro fig09 --preset ci`` with the cache
   off: the ground truth the daemon must reproduce byte-for-byte.
2. **Concurrent clients + worker SIGKILL** — a daemon is started, two
   ``repro submit fig09 --preset ci`` clients race the same batch, and
   one isolated worker process is SIGKILLed mid-batch. Both clients
   must still print output byte-identical to the serial run, and the
   daemon's event log must show **exactly one completed execution per
   point digest** — the dedupe and retry guarantees, asserted from the
   durable record, not from exit codes.
3. **Warm resubmit** — a third client resubmits the figure; every point
   must be answered from the journal with zero new executions, fast.
4. **Daemon SIGKILL + restart** — the daemon itself is killed without
   ceremony and restarted on the same spool; a resubmission must again
   be byte-identical, with no digest ever executed twice across both
   daemon lifetimes.

Run from the repository root:

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import ServiceClient, wait_until_ready  # noqa: E402
from repro.service.events import (  # noqa: E402
    executions_per_digest,
    read_events,
)

FIGURE_ARGS = ["fig09", "--preset", "ci"]


def log(message):
    print("service_smoke: %s" % message, flush=True)


def fail(message):
    print("service_smoke: FAIL: %s" % message, file=sys.stderr, flush=True)
    sys.exit(1)


def run_cli(args, env, timeout=600):
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=timeout,
    )
    if proc.returncode != 0:
        fail(
            "repro %s exited %d\n%s"
            % (" ".join(args), proc.returncode, proc.stderr.decode())
        )
    return proc.stdout


def child_pids(pid):
    """Direct children of ``pid`` via /proc (the isolated workers)."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open("/proc/%s/stat" % entry) as handle:
                fields = handle.read().split()
            if int(fields[3]) == pid:
                children.append(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return children


def main():
    home = tempfile.mkdtemp(prefix="rsmoke-", dir="/tmp")
    spool = os.path.join(home, "spool")
    sock = os.path.join(home, "s.sock")
    events_path = os.path.join(spool, "events.jsonl")

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["REPRO_NO_CACHE"] = ""
    env["REPRO_CACHE_DIR"] = os.path.join(home, "cache")

    serial_env = dict(env)
    serial_env["REPRO_NO_CACHE"] = "1"

    daemon = None

    def start_daemon():
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--spool", spool, "--socket", sock, "--jobs", "2",
            ],
            env=env,
        )
        wait_until_ready(socket_path=sock, timeout=60)
        return proc

    try:
        # Phase 1: the serial ground truth.
        log("phase 1: serial reference (repro %s)" % " ".join(FIGURE_ARGS))
        serial = run_cli(FIGURE_ARGS + ["--jobs", "2"], serial_env)

        # Phase 2: two concurrent clients, one worker SIGKILLed.
        log("phase 2: daemon + 2 concurrent clients + worker SIGKILL")
        daemon = start_daemon()
        outputs = {}

        def submit(name):
            outputs[name] = run_cli(
                ["submit"] + FIGURE_ARGS + ["--socket", sock], env
            )

        threads = [
            threading.Thread(target=submit, args=(name,))
            for name in ("client-a", "client-b")
        ]
        for thread in threads:
            thread.start()

        # Wait for a worker process to exist, then SIGKILL it mid-batch.
        killed = None
        deadline = time.monotonic() + 120
        while killed is None and time.monotonic() < deadline:
            workers = child_pids(daemon.pid)
            if workers:
                killed = workers[0]
                os.kill(killed, signal.SIGKILL)
                log("SIGKILLed worker pid %d" % killed)
            else:
                time.sleep(0.05)
        if killed is None:
            fail("never saw an isolated worker process to kill")

        for thread in threads:
            thread.join(timeout=600)
            if thread.is_alive():
                fail("a submit client hung")

        for name, output in sorted(outputs.items()):
            if output != serial:
                fail("%s output differs from the serial run" % name)
        log("both concurrent clients byte-identical to serial")

        counts = executions_per_digest(read_events(events_path))
        if not counts:
            fail("event log records no completed executions")
        duplicated = {d: c for d, c in counts.items() if c != 1}
        if duplicated:
            fail("digests not executed exactly once: %r" % duplicated)
        log(
            "dedupe held: %d digests, every one executed exactly once "
            "(worker kill included)" % len(counts)
        )

        # Phase 3: warm resubmit — journal-only, fast.
        log("phase 3: warm resubmit")
        t0 = time.monotonic()
        warm = run_cli(["submit"] + FIGURE_ARGS + ["--socket", sock], env)
        elapsed = time.monotonic() - t0
        if warm != serial:
            fail("warm resubmit output differs from the serial run")
        after = executions_per_digest(read_events(events_path))
        if after != counts:
            fail("warm resubmit triggered new executions")
        log("warm resubmit byte-identical, 0 new executions, %.2fs" % elapsed)
        if elapsed > 30:
            fail("warm resubmit took %.2fs (expected ~1s)" % elapsed)

        # Phase 4: SIGKILL the daemon, restart on the same spool.
        log("phase 4: daemon SIGKILL + restart on the same spool")
        daemon.kill()
        daemon.wait()
        daemon = start_daemon()
        recovered = run_cli(["submit"] + FIGURE_ARGS + ["--socket", sock], env)
        if recovered != serial:
            fail("post-restart resubmit differs from the serial run")
        final = executions_per_digest(read_events(events_path))
        duplicated = {d: c for d, c in final.items() if c > 1}
        if duplicated:
            fail("restart re-executed digests: %r" % duplicated)
        log("restarted daemon byte-identical, no digest executed twice")
        log("OK")
        return 0
    finally:
        if daemon is not None and daemon.poll() is None:
            try:
                with ServiceClient(socket_path=sock) as client:
                    client.shutdown()
                daemon.wait(timeout=30)
            except Exception:
                daemon.kill()
                daemon.wait()
        shutil.rmtree(home, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
