"""Recovery latency & availability study (paper §IV-C).

Shape criteria: a larger ACS-gap keeps more live undo entries (longer
recovery scans, "lengthened by a few multiples"), yet availability at a
one-day MTBF stays effectively flat — so PiCL's trade of recovery latency
for runtime overhead is strictly worth it.
"""

from conftest import run_once

from repro.experiments import recovery_study
from repro.experiments.presets import get_preset


def test_recovery_study(benchmark, archive):
    preset = get_preset()
    results = run_once(benchmark, recovery_study.measure, preset)
    archive(
        "recovery_study",
        "Recovery latency & availability vs ACS-gap (preset=%s, one-day "
        "MTBF)" % preset.name,
        recovery_study.format_result(results),
    )
    gaps = sorted(results)
    # More outstanding epochs -> more live entries to scan.
    assert (
        results[gaps[-1]]["recovery_entries"]
        >= results[gaps[0]]["recovery_entries"]
    )
    # Availability stays effectively flat across the whole range.
    for gap in gaps:
        assert results[gap]["availability"] > 0.999, gap
    # Effective throughput is within a whisker of a perfect system.
    for gap in gaps:
        if gap >= 1:
            assert results[gap]["effective_throughput"] > 0.9, gap
