"""Fig 13: PiCL undo-log size for eight epochs.

Shape criteria (paper): compute-bound workloads log a trickle; the
heaviest streamers stay "within a few hundreds of megabytes, well within
the capacity of NVM storages."
"""

from conftest import run_once

from repro.common.units import GB
from repro.experiments import fig13
from repro.experiments.presets import get_preset


def test_fig13_log_size(benchmark, archive):
    preset = get_preset()
    log_mb = run_once(benchmark, fig13.run, preset)
    archive(
        "fig13_log_size",
        "Fig 13: PiCL undo log size for 8 epochs (preset=%s; model scale "
        "and linear extrapolation)" % preset.name,
        fig13.format_result(log_mb),
    )
    extrapolated = {name: mb for name, (_raw, mb) in log_mb.items()}
    # Compute-bound workloads log orders of magnitude less than streamers.
    for light in ("gamess", "povray"):
        for heavy in ("lbm", "GemsFDTD", "milc"):
            assert extrapolated[light] < extrapolated[heavy] / 20
    # Even the heaviest logger stays within NVM capacities (< 1 GB/8 epochs).
    assert max(extrapolated.values()) < GB / (1024 * 1024)
    # Everything logs something: crash consistency is never free.
    assert min(raw for raw, _mb in log_mb.values()) > 0
