"""CI throughput check: warn (never fail) on large refs/sec drops.

Runs the shared throughput rows (``perf_common.make_rows``), writes a
fresh ``BENCH_scan.json``, and compares each row's refs/sec against the
committed ``benchmarks/results/BENCH_scan.json``. It then runs the
scalar-vs-columnar matrix (``perf_common.make_columnar_rows``,
``REPRO_VECTOR=0`` vs ``=1`` interleaved), writes a fresh
``BENCH_columnar.json``, and warns when a row's columnar *speedup*
falls materially below the committed one — the interleaved ratio, not
absolute refs/sec, is the only number comparable across machines.
It runs the batched miss-chain matrix the same way
(``perf_common.make_misschain_rows``, ``REPRO_BATCH_MISS=0`` vs ``=1``
under the columnar interpreter) against ``BENCH_misschain.json``, and
the eight-core fig10 matrix (``perf_common.make_multicore_rows``,
``REPRO_VECTOR=0`` vs ``=1``) against ``BENCH_multicore.json``. All
comparisons are per row, never only the aggregate: parity rows (gcc
under the columnar check, hmmer under the miss-chain check, the
hit-dominated mixes under the multi-core check) would otherwise mask a
regression on the rows each engine exists for. After every matrix it
rolls the ``overall`` block of each ``BENCH_*.json`` into one
``BENCH_summary.json``, so the uploaded artifact has a single
diffable index of every protocol's headline numbers. A
drop beyond the threshold (default 20%) prints a warning — in
GitHub-annotation form when running under Actions — but the exit code
stays 0.

Non-gating on purpose: the committed baseline was measured on one
machine and CI runners are slower, noisier, and heterogeneous, so an
absolute refs/sec gate would flake constantly. The warning makes a
regression visible in the log and the uploaded JSON makes it diffable;
a human decides whether it is real. Re-measure locally with
``pytest benchmarks/test_perf_throughput.py`` (best-of-2) before
trusting any single CI number.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py
    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --passes 2 --threshold 0.1
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

import perf_common  # noqa: E402

RESULTS = os.path.join(os.path.dirname(__file__), "results", "BENCH_scan.json")
COLUMNAR = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_columnar.json"
)
MISSCHAIN = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_misschain.json"
)
MULTICORE = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_multicore.json"
)
SUMMARY = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_summary.json"
)


def warn(message):
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print("::warning title=throughput regression::%s" % message)
    else:
        print("WARNING: %s" % message)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--passes", type=int, default=1,
        help="passes per row, best kept (default 1: CI is about drift, "
        "not precision)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="warn when a row's refs/sec drops by more than this fraction "
        "of the committed baseline (default 0.2)",
    )
    parser.add_argument(
        "--baseline", default=RESULTS,
        help="committed BENCH_scan.json to compare against",
    )
    parser.add_argument(
        "--output", default=RESULTS,
        help="where to write this run's BENCH_scan.json",
    )
    parser.add_argument(
        "--columnar-baseline", default=COLUMNAR,
        help="committed BENCH_columnar.json to compare against",
    )
    parser.add_argument(
        "--columnar-output", default=COLUMNAR,
        help="where to write this run's BENCH_columnar.json",
    )
    parser.add_argument(
        "--skip-columnar", action="store_true",
        help="skip the REPRO_VECTOR matrix",
    )
    parser.add_argument(
        "--misschain-baseline", default=MISSCHAIN,
        help="committed BENCH_misschain.json to compare against",
    )
    parser.add_argument(
        "--misschain-output", default=MISSCHAIN,
        help="where to write this run's BENCH_misschain.json",
    )
    parser.add_argument(
        "--skip-misschain", action="store_true",
        help="skip the REPRO_BATCH_MISS matrix",
    )
    parser.add_argument(
        "--multicore-baseline", default=MULTICORE,
        help="committed BENCH_multicore.json to compare against",
    )
    parser.add_argument(
        "--multicore-output", default=MULTICORE,
        help="where to write this run's BENCH_multicore.json",
    )
    parser.add_argument(
        "--skip-multicore", action="store_true",
        help="skip the eight-core REPRO_VECTOR matrix",
    )
    parser.add_argument(
        "--summary-output", default=SUMMARY,
        help="where to write the BENCH_summary.json index",
    )
    parser.add_argument(
        "--skip-distributed", action="store_true",
        help="skip the distributed-vs-local fig09 wall-clock check",
    )
    parser.add_argument(
        "--distributed-threshold", type=float, default=1.2,
        help="warn when the distributed fig09 wall-clock exceeds this "
        "multiple of the local-pool run (default 1.2)",
    )
    args = parser.parse_args(argv)

    # Time real simulation work, not result-cache reads.
    os.environ.setdefault("REPRO_NO_CACHE", "1")

    baseline = None
    if os.path.exists(args.baseline):
        baseline = perf_common.load_bench_json(args.baseline)
        if baseline.get("protocol") != perf_common.PROTOCOL:
            print(
                "baseline protocol %r != %r; skipping comparison"
                % (baseline.get("protocol"), perf_common.PROTOCOL)
            )
            baseline = None
    else:
        print("no committed baseline at %s; recording only" % args.baseline)

    measurements, overall = perf_common.measure(passes=args.passes)
    print("%-14s %12s %12s" % ("row", "refs/sec", "vs-baseline"))
    regressions = 0
    for m in measurements:
        ratio = ""
        if baseline is not None:
            base = baseline["rows"].get(m["label"], {}).get("refs_per_sec")
            if base:
                ratio = "%.2fx" % (m["refs_per_sec"] / base)
                if m["refs_per_sec"] < base * (1.0 - args.threshold):
                    regressions += 1
                    warn(
                        "%s: %.0f refs/sec vs baseline %d (%.0f%% drop)"
                        % (
                            m["label"],
                            m["refs_per_sec"],
                            base,
                            100.0 * (1.0 - m["refs_per_sec"] / base),
                        )
                    )
        print("%-14s %12.0f %12s" % (m["label"], m["refs_per_sec"], ratio))
    print("%-14s %12.0f" % ("overall", overall))

    perf_common.write_bench_json(
        args.output,
        perf_common.bench_payload(
            measurements,
            overall,
            baseline=baseline.get("baseline") if baseline else None,
            note="%s; check_perf_regression passes=%d"
            % (perf_common.PROTOCOL, args.passes),
        ),
    )
    print("wrote %s" % args.output)

    if not args.skip_columnar:
        regressions += check_columnar(args)
    if not args.skip_misschain:
        regressions += check_misschain(args)
    if not args.skip_multicore:
        regressions += check_multicore(args)
    if not args.skip_distributed:
        regressions += check_distributed(args)

    write_summary(args.summary_output)

    if regressions:
        warn(
            "%d row(s) dropped >%.0f%% vs committed baseline — likely "
            "machine variance if isolated; investigate if it tracks a "
            "hot-path change" % (regressions, 100 * args.threshold)
        )
    return 0


def check_columnar(args):
    """Run the REPRO_VECTOR matrix and compare speedups, warn-only.

    Speedup (scalar time / columnar time, interleaved on this machine)
    is compared instead of refs/sec: it cancels the runner's absolute
    speed, so it is the one columnar number a heterogeneous CI fleet
    can meaningfully hold against a committed baseline.
    """
    baseline = None
    if os.path.exists(args.columnar_baseline):
        baseline = perf_common.load_bench_json(args.columnar_baseline)
        if baseline.get("protocol") != perf_common.COLUMNAR_PROTOCOL:
            print(
                "columnar baseline protocol %r != %r; skipping comparison"
                % (baseline.get("protocol"), perf_common.COLUMNAR_PROTOCOL)
            )
            baseline = None
    else:
        print(
            "no committed baseline at %s; recording only"
            % args.columnar_baseline
        )

    passes = max(2, args.passes)  # a ratio from single passes is all noise
    measurements, overall = perf_common.measure_columnar(passes=passes)
    print("%-14s %12s %12s %9s %12s" % (
        "row", "scalar r/s", "columnar r/s", "speedup", "vs-baseline"))
    regressions = 0
    for m in measurements:
        ratio = ""
        if baseline is not None:
            base = baseline["rows"].get(m["label"], {}).get("speedup")
            if base:
                ratio = "%.2fx" % (m["speedup"] / base)
                if m["speedup"] < base * (1.0 - args.threshold):
                    regressions += 1
                    warn(
                        "%s: columnar speedup %.2fx vs baseline %.2fx "
                        "(%.0f%% drop)"
                        % (
                            m["label"],
                            m["speedup"],
                            base,
                            100.0 * (1.0 - m["speedup"] / base),
                        )
                    )
        print(
            "%-14s %12.0f %12.0f %8.2fx %12s"
            % (
                m["label"],
                m["scalar_refs_per_sec"],
                m["columnar_refs_per_sec"],
                m["speedup"],
                ratio,
            )
        )
    print("%-14s %12.0f %12.0f %8.2fx" % (
        "overall",
        overall["scalar_refs_per_sec"],
        overall["columnar_refs_per_sec"],
        overall["speedup"],
    ))

    perf_common.write_bench_json(
        args.columnar_output,
        perf_common.columnar_payload(
            measurements,
            overall,
            note="%s; check_perf_regression passes=%d"
            % (perf_common.COLUMNAR_PROTOCOL, passes),
        ),
    )
    print("wrote %s" % args.columnar_output)
    return regressions


def check_misschain(args):
    """Run the REPRO_BATCH_MISS matrix and compare speedups, warn-only.

    Per-row speedups, like :func:`check_columnar` — the overall
    aggregate alone would let the hit-dominated hmmer rows (engine ~1.0x
    by design) mask a collapse on the gcc rows the engine exists for,
    exactly the masking failure the per-row columnar check closed.
    """
    baseline = None
    if os.path.exists(args.misschain_baseline):
        baseline = perf_common.load_bench_json(args.misschain_baseline)
        if baseline.get("protocol") != perf_common.MISSCHAIN_PROTOCOL:
            print(
                "misschain baseline protocol %r != %r; skipping comparison"
                % (baseline.get("protocol"), perf_common.MISSCHAIN_PROTOCOL)
            )
            baseline = None
    else:
        print(
            "no committed baseline at %s; recording only"
            % args.misschain_baseline
        )

    passes = max(2, args.passes)  # a ratio from single passes is all noise
    measurements, overall = perf_common.measure_misschain(passes=passes)
    print("%-14s %12s %12s %9s %12s" % (
        "row", "scalar r/s", "batched r/s", "speedup", "vs-baseline"))
    regressions = 0
    for m in measurements:
        ratio = ""
        if baseline is not None:
            base = baseline["rows"].get(m["label"], {}).get("speedup")
            if base:
                ratio = "%.2fx" % (m["speedup"] / base)
                if m["speedup"] < base * (1.0 - args.threshold):
                    regressions += 1
                    warn(
                        "%s: miss-chain speedup %.2fx vs baseline %.2fx "
                        "(%.0f%% drop)"
                        % (
                            m["label"],
                            m["speedup"],
                            base,
                            100.0 * (1.0 - m["speedup"] / base),
                        )
                    )
        print(
            "%-14s %12.0f %12.0f %8.2fx %12s"
            % (
                m["label"],
                m["scalar_refs_per_sec"],
                m["batched_refs_per_sec"],
                m["speedup"],
                ratio,
            )
        )
    print("%-14s %12.0f %12.0f %8.2fx" % (
        "overall",
        overall["scalar_refs_per_sec"],
        overall["batched_refs_per_sec"],
        overall["speedup"],
    ))

    perf_common.write_bench_json(
        args.misschain_output,
        perf_common.misschain_payload(
            measurements,
            overall,
            note="%s; check_perf_regression passes=%d"
            % (perf_common.MISSCHAIN_PROTOCOL, passes),
        ),
    )
    print("wrote %s" % args.misschain_output)
    return regressions


def check_multicore(args):
    """Run the eight-core REPRO_VECTOR matrix and compare, warn-only.

    Per-row speedups against the committed ``BENCH_multicore.json``,
    like :func:`check_misschain` — the hit-dominated mixes sit near
    parity by design (heap turns average only a few references there),
    so the aggregate alone would let them mask a collapse on the
    miss-heavy mixes the horizon-batched loop exists for. The geomean
    is printed for the log but the warnings are per row.
    """
    baseline = None
    if os.path.exists(args.multicore_baseline):
        baseline = perf_common.load_bench_json(args.multicore_baseline)
        if baseline.get("protocol") != perf_common.MULTICORE_PROTOCOL:
            print(
                "multicore baseline protocol %r != %r; skipping comparison"
                % (baseline.get("protocol"), perf_common.MULTICORE_PROTOCOL)
            )
            baseline = None
    else:
        print(
            "no committed baseline at %s; recording only"
            % args.multicore_baseline
        )

    passes = max(2, args.passes)  # a ratio from single passes is all noise
    measurements, overall = perf_common.measure_multicore(passes=passes)
    print("%-14s %12s %12s %9s %12s" % (
        "row", "scalar r/s", "batched r/s", "speedup", "vs-baseline"))
    regressions = 0
    for m in measurements:
        ratio = ""
        if baseline is not None:
            base = baseline["rows"].get(m["label"], {}).get("speedup")
            if base:
                ratio = "%.2fx" % (m["speedup"] / base)
                if m["speedup"] < base * (1.0 - args.threshold):
                    regressions += 1
                    warn(
                        "%s: multi-core speedup %.2fx vs baseline %.2fx "
                        "(%.0f%% drop)"
                        % (
                            m["label"],
                            m["speedup"],
                            base,
                            100.0 * (1.0 - m["speedup"] / base),
                        )
                    )
        print(
            "%-14s %12.0f %12.0f %8.2fx %12s"
            % (
                m["label"],
                m["scalar_refs_per_sec"],
                m["batched_refs_per_sec"],
                m["speedup"],
                ratio,
            )
        )
    print("%-14s %12.0f %12.0f %8.2fx" % (
        "overall",
        overall["scalar_refs_per_sec"],
        overall["batched_refs_per_sec"],
        overall["speedup"],
    ))
    print("%-14s %25s %8.2fx" % ("geomean", "", overall["speedup_geomean"]))

    perf_common.write_bench_json(
        args.multicore_output,
        perf_common.multicore_payload(
            measurements,
            overall,
            note="%s; check_perf_regression passes=%d"
            % (perf_common.MULTICORE_PROTOCOL, passes),
        ),
    )
    print("wrote %s" % args.multicore_output)
    return regressions


def write_summary(path):
    """Roll every ``BENCH_*.json`` overall block into one index file.

    The summary is regenerated from whatever result files exist on disk
    after the matrices ran (committed baselines for skipped matrices,
    fresh measurements otherwise), so it is always a complete, diffable
    snapshot: one entry per artifact with its protocol, note, and
    headline ``overall`` numbers, keyed by file stem and sorted for a
    stable diff.
    """
    results_dir = os.path.dirname(path)
    summary = {"protocol": "bench-summary-v1", "benches": {}}
    for name in sorted(os.listdir(results_dir)):
        if not name.startswith("BENCH_") or not name.endswith(".json"):
            continue
        if os.path.join(results_dir, name) == path:
            continue
        payload = perf_common.load_bench_json(
            os.path.join(results_dir, name)
        )
        stem = name[len("BENCH_"):-len(".json")]
        entry = {
            "protocol": payload.get("protocol"),
            "note": payload.get("note", ""),
            "rows": len(payload.get("rows", {})),
        }
        overall = payload.get("overall")
        if isinstance(overall, dict):
            entry["overall"] = overall
        elif overall is not None:
            entry["overall"] = {"refs_per_sec": overall}
        summary["benches"][stem] = entry
    perf_common.write_bench_json(path, summary)
    print("wrote %s" % path)


def check_distributed(args):
    """Time a fleet-served ci fig09 against the local-pool path, warn-only.

    The fleet must never make the common case slower: a 3-worker
    distributed run of the ci-preset figure should land within
    ``--distributed-threshold`` (default 1.2x) of the same daemon
    configuration with zero workers, where every unit runs on the local
    thread pool. Heartbeats, placement, and the extra serialize/ship hop
    are the overhead under test; anything past the threshold on a quiet
    machine means the fleet plumbing regressed. Warn-only for the same
    reason as the throughput rows: CI wall-clocks are noisy.
    """
    from repro.service.client import ServiceClient, wait_until_ready

    figure_args = ["fig09", "--preset", "ci"]
    home = tempfile.mkdtemp(prefix="rdist-", dir="/tmp")
    daemon = None
    workers = []
    sock = None

    def start_daemon(tag):
        spool = os.path.join(home, "spool-%s" % tag)
        sock = os.path.join(home, "%s.sock" % tag)
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", "src")
        # Time real execution on both sides: no result cache, and a
        # fresh spool so the second run's digests cannot join the first.
        env["REPRO_NO_CACHE"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--spool", spool, "--socket", sock, "--jobs", "2",
            ],
            env=env,
        )
        wait_until_ready(socket_path=sock, timeout=60)
        return proc, sock, env

    def stop_daemon(proc, sock):
        if proc is not None and proc.poll() is None:
            try:
                with ServiceClient(socket_path=sock) as client:
                    client.shutdown()
                proc.wait(timeout=30)
            except Exception:
                proc.kill()
                proc.wait()

    def timed_submit(sock, env):
        start = time.monotonic()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "submit"]
            + figure_args
            + ["--socket", sock],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            timeout=1200,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                "repro submit exited %d\n%s"
                % (proc.returncode, proc.stderr.decode())
            )
        return time.monotonic() - start

    try:
        daemon, sock, env = start_daemon("local")
        local = timed_submit(sock, env)
        stop_daemon(daemon, sock)
        daemon = None

        daemon, sock, env = start_daemon("fleet")
        for index in range(3):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--socket", sock, "--name", "perf-w%d" % index,
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with ServiceClient(socket_path=sock) as client:
                if client.status()["workers"]["live"] >= 3:
                    break
            time.sleep(0.1)
        else:
            raise RuntimeError("fleet never reached 3 live workers")
        distributed = timed_submit(sock, env)
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
                worker.wait()
        if daemon is not None:
            stop_daemon(daemon, sock)
        shutil.rmtree(home, ignore_errors=True)

    ratio = distributed / local if local else float("inf")
    print("%-14s %12s %12s %9s" % (
        "fig09 ci", "local-pool s", "3-worker s", "ratio"))
    print("%-14s %12.1f %12.1f %8.2fx" % ("wall-clock", local, distributed, ratio))
    if ratio > args.distributed_threshold:
        warn(
            "distributed fig09 wall-clock %.1fs is %.2fx the local-pool "
            "run (%.1fs); threshold %.2fx — fleet overhead regressed "
            "(or a noisy runner)"
            % (distributed, ratio, local, args.distributed_threshold)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
