"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment modules plus a few utilities:

.. code-block:: console

    $ python -m repro list                 # what can I run?
    $ python -m repro fig09 --preset quick # regenerate Fig 9's table
    $ python -m repro fig09 --jobs 4       # fan runs over 4 worker processes
    $ python -m repro calibrate            # workload-profile diagnostics
    $ python -m repro recovery             # recovery-latency/availability study

Runs are cached on disk (``.repro_cache/``; see repro.sim.parallel), so a
repeated figure at the same preset costs no simulation. ``--jobs``
defaults to the ``REPRO_JOBS`` environment variable, then 1; results are
bit-identical at any jobs count. ``--profile`` wraps the command in
cProfile and prints the 25 hottest functions by cumulative time.
"""

import argparse
import sys

from repro import __version__


def _experiment_commands():
    from repro.experiments import (
        calibrate,
        fig09,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        recovery_study,
        recovery_validation,
        table3,
    )

    return {
        "fault-sweep": (
            recovery_validation.main,
            "crash-injection recovery validation matrix",
        ),
        "fig09": (fig09.main, "single-core execution time (Fig 9)"),
        "fig10": (fig10.main, "8-core multiprogram mixes (Fig 10)"),
        "fig11": (fig11.main, "commits per epoch interval (Fig 11)"),
        "fig12": (fig12.main, "NVM operation breakdown (Fig 12)"),
        "fig13": (fig13.main, "undo log size (Fig 13)"),
        "fig14": (fig14.main, "very long epochs (Fig 14)"),
        "fig15": (fig15.main, "LLC size sensitivity (Fig 15)"),
        "fig16": (fig16.main, "NVM write-latency sensitivity (Fig 16)"),
        "table3": (table3.main, "hardware overheads (Table III)"),
        "calibrate": (calibrate.main, "workload-profile diagnostics"),
        "recovery": (recovery_study.main, "recovery latency & availability"),
    }


def build_parser():
    """Build the argparse parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PiCL reproduction (MICRO 2018) experiment runner",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available commands")
    for name, (_main, help_text) in _experiment_commands().items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--preset",
            default=None,
            help="system scale preset: ci, quick (default), or full",
        )
        sub.add_argument(
            "--jobs",
            default=None,
            help="worker processes for simulation points: a count, or "
            "'auto' for one per CPU (default: $REPRO_JOBS, then 1)",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="run under cProfile and print the top 25 functions "
            "by cumulative time (in-process runs only; use --jobs 1)",
        )
        sub.add_argument(
            "--verbose",
            action="store_true",
            help="print result-cache statistics (hits, misses, corrupt "
            "entries quarantined) after the command",
        )
        if name == "fault-sweep":
            sub.add_argument(
                "--full",
                action="store_true",
                help="run the widened crash matrix (more occurrences, "
                "boundary offsets, and corruption injectors)",
            )
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    argv = argv if argv is not None else sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = _experiment_commands()
    if args.command in (None, "list"):
        print("available commands:")
        for name, (_main, help_text) in sorted(commands.items()):
            print("  %-10s %s" % (name, help_text))
        print("  %-10s %s" % ("list", "this listing"))
        return 0
    command_main, _help = commands[args.command]
    command_args = [args.preset] if args.preset else []
    if getattr(args, "jobs", None):
        command_args += ["--jobs", args.jobs]
    if getattr(args, "full", False):
        command_args.append("--full")
    verbose = getattr(args, "verbose", False)
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            command_main(command_args)
        finally:
            profiler.disable()
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
            if verbose:
                _print_cache_stats()
        return 0
    try:
        command_main(command_args)
    finally:
        if verbose:
            _print_cache_stats()
    return 0


def _print_cache_stats():
    from repro.sim.parallel import ResultCache

    print(ResultCache.summary(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
