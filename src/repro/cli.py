"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment modules plus a few utilities:

.. code-block:: console

    $ python -m repro list                 # what can I run?
    $ python -m repro fig09 --preset quick # regenerate Fig 9's table
    $ python -m repro fig09 --jobs 4       # fan runs over 4 worker processes
    $ python -m repro calibrate            # workload-profile diagnostics
    $ python -m repro recovery             # recovery-latency/availability study

Runs are cached on disk (``.repro_cache/``; see repro.sim.parallel), so a
repeated figure at the same preset costs no simulation. ``--jobs``
defaults to the ``REPRO_JOBS`` environment variable, then 1; results are
bit-identical at any jobs count. ``--profile`` wraps the command in
cProfile and prints the 25 hottest functions by cumulative time.

The sweep service (see repro.service) gets three more commands:

.. code-block:: console

    $ python -m repro serve --jobs 4       # run the scheduler daemon
    $ python -m repro submit fig09 --preset ci   # batch a figure to it
    $ python -m repro status               # queues/events/cache snapshot
"""

import argparse
import sys

from repro import __version__


def _experiment_commands():
    from repro.experiments import (
        calibrate,
        fig09,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        recovery_study,
        recovery_validation,
        table3,
    )

    return {
        "fault-sweep": (
            recovery_validation.main,
            "crash-injection recovery validation matrix",
        ),
        "fig09": (fig09.main, "single-core execution time (Fig 9)"),
        "fig10": (fig10.main, "8-core multiprogram mixes (Fig 10)"),
        "fig11": (fig11.main, "commits per epoch interval (Fig 11)"),
        "fig12": (fig12.main, "NVM operation breakdown (Fig 12)"),
        "fig13": (fig13.main, "undo log size (Fig 13)"),
        "fig14": (fig14.main, "very long epochs (Fig 14)"),
        "fig15": (fig15.main, "LLC size sensitivity (Fig 15)"),
        "fig16": (fig16.main, "NVM write-latency sensitivity (Fig 16)"),
        "table3": (table3.main, "hardware overheads (Table III)"),
        "calibrate": (calibrate.main, "workload-profile diagnostics"),
        "recovery": (recovery_study.main, "recovery latency & availability"),
    }


def build_parser():
    """Build the argparse parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PiCL reproduction (MICRO 2018) experiment runner",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available commands")
    for name, (_main, help_text) in _experiment_commands().items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--preset",
            default=None,
            help="system scale preset: ci, quick (default), or full",
        )
        sub.add_argument(
            "--jobs",
            default=None,
            help="worker processes for simulation points: a count, or "
            "'auto' for one per CPU (default: $REPRO_JOBS, then 1)",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="run under cProfile and print the top 25 functions "
            "by cumulative time (in-process runs only; use --jobs 1)",
        )
        sub.add_argument(
            "--verbose",
            action="store_true",
            help="print result-cache statistics (hits, misses, corrupt "
            "entries quarantined) after the command",
        )
        if name == "fault-sweep":
            sub.add_argument(
                "--full",
                action="store_true",
                help="run the widened crash matrix (more occurrences, "
                "boundary offsets, and corruption injectors)",
            )
    _add_service_commands(subparsers)
    return parser


def _add_endpoint_arguments(sub):
    sub.add_argument(
        "--socket",
        default=None,
        help="unix socket path (default: <spool>/service.sock)",
    )
    sub.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="use localhost TCP instead of a unix socket",
    )


def _add_service_commands(subparsers):
    serve = subparsers.add_parser(
        "serve", help="run the sweep-service scheduler daemon"
    )
    _add_endpoint_arguments(serve)
    serve.add_argument(
        "--spool",
        default=None,
        help="spool directory for the journal, batch spool, and event "
        "log (default: .repro_service)",
    )
    serve.add_argument(
        "--jobs",
        default=None,
        help="concurrent worker processes (a count or 'auto'; "
        "default: $REPRO_JOBS, then 1)",
    )
    submit = subparsers.add_parser(
        "submit", help="submit a figure batch to a running daemon"
    )
    submit.add_argument(
        "figure", help="a registered figure batch (e.g. fig09, fig15)"
    )
    _add_endpoint_arguments(submit)
    submit.add_argument("--preset", default=None)
    submit.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark subset (default: the figure's)",
    )
    submit.add_argument("--epochs", type=int, default=None)
    status = subparsers.add_parser(
        "status", help="print a running daemon's status snapshot"
    )
    _add_endpoint_arguments(status)
    worker = subparsers.add_parser(
        "worker", help="run a remote fleet worker attached to a daemon"
    )
    _add_endpoint_arguments(worker)
    worker.add_argument(
        "--name",
        default=None,
        help="worker name for the daemon's host table (default: "
        "hostname-pid); health is scored per name across reconnects",
    )
    worker.add_argument(
        "--slots",
        default=None,
        help="concurrent units this worker accepts (a count or 'auto' "
        "for one per CPU; default: 1)",
    )


def _parse_tcp(value):
    if value is None:
        return None
    host, _sep, port = value.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _serve_main(args):
    import asyncio

    from repro.service import SweepService, default_socket_path

    tcp = _parse_tcp(args.tcp)
    service = SweepService(
        spool_dir=args.spool,
        socket_path=args.socket,
        tcp=tcp,
        jobs=args.jobs,
    )
    endpoint = (
        "%s:%d" % tcp if tcp else (args.socket or default_socket_path(args.spool))
    )
    print(
        "repro: sweep service listening on %s (%d jobs, spool %s)"
        % (endpoint, service.scheduler.jobs, service.spool_dir),
        file=sys.stderr,
    )
    return asyncio.run(service.run())


def _submit_main(args):
    from repro.experiments.batches import get_figure
    from repro.experiments.presets import get_preset
    from repro.experiments.report import print_header
    from repro.service import ServiceClient

    figure = get_figure(args.figure)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    pairs = figure.points(args.preset, benchmarks=benchmarks, epochs=args.epochs)
    with ServiceClient(
        socket_path=args.socket, tcp=_parse_tcp(args.tcp)
    ) as client:
        results = client.submit_points([point for _key, point in pairs])
        summary = client.last_summary
    results_by_key = {
        key: result for (key, _point), result in zip(pairs, results)
    }
    preset = get_preset(args.preset)
    print_header(figure.title, preset, preset.config())
    print(figure.render(results_by_key, args.preset))
    if summary is not None:
        print(
            "repro: batch %s: %s" % (summary["batch"], summary["sources"]),
            file=sys.stderr,
        )
    return 0


def _worker_main(args):
    from repro.service.worker import SweepWorker
    from repro.sim.parallel import available_cpus

    if args.slots is None:
        slots = 1
    elif str(args.slots).lower() == "auto":
        slots = available_cpus()
    else:
        slots = int(args.slots)
    worker = SweepWorker(
        name=args.name,
        socket_path=args.socket,
        tcp=_parse_tcp(args.tcp),
        slots=slots,
        on_event=lambda event, **fields: print(
            "repro worker: %s %s" % (event, fields), file=sys.stderr
        ),
    )
    print(
        "repro: worker %s (%d slot%s) dialing %s"
        % (
            worker.name,
            worker.slots,
            "" if worker.slots == 1 else "s",
            args.tcp or args.socket or "default socket",
        ),
        file=sys.stderr,
    )
    try:
        return worker.run()
    except KeyboardInterrupt:
        worker.stop()
        return 0


def _status_main(args):
    import json

    from repro.service import ServiceClient

    with ServiceClient(
        socket_path=args.socket, tcp=_parse_tcp(args.tcp)
    ) as client:
        print(json.dumps(client.status(), indent=2, sort_keys=True))
    return 0


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    argv = argv if argv is not None else sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = _experiment_commands()
    if args.command in (None, "list"):
        print("available commands:")
        for name, (_main, help_text) in sorted(commands.items()):
            print("  %-10s %s" % (name, help_text))
        print("  %-10s %s" % ("serve", "run the sweep-service daemon"))
        print("  %-10s %s" % ("submit", "submit a figure batch to the daemon"))
        print("  %-10s %s" % ("status", "daemon status snapshot"))
        print("  %-10s %s" % ("worker", "remote fleet worker for a daemon"))
        print("  %-10s %s" % ("list", "this listing"))
        return 0
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "submit":
        return _submit_main(args)
    if args.command == "status":
        return _status_main(args)
    if args.command == "worker":
        return _worker_main(args)
    command_main, _help = commands[args.command]
    command_args = [args.preset] if args.preset else []
    if getattr(args, "jobs", None):
        command_args += ["--jobs", args.jobs]
    if getattr(args, "full", False):
        command_args.append("--full")
    verbose = getattr(args, "verbose", False)
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            command_main(command_args)
        finally:
            profiler.disable()
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
            if verbose:
                _print_cache_stats()
        return 0
    try:
        command_main(command_args)
    finally:
        if verbose:
            _print_cache_stats()
    return 0


def _print_cache_stats():
    from repro.sim.parallel import ResultCache

    print(ResultCache.summary(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
