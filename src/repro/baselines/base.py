"""Scheme interface and shared machinery.

A crash-consistency scheme is the hierarchy's eviction sink plus the
driver's epoch-boundary handler plus a recovery procedure:

* ``on_store(core, line, now)`` — called before each store's value is
  applied to the line. PiCL detects cross-epoch stores here; redo schemes
  track their write set and may force an early commit on translation-table
  overflow.
* ``write_back(line_addr, token, now)`` — every dirty write-back to memory
  (LLC eviction or flush) routes through the scheme. Returns issuer stall
  cycles.
* ``fill_token(line_addr)`` — redo schemes snoop their buffer on fills.
* ``on_epoch_boundary(now)`` — the scheduled end of an epoch; returns the
  stop-the-world stall the driver charges to every core.
* ``recover()`` — run after :meth:`repro.cpu.system.System.crash`; rebuilds
  a consistent memory image from the durable state and returns it together
  with the commit id it corresponds to.

The commit-id convention: commits are numbered 0, 1, 2, … in order,
regardless of whether they were scheduled or overflow-forced;
``System.record_commit`` snapshots the architectural state under that id so
property tests can check recovery exactly.
"""

from repro.common.stats import StatCounters


class CrashConsistencyScheme:
    """Abstract base for every scheme (including PiCL)."""

    name = "abstract"

    def __init__(self, system):
        self.system = system
        self.controller = system.controller
        self.hierarchy = system.hierarchy
        self.stats = system.stats
        self.commit_id = 0
        #: Armed crash plan (None outside fault injection — see repro.fault).
        self.fault_plan = None
        system.hierarchy.attach_sink(self)

    # ------------------------------------------------------------------
    # eviction-sink protocol (defaults: write in place, no snoop, no hook)
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """Default: write the line in place (undo-scheme behaviour)."""
        _completion, stall = self.controller.writeback(line_addr, token, now)
        return stall

    def fill_token(self, line_addr):
        """Default: no redo buffer to snoop on fills."""
        return None

    def on_store(self, core, line, now):
        """Default: stores carry no scheme work."""
        return 0

    def on_store_repeat(self, core, line, count, now):
        """Batch ``count`` repeated stores when each is a provable no-op.

        The coalescing fast path (CacheHierarchy.access_repeat) calls this
        for the tail of a same-line store run. Returning 0 asserts that
        ``count`` consecutive ``on_store`` calls on this line would each
        have returned 0 without any observable state change (beyond the
        idempotent bookkeeping this method applies itself); returning None
        makes the hierarchy fall back and replay them exactly, and must
        leave the scheme untouched. The default only batches when
        ``on_store`` is the inherited no-op — a scheme that overrides
        ``on_store`` must opt in with its own override here.
        """
        if type(self).on_store is CrashConsistencyScheme.on_store:
            return 0
        return None

    def vector_store_filter(self):
        """Which L1 store hits the columnar interpreter may bulk-apply.

        The columnar loop (Simulation._run_single_core under
        ``REPRO_VECTOR``) classifies a whole epoch segment at once and
        wants to apply store hits in bulk — but only stores whose
        ``on_store`` call would provably be a no-op (return 0, change no
        scheme state beyond what :meth:`on_store_bulk` accounts for).

        Returns ``True`` (every store hit is scheme-silent), ``False``
        (no store hit may be bulk-applied; all stores go through the
        exact path), or an int EID (a store hit is silent exactly when
        the line's EID equals that value — PiCL's cheap same-epoch
        branch). Re-evaluated at the start of every epoch segment, never
        cached across boundaries. The default mirrors
        :meth:`on_store_repeat`: silent iff ``on_store`` is the
        inherited no-op.
        """
        return type(self).on_store is CrashConsistencyScheme.on_store

    def on_store_bulk(self, count):
        """Aggregate bookkeeping for ``count`` bulk-applied store hits.

        Called once per bulk stretch with the number of stores the
        columnar path applied without invoking :meth:`on_store`. Must
        reproduce exactly the state ``count`` silent ``on_store`` calls
        would have left (PiCL advances its store sequence). Default: the
        inherited no-op ``on_store`` keeps no state, so nothing to do.
        """

    def miss_engine_profile(self):
        """Which scheme callbacks the batched miss-chain engine may inline.

        The engine (:mod:`repro.cache.miss_engine`) fuses the scalar
        L2/LLC/NVM chain into one drain loop; scheme callbacks that are
        provably the base-class bodies are transcribed inline, everything
        else stays an attribute call at the exact scalar call site. The
        booleans report method identity against this base class — a
        subclass that overrides a hook is automatically reported, so a
        new scheme degrades to the safe (call) mode without touching the
        engine.
        """
        base = CrashConsistencyScheme
        cls = type(self)
        return {
            "on_store": cls.on_store is not base.on_store,
            "on_store_repeat": cls.on_store_repeat is not base.on_store_repeat,
            "write_back": cls.write_back is not base.write_back,
            "fill_token": cls.fill_token is not base.fill_token,
            "picl_plain": False,
        }

    # ------------------------------------------------------------------
    # driver protocol
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Scheduled epoch end; returns stop-the-world stall cycles."""
        raise NotImplementedError

    def finalize(self, now):
        """End of simulation: let the scheme settle (drain, last commit)."""
        return 0

    # ------------------------------------------------------------------
    # recovery protocol
    # ------------------------------------------------------------------

    def recover(self):
        """Rebuild a consistent image after a crash.

        Returns ``(image_dict, commit_id)`` where ``commit_id`` is the
        commit whose architectural snapshot the image must equal
        (-1 denotes the initial, pre-execution state).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _commit_now(self):
        """Record a commit and return its id."""
        this_commit = self.commit_id
        self.system.record_commit(this_commit)
        self.commit_id += 1
        return this_commit

    def _flush_all_dirty(self, now, write_back_fn=None):
        """Write back every dirty line and stall until the drain completes.

        This is the synchronous, stop-the-world cache flush of prior work.
        Returns the stall in cycles (drain time plus per-line backpressure).
        """
        write_back_fn = write_back_fn or self.write_back
        stall = 0
        lines = self.hierarchy.collect_dirty_lines()
        for line in lines:
            # Issue each write at the stalled clock: backpressure waits
            # really do let the queue drain, so time must advance with them.
            stall += write_back_fn(line.addr, line.token, now + stall)
            line.dirty = False
        stall += self.controller.drain(now + stall)
        self.stats.add("flush.synchronous")
        self.stats.add("flush.lines_written", len(lines))
        return stall


class TranslationTable:
    """Fixed-capacity set-associative address-tracking table.

    Journaling, Shadow-Paging, and ThyNVM all rely on one of these to map
    addresses to their redo-buffer/shadow copies. The table is the
    scalability bottleneck the paper attacks: when a set fills up, the
    epoch must commit early. Configured per the paper's methodology:
    6144 entries at 16-way set-associative.
    """

    def __init__(self, n_entries, assoc=16, granularity_bytes=64):
        if n_entries % assoc != 0:
            raise ValueError("entries must divide evenly into ways")
        self.n_entries = n_entries
        self.assoc = assoc
        self.granularity = granularity_bytes
        self.n_sets = n_entries // assoc
        self._sets = [dict() for _ in range(self.n_sets)]
        self.size = 0

    def _key(self, addr):
        block = addr // self.granularity
        return block % self.n_sets, block

    def lookup(self, addr):
        """Return the entry tracking ``addr`` (None if untracked)."""
        set_idx, block = self._key(addr)
        return self._sets[set_idx].get(block)

    def insert(self, addr, value=True):
        """Insert a tracking entry; returns False on set overflow.

        Overflow means the caller must commit the epoch early ("on each
        buffer overflow, the system is forced to abort the current epoch
        prematurely").
        """
        set_idx, block = self._key(addr)
        table_set = self._sets[set_idx]
        if block in table_set:
            table_set[block] = value
            return True
        if len(table_set) >= self.assoc:
            return False
        table_set[block] = value
        self.size += 1
        return True

    def insert_with_eviction(self, addr, value, evictable):
        """Insert, evicting a victim for which ``evictable(value)`` is True.

        Returns ``(inserted, evicted_addr)``. Shadow-Paging uses this to
        retain clean entries across epochs yet still reclaim them on a set
        conflict; only when every way holds a non-evictable (dirty) entry
        must the epoch commit early.
        """
        set_idx, block = self._key(addr)
        table_set = self._sets[set_idx]
        if block in table_set:
            table_set[block] = value
            return True, None
        if len(table_set) < self.assoc:
            table_set[block] = value
            self.size += 1
            return True, None
        for victim_block, victim_value in table_set.items():
            if evictable(victim_value):
                del table_set[victim_block]
                table_set[block] = value
                return True, victim_block * self.granularity
        return False, None

    def remove(self, addr):
        """Drop the entry tracking ``addr`` (no-op if absent)."""
        set_idx, block = self._key(addr)
        if block in self._sets[set_idx]:
            del self._sets[set_idx][block]
            self.size -= 1

    def items(self):
        """Yield (base_address, value) for every tracked entry."""
        for table_set in self._sets:
            for block, value in table_set.items():
                yield block * self.granularity, value

    def clear(self):
        """Empty the table (done at every commit)."""
        for table_set in self._sets:
            table_set.clear()
        self.size = 0

    def __len__(self):
        return self.size


#: Table II of the paper: feature comparison of software-transparent WAL.
FEATURE_MATRIX = {
    "FRM": {
        "async_cache_flush": False,
        "single_commit_overlap": False,
        "multi_commit_overlap": False,
        "undo_coalescing": False,
        "redo_page_coalescing": None,
        "second_scale_epochs": False,
        "no_translation_layer": True,
        "mem_ctrl_complexity": "Medium",
    },
    "Journaling": {
        "async_cache_flush": False,
        "single_commit_overlap": False,
        "multi_commit_overlap": False,
        "undo_coalescing": None,
        "redo_page_coalescing": False,
        "second_scale_epochs": False,
        "no_translation_layer": False,
        "mem_ctrl_complexity": "Medium",
    },
    "ThyNVM": {
        "async_cache_flush": False,
        "single_commit_overlap": True,
        "multi_commit_overlap": False,
        "undo_coalescing": None,
        "redo_page_coalescing": True,
        "second_scale_epochs": False,
        "no_translation_layer": False,
        "mem_ctrl_complexity": "High",
    },
    "PiCL": {
        "async_cache_flush": True,
        "single_commit_overlap": True,
        "multi_commit_overlap": True,
        "undo_coalescing": True,
        "redo_page_coalescing": None,
        "second_scale_epochs": True,
        "no_translation_layer": True,
        "mem_ctrl_complexity": "Low",
    },
}
