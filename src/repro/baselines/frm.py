"""FRM: undo-logging, high-frequency checkpointing (§II-B, Fig 3b).

The representative of the hardware undo-logging family (FRM and the other
1–10 ms checkpoint designs the paper cites). Its two costs:

* **Read-log-modify per dirty write-back**: the undo data must first be
  read from the canonical address, persisted into the undo log, and only
  then may the new data be written in place. The undo *reads* and in-place
  writes are random; we grant the log writes the paper's coalescing
  optimization (grouped into row-sized bursts), but the read-modify random
  traffic still dominates — FRM has the highest random IOPS in Fig 12.
* **Synchronous flush every epoch**: only one checkpoint can be in flight,
  so every dirty line must be flushed, with the same read-log-modify
  sequence, before execution resumes.

No translation table: write-backs land at canonical addresses, so there is
no overflow and exactly one commit per epoch (Fig 11's "undo-based
approaches do not suffer from this problem").
"""

from repro.baselines.base import CrashConsistencyScheme
from repro.core.undo import ENTRY_BYTES, UndoEntry
from repro.mem.log_region import LogRegion
from repro.mem.nvm import AccessCategory


class Frm(CrashConsistencyScheme):
    """Single-epoch undo logging with read-log-modify write-backs."""

    name = "frm"

    #: Undo log writes are grouped into row-sized bursts.
    LOG_COALESCE_ENTRIES = 28  # 2 KB / 72 B

    def __init__(self, system):
        super().__init__(system)
        self.log = LogRegion(entry_bytes=ENTRY_BYTES, stats=self.stats)
        self.epoch_index = 0
        self._pending_log_entries = 0
        self._last_commit = -1

    # ------------------------------------------------------------------
    # the read-log-modify sequence
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """The read-log-modify sequence: undo read, log append, in-place write."""
        stall = 0
        # (1) Read the undo data from its canonical address (random read).
        old_token, _completion, s = self.controller.log_read_line(line_addr, now)
        stall += s
        # (2) Persist the undo entry (coalesced into bursts).
        entry = UndoEntry(
            line_addr, old_token, self.epoch_index, self.epoch_index + 1
        )
        self.log.append(entry)
        self._pending_log_entries += 1
        if self._pending_log_entries >= self.LOG_COALESCE_ENTRIES:
            _completion, s = self.controller.bulk_log_write(
                self._pending_log_entries * ENTRY_BYTES, now + stall
            )
            stall += s
            self._pending_log_entries = 0
        # (3) Write the new data in place.
        _completion, s = self.controller.writeback(
            line_addr, token, now + stall, category=AccessCategory.WRITEBACK
        )
        return stall + s

    # ------------------------------------------------------------------
    # synchronous per-epoch flush and commit
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Synchronous flush (read-log-modify per line), then truncate the log."""
        stall = self.system.handler_stall()
        stall += self._flush_all_dirty(now)
        if self._pending_log_entries:
            _completion, s = self.controller.bulk_log_write(
                self._pending_log_entries * ENTRY_BYTES, now + stall
            )
            stall += s
            self._pending_log_entries = 0
            stall += self.controller.drain(now + stall)
        # Commit is atomic with persist: the undo log of this epoch is now
        # obsolete and is truncated.
        self.log.collect_garbage(self.epoch_index + 1)
        self._last_commit = self._commit_now()
        self.epoch_index += 1
        return stall

    def finalize(self, now):
        """Drain posted writes so end-of-run timing is comparable."""
        return self.controller.drain(now)

    # ------------------------------------------------------------------
    # recovery: revert the uncommitted epoch's in-place writes
    # ------------------------------------------------------------------

    def recover(self):
        """Apply the current epoch's undo entries backward (oldest wins)."""
        image = dict(self.controller.snapshot_image())
        # Torn superblock writes / bit flips in the log must be *detected*
        # (RecoveryError), never silently applied as undo data.
        self.log.verify()
        applied = 0
        for entry in self.log.iter_entries_backward():
            image[entry.addr] = entry.token
            applied += 1
        self.stats.add("frm.recovery_entries_applied", applied)
        return image, self._last_commit
