"""Ideal NVM: no checkpointing, no crash consistency.

The normalization baseline of every figure ("Ideal NVM is a model that has
no checkpoint nor crash consistency"). Write-backs go straight in place;
epoch boundaries are no-ops; recovery is undefined (a crash loses the
contents of the caches with no way back to a consistent state).
"""

from repro.baselines.base import CrashConsistencyScheme


class IdealNvm(CrashConsistencyScheme):
    """No-op scheme: in-place write-backs only."""

    name = "ideal"

    def on_epoch_boundary(self, now):
        """Nothing to do: Ideal NVM never checkpoints."""
        return 0

    def finalize(self, now):
        """Drain posted writes so end-of-run timing is comparable."""
        return self.controller.drain(now)

    def recover(self):
        """No consistency guarantee: returns the raw (possibly torn) image.

        The commit id is ``None`` — there is no checkpoint this image
        corresponds to, which is precisely the problem PiCL solves.
        """
        return self.controller.snapshot_image(), None
