"""Shadow-Paging: page-granularity copy-on-write journaling.

"Largely similar to Journaling, but increases the tracking granularity to
page size (4 KB). Page copy-on-write is done on a translation write miss,
and page write-back is done on a commit." The paper adds two optimizations
which we reproduce:

1. CoW copies happen *locally within the memory module* (one sequential
   operation, no link crossing) — :meth:`repro.mem.controller.MemoryController.bulk_copy`.
2. After a commit writes a page back, its translation entry is *retained*
   so the next epoch's writes to the same page need no new CoW; retained
   (clean) entries are evicted on set conflicts before the epoch is forced
   to commit early.

Page entries track up to 64 cache lines each, so sequential workloads
(e.g. mcf) fit the table easily, while low-spatial-locality workloads
(astar) burn one 4 KB copy per stray write and overflow anyway (Fig 11).
"""

from repro.baselines.base import CrashConsistencyScheme, TranslationTable
from repro.common.address import PAGE_SIZE, iter_page_lines, page_address
from repro.mem.nvm import AccessCategory


class _PageEntry:
    """Per-page translation state: dirty this epoch?"""

    __slots__ = ("dirty",)

    def __init__(self):
        self.dirty = False


class ShadowPaging(CrashConsistencyScheme):
    """Page-granularity CoW journaling with entry retention."""

    name = "shadow"

    def __init__(self, system, table_entries=6144, table_assoc=16):
        super().__init__(system)
        self.table = TranslationTable(
            table_entries, table_assoc, granularity_bytes=PAGE_SIZE
        )
        #: Durable shadow-copy contents: line addr -> newest token.
        self.shadow_contents = {}
        self._last_commit = -1

    # ------------------------------------------------------------------
    # store path: CoW on translation write miss
    # ------------------------------------------------------------------

    def on_store(self, core, line, now):
        """First store to a page this epoch triggers the CoW (and may overflow)."""
        page = page_address(line.addr)
        entry = self.table.lookup(page)
        if entry is not None:
            entry.dirty = True
            return 0
        stall = 0
        inserted, evicted = self.table.insert_with_eviction(
            page, _PageEntry(), evictable=lambda value: not value.dirty
        )
        if not inserted:
            self.stats.add("commits.forced")
            stall += self._commit(now)
            inserted, evicted = self.table.insert_with_eviction(
                page, _PageEntry(), evictable=lambda value: not value.dirty
            )
            if not inserted:
                raise AssertionError("shadow table full immediately after commit")
        if evicted is not None:
            self.stats.add("shadow.entries_evicted")
        entry = self.table.lookup(page)
        entry.dirty = True
        # Copy-on-write: clone the canonical page into the shadow copy,
        # locally within the memory module.
        _completion, cow_stall = self.controller.bulk_copy(PAGE_SIZE, now)
        self.stats.add("shadow.page_cows")
        return stall + cow_stall

    def on_store_repeat(self, core, line, count, now):
        """Repeated stores to an already-shadowed page just re-mark it dirty."""
        entry = self.table.lookup(page_address(line.addr))
        if entry is None:
            return None
        entry.dirty = True
        return 0

    # ------------------------------------------------------------------
    # eviction path: into the shadow copy
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """Divert the write into the page's shadow copy."""
        self.shadow_contents[line_addr] = token
        _completion, stall = self.controller.device.write_line(
            line_addr, now, AccessCategory.WRITEBACK
        )
        return stall

    def fill_token(self, line_addr):
        """Snoop the shadow copies for the newest data."""
        return self.shadow_contents.get(line_addr)

    # ------------------------------------------------------------------
    # commit: flush caches into shadows, write dirty pages back
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Synchronous commit: flush caches, write dirty pages back, drain."""
        return self._commit(now)

    def _commit(self, now):
        stall = self.system.handler_stall()
        stall += self._flush_all_dirty(now)
        dirty_pages = [
            page for page, entry in self.table.items() if entry.dirty
        ]
        for page in dirty_pages:
            _completion, s = self.controller.device.bulk_write(
                PAGE_SIZE, now + stall, AccessCategory.SEQUENTIAL
            )
            stall += s
            for line_addr in iter_page_lines(page):
                if line_addr in self.shadow_contents:
                    self.controller.write_token(
                        line_addr, self.shadow_contents[line_addr]
                    )
            entry = self.table.lookup(page)
            entry.dirty = False
        self.stats.add("shadow.page_writebacks", len(dirty_pages))
        self.shadow_contents.clear()
        stall += self.controller.drain(now + stall)
        self._last_commit = self._commit_now()
        return stall

    def finalize(self, now):
        """Drain posted writes so end-of-run timing is comparable."""
        return self.controller.drain(now)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self):
        """Canonical pages are only updated at commits; shadows are discarded."""
        return self.controller.snapshot_image(), self._last_commit
