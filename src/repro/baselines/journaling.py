"""Journaling: redo logging with an NVM redo buffer (§II-B, Fig 3a).

Cache evictions are held in a redo buffer in NVM until the next commit; a
fixed-capacity translation table tracks which blocks live in the buffer so
that demand fills can snoop it. The two scalability problems the paper
attacks are both here:

* The table is fixed-size and associative — "when there are more writes,
  the buffer overflows more often. On each buffer overflow, the system is
  forced to abort the current epoch prematurely" (this drives Fig 11 and
  Fig 14).
* Commits are fully synchronous: flush every dirty line into the buffer,
  then read each entry back and write it to its canonical location —
  random IOPS throughout (Fig 12).

Configured per the paper's methodology: 6144 entries, 16-way
set-associative, 64 B granularity.
"""

from repro.baselines.base import CrashConsistencyScheme, TranslationTable
from repro.mem.nvm import AccessCategory


class Journaling(CrashConsistencyScheme):
    """Redo-logging WAL with a block-granularity translation table."""

    name = "journaling"

    def __init__(self, system, table_entries=6144, table_assoc=16):
        super().__init__(system)
        self.table = TranslationTable(table_entries, table_assoc, granularity_bytes=64)
        #: Durable redo-buffer contents: line addr -> newest token.
        self.redo_contents = {}
        self._last_commit = -1

    # ------------------------------------------------------------------
    # write-set tracking (store path)
    # ------------------------------------------------------------------

    def on_store(self, core, line, now):
        """Track the block in the translation table; overflow commits early."""
        if self.table.insert(line.addr):
            return 0
        # Table overflow: abort the epoch prematurely.
        self.stats.add("commits.forced")
        stall = self._commit(now)
        if not self.table.insert(line.addr):
            # A freshly cleared table always has room.
            raise AssertionError("translation table full immediately after commit")
        return stall

    def on_store_repeat(self, core, line, count, now):
        """Repeated stores to an already-tracked block are free re-inserts."""
        if self.table.lookup(line.addr) is not None:
            return 0
        return None

    # ------------------------------------------------------------------
    # eviction path: into the redo buffer, snooped on fills
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """Divert the write into the redo buffer (snooped on fills)."""
        self.redo_contents[line_addr] = token
        _completion, stall = self.controller.device.write_line(
            line_addr, now, AccessCategory.WRITEBACK
        )
        return stall

    def fill_token(self, line_addr):
        """Snoop the redo buffer for the newest copy of the line."""
        return self.redo_contents.get(line_addr)

    # ------------------------------------------------------------------
    # synchronous commit: flush, apply, drain
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Synchronous commit: flush caches, apply the redo buffer, drain."""
        return self._commit(now)

    def _commit(self, now):
        stall = self.system.handler_stall()
        stall += self._flush_all_dirty(now)
        # Apply: read every redo entry back and write it in place.
        device = self.controller.device
        for line_addr, token in self.redo_contents.items():
            _c, s = device.log_read_line(line_addr, now + stall)
            stall += s
            _c, s = device.write_line(line_addr, now + stall, AccessCategory.RANDOM)
            stall += s
            self.controller.write_token(line_addr, token)
        self.stats.add("journal.entries_applied", len(self.redo_contents))
        self.redo_contents.clear()
        self.table.clear()
        stall += self.controller.drain(now + stall)
        self._last_commit = self._commit_now()
        return stall

    def finalize(self, now):
        """Drain posted writes so end-of-run timing is comparable."""
        return self.controller.drain(now)

    # ------------------------------------------------------------------
    # recovery: canonical memory is always at the last commit
    # ------------------------------------------------------------------

    def recover(self):
        """Discard the uncommitted redo buffer; memory is consistent as-is.

        Redo entries in the buffer all belong to the aborted epoch (the
        buffer is emptied at every commit), so recovery is trivial — the
        price was paid during execution.
        """
        return self.controller.snapshot_image(), self._last_commit
