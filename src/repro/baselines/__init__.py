"""Software-transparent crash-consistency schemes the paper compares against.

Every scheme implements :class:`repro.baselines.base.CrashConsistencyScheme`
(PiCL itself lives in :mod:`repro.core` but implements the same interface):

* :class:`IdealNvm` — no checkpointing at all; the normalization baseline.
* :class:`Journaling` — redo logging with an NVM redo buffer tracked by a
  fixed translation table; overflow forces early commits.
* :class:`ShadowPaging` — page-granularity copy-on-write journaling with
  module-local CoW and retained entries (the paper's two optimizations).
* :class:`Frm` — undo logging with the read-log-modify sequence per dirty
  write-back and a synchronous flush each epoch.
* :class:`ThyNvm` — redo logging at mixed 64 B / 4 KB granularity with
  single-checkpoint execution overlap.
"""

from repro.baselines.base import (
    FEATURE_MATRIX,
    CrashConsistencyScheme,
    TranslationTable,
)
from repro.baselines.frm import Frm
from repro.baselines.ideal import IdealNvm
from repro.baselines.journaling import Journaling
from repro.baselines.shadow import ShadowPaging
from repro.baselines.thynvm import ThyNvm

__all__ = [
    "CrashConsistencyScheme",
    "TranslationTable",
    "FEATURE_MATRIX",
    "IdealNvm",
    "Journaling",
    "ShadowPaging",
    "Frm",
    "ThyNvm",
]
