"""ThyNVM: dual-granularity redo logging with one-checkpoint overlap.

The closest prior work to PiCL (§II-B). Redo-based, with translation
entries at mixed granularity — 2048 block (64 B) plus 4096 page (4 KB)
entries, 16-way set-associative, per the paper's methodology — and the
ability to overlap *one* checkpoint's apply phase with the next epoch's
execution:

* At a commit, dirty data is flushed into the redo region synchronously
  (block entries as random line writes, page entries as sequential page
  writes — the "redo page coalescing" row of Table II).
* The *apply* of that checkpoint (copying redo entries to their canonical
  addresses) proceeds in the background; only if it has not finished by
  the *next* commit does the system stall for it. Growing caches mean
  bigger flushes and longer applies, which is why ThyNVM's overhead grows
  fastest in the cache-size sweep (Fig 15): "this is due to it using the
  redo-buffer across multiple epochs leading to greater pressure and
  shorter checkpoints".

Pages are promoted from block tracking when enough of their lines are
written ("mixed checkpoint granularity ... can lead to good NVM row buffer
usage for workloads with high spatial locality"). Overflow of both tables
forces an early commit. As in the paper's methodology, the redo buffer is
allocated in NVM (no DRAM cache layer) and cache snooping is free.
"""

from repro.baselines.base import CrashConsistencyScheme, TranslationTable
from repro.common.address import PAGE_SIZE, page_address
from repro.mem.nvm import AccessCategory


class ThyNvm(CrashConsistencyScheme):
    """Mixed block/page redo logging with single-commit overlap."""

    name = "thynvm"

    #: Lines written within a page before it is promoted to a page entry.
    PROMOTE_THRESHOLD = 4

    def __init__(
        self,
        system,
        block_entries=2048,
        page_entries=4096,
        table_assoc=16,
    ):
        super().__init__(system)
        self.block_table = TranslationTable(
            block_entries, table_assoc, granularity_bytes=64
        )
        self.page_table = TranslationTable(
            page_entries, table_assoc, granularity_bytes=PAGE_SIZE
        )
        #: Lines written per block-tracked page (promotion bookkeeping).
        self._page_line_counts = {}
        #: Durable redo-region contents: line addr -> newest token.
        self.redo_contents = {}
        self._apply_done_at = 0
        self._last_commit = -1

    # ------------------------------------------------------------------
    # store path: dual-granularity write-set tracking
    # ------------------------------------------------------------------

    def on_store(self, core, line, now):
        """Dual-granularity tracking with promotion; exhaustion commits early."""
        page = page_address(line.addr)
        if self.page_table.lookup(page) is not None:
            return 0
        if self.block_table.lookup(line.addr) is not None:
            return 0
        count = self._page_line_counts.get(page, 0) + 1
        if count >= self.PROMOTE_THRESHOLD and self.page_table.insert(page):
            self._drop_block_entries(page)
            self.stats.add("thynvm.page_promotions")
            return 0
        if self.block_table.insert(line.addr):
            self._page_line_counts[page] = count
            return 0
        # Block table full: relieve the pressure by promoting the most
        # heavily staged pages to page entries, freeing their block slots.
        while self._promote_fullest_page():
            if self.block_table.insert(line.addr):
                self._page_line_counts[page] = count
                return 0
        # Both granularities exhausted: abort the epoch prematurely.
        self.stats.add("commits.forced")
        stall = self._commit(now)
        if not self.block_table.insert(line.addr):
            raise AssertionError("translation table full immediately after commit")
        self._page_line_counts[page] = 1
        return stall

    def on_store_repeat(self, core, line, count, now):
        """Repeated stores to a tracked block/page hit the early-out paths."""
        if self.page_table.lookup(page_address(line.addr)) is not None:
            return 0
        if self.block_table.lookup(line.addr) is not None:
            return 0
        return None

    def _promote_fullest_page(self):
        """Promote the page with the most staged blocks; False if impossible."""
        if not self._page_line_counts:
            return False
        page = max(self._page_line_counts, key=self._page_line_counts.get)
        if not self.page_table.insert(page):
            return False
        self._drop_block_entries(page)
        self.stats.add("thynvm.pressure_promotions")
        return True

    def _drop_block_entries(self, page):
        for line_addr in range(page, page + PAGE_SIZE, 64):
            self.block_table.remove(line_addr)
        self._page_line_counts.pop(page, None)

    # ------------------------------------------------------------------
    # eviction path: into the redo region at the tracked granularity
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """Divert the write into the redo region at its tracked granularity."""
        self.redo_contents[line_addr] = token
        page = page_address(line_addr)
        if self.page_table.lookup(page) is not None:
            # Page-tracked data lands in row-buffer-friendly page slots;
            # charge a line's share of a sequential page write.
            _completion, stall = self.controller.device.bulk_write(
                64, now, AccessCategory.WRITEBACK
            )
            return stall
        _completion, stall = self.controller.device.write_line(
            line_addr, now, AccessCategory.WRITEBACK
        )
        return stall

    def fill_token(self, line_addr):
        """Snoop the redo region for the newest copy of the line."""
        return self.redo_contents.get(line_addr)

    # ------------------------------------------------------------------
    # commit: synchronous flush, overlapped apply
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Synchronous flush into the redo region; apply overlaps execution."""
        return self._commit(now)

    def _commit(self, now):
        stall = self.system.handler_stall()
        # (a) The previous checkpoint's apply must be finished before its
        # redo-region slots can be reused.
        if self._apply_done_at > now:
            waited = self._apply_done_at - now
            stall += waited
            self.stats.add("thynvm.apply_wait_cycles", waited)
        # (b) Flush dirty data into the redo region, synchronously.
        stall += self._flush_all_dirty(now + stall)
        # (c) The checkpoint is durable in the redo region: commit.
        for line_addr, token in self.redo_contents.items():
            self.controller.write_token(line_addr, token)
        self._last_commit = self._commit_now()
        # (d) Apply in the background, overlapping the next epoch: redo
        # entries are copied to their canonical locations as posted
        # traffic; page entries move as module-local page copies.
        apply_start = now + stall
        completion = apply_start
        device = self.controller.device
        applied_pages = set()
        for line_addr in self.redo_contents:
            page = page_address(line_addr)
            if self.page_table.lookup(page) is not None:
                if page not in applied_pages:
                    applied_pages.add(page)
                    completion, _s = self.controller.bulk_copy(
                        PAGE_SIZE, apply_start, backpressure=False
                    )
            else:
                completion, _s = device.log_read_line(
                    line_addr, apply_start, backpressure=False
                )
                completion, _s = device.write_line(
                    line_addr, apply_start, AccessCategory.RANDOM, backpressure=False
                )
        self._apply_done_at = completion
        self.stats.add("thynvm.entries_applied", len(self.redo_contents))
        self.stats.add("thynvm.pages_applied", len(applied_pages))
        self.redo_contents.clear()
        self.block_table.clear()
        self.page_table.clear()
        self._page_line_counts.clear()
        return stall

    def finalize(self, now):
        """Drain posted writes so end-of-run timing is comparable."""
        return self.controller.drain(now)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self):
        """The redo region holds only uncommitted data; memory is consistent."""
        return self.controller.snapshot_image(), self._last_commit
