"""Lightweight statistics counters.

Every subsystem owns a :class:`StatCounters` and increments named counters;
the simulator merges them into one result at the end of a run. Counters are
created on first use so subsystems never need to pre-declare them, and a
snapshot/diff facility supports measuring a window of execution (e.g., one
epoch) in isolation.

Hot call sites (the cache hierarchy's per-access counters, the NVM device's
IOPS accounting) pre-resolve their counter once via :meth:`StatCounters.slot`
and then bump ``slot.value`` directly, skipping the per-call prefix
concatenation and dict probe of :meth:`StatCounters.add`. A slot whose value
is zero is indistinguishable from a counter that was never touched — it does
not appear in snapshots, diffs, or ``items()`` — preserving the
created-on-first-use semantics for pre-registered slots.
"""


class Slot:
    """A pre-resolved counter cell: hot paths do ``slot.value += n``."""

    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value

    def bump(self, amount):
        """Bulk increment: the columnar interpreter applies a whole
        stretch of classified L1 hits as one reduction instead of one
        ``slot.value += 1`` per reference. ``amount`` may be a numpy
        integer; coerce so snapshots stay plain ints (exact equality
        against the scalar interpreter's counters).
        """
        self.value += int(amount)

    def __repr__(self):
        return "Slot(%r)" % (self.value,)


class StatCounters:
    """A named bag of numeric counters with snapshot/diff support."""

    def __init__(self, prefix=""):
        self._prefix = prefix
        self._counters = {}
        self._slots = {}

    def slot(self, name):
        """Pre-resolve ``name`` into a :class:`Slot` for hot-path updates.

        The counter's current value (if any) moves into the slot; further
        ``add``/``set``/``get`` calls on the same name keep working and see
        the slot's value.
        """
        key = self._prefix + name
        cell = self._slots.get(key)
        if cell is None:
            cell = self._slots[key] = Slot(self._counters.pop(key, 0))
        return cell

    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount`` (created at 0 if new)."""
        key = self._prefix + name
        cell = self._slots.get(key)
        if cell is not None:
            cell.value += amount
        else:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set(self, name, value):
        """Set counter ``name`` to ``value`` exactly."""
        key = self._prefix + name
        cell = self._slots.get(key)
        if cell is not None:
            cell.value = value
        else:
            self._counters[key] = value

    def get(self, name, default=0):
        """Return the value of counter ``name`` (``default`` if never set)."""
        key = self._prefix + name
        cell = self._slots.get(key)
        if cell is not None:
            return cell.value
        return self._counters.get(key, default)

    def items(self):
        """Read-only iteration over every ``(name, value)`` pair."""
        for key, value in self._counters.items():
            yield key, value
        for key, cell in self._slots.items():
            if cell.value:
                yield key, cell.value

    def snapshot(self):
        """Return a frozen copy of every counter."""
        snap = dict(self._counters)
        for key, cell in self._slots.items():
            if cell.value:
                snap[key] = cell.value
        return snap

    def diff(self, earlier_snapshot):
        """Return counter deltas since ``earlier_snapshot``."""
        deltas = {}
        for key, value in self.items():
            before = earlier_snapshot.get(key, 0)
            if value != before:
                deltas[key] = value - before
        return deltas

    def merge_from(self, other):
        """Accumulate every counter of ``other`` into this bag."""
        counters = self._counters
        slots = self._slots
        for key, value in other._counters.items():
            cell = slots.get(key)
            if cell is not None:
                cell.value += value
            else:
                counters[key] = counters.get(key, 0) + value
        for key, other_cell in other._slots.items():
            if not other_cell.value:
                continue
            cell = slots.get(key)
            if cell is not None:
                cell.value += other_cell.value
            else:
                counters[key] = counters.get(key, 0) + other_cell.value

    def as_dict(self):
        """Alias for :meth:`snapshot` (read-only view semantics)."""
        return self.snapshot()

    def reset(self):
        """Zero every counter (registered slots stay live, at zero)."""
        self._counters.clear()
        for cell in self._slots.values():
            cell.value = 0

    def __contains__(self, name):
        key = self._prefix + name
        cell = self._slots.get(key)
        if cell is not None:
            return bool(cell.value)
        return key in self._counters

    def __repr__(self):
        parts = ", ".join(
            "%s=%s" % (key, value) for key, value in sorted(self.items())
        )
        return "StatCounters(%s)" % parts
