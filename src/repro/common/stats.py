"""Lightweight statistics counters.

Every subsystem owns a :class:`StatCounters` and increments named counters;
the simulator merges them into one result at the end of a run. Counters are
created on first use so subsystems never need to pre-declare them, and a
snapshot/diff facility supports measuring a window of execution (e.g., one
epoch) in isolation.
"""


class StatCounters:
    """A named bag of numeric counters with snapshot/diff support."""

    def __init__(self, prefix=""):
        self._prefix = prefix
        self._counters = {}

    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount`` (created at 0 if new)."""
        key = self._prefix + name
        self._counters[key] = self._counters.get(key, 0) + amount

    def set(self, name, value):
        """Set counter ``name`` to ``value`` exactly."""
        self._counters[self._prefix + name] = value

    def get(self, name, default=0):
        """Return the value of counter ``name`` (``default`` if never set)."""
        return self._counters.get(self._prefix + name, default)

    def snapshot(self):
        """Return a frozen copy of every counter."""
        return dict(self._counters)

    def diff(self, earlier_snapshot):
        """Return counter deltas since ``earlier_snapshot``."""
        deltas = {}
        for key, value in self._counters.items():
            before = earlier_snapshot.get(key, 0)
            if value != before:
                deltas[key] = value - before
        return deltas

    def merge_from(self, other):
        """Accumulate every counter of ``other`` into this bag."""
        for key, value in other.snapshot().items():
            self._counters[key] = self._counters.get(key, 0) + value

    def as_dict(self):
        """Alias for :meth:`snapshot` (read-only view semantics)."""
        return self.snapshot()

    def reset(self):
        """Zero every counter."""
        self._counters.clear()

    def __contains__(self, name):
        return (self._prefix + name) in self._counters

    def __repr__(self):
        parts = ", ".join(
            "%s=%s" % (key, value) for key, value in sorted(self._counters.items())
        )
        return "StatCounters(%s)" % parts
