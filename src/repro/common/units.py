"""Unit helpers: sizes in bytes and times in CPU cycles.

The simulator keeps all times in integer CPU cycles. The paper's system
(Table IV) runs at 2.0 GHz, so one nanosecond is two cycles; the conversion
is kept explicit so that configurations with other clock frequencies can
override it.
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Default CPU frequency used throughout the paper's evaluation (Table IV).
DEFAULT_CPU_GHZ = 2.0

#: Cycles per nanosecond at the default 2.0 GHz clock.
CYCLES_PER_NS = DEFAULT_CPU_GHZ


def cycles_from_ns(nanoseconds, ghz=DEFAULT_CPU_GHZ):
    """Convert a duration in nanoseconds to an integer number of CPU cycles.

    Rounds up so that latencies are never silently under-counted.
    """
    cycles = nanoseconds * ghz
    whole = int(cycles)
    if cycles > whole:
        whole += 1
    return whole


def ns_from_cycles(cycles, ghz=DEFAULT_CPU_GHZ):
    """Convert a cycle count back to nanoseconds (as a float)."""
    return cycles / ghz


def is_power_of_two(value):
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
