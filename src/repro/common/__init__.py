"""Shared primitives used by every subsystem of the PiCL reproduction.

This package is deliberately dependency-free (besides the standard library)
so that the memory, cache, and logging subsystems can all build on it without
import cycles.
"""

from repro.common.address import (
    LINE_SIZE,
    PAGE_SIZE,
    line_address,
    line_offset,
    lines_in_page,
    page_address,
    page_offset,
)
from repro.common.eid import EpochId, eid_distance, eid_in_window, eid_le
from repro.common.errors import (
    ConfigurationError,
    LogExhaustedError,
    ReproError,
    SimulationError,
)
from repro.common.stats import StatCounters
from repro.common.units import (
    CYCLES_PER_NS,
    GB,
    KB,
    MB,
    cycles_from_ns,
    ns_from_cycles,
)

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "line_address",
    "line_offset",
    "lines_in_page",
    "page_address",
    "page_offset",
    "EpochId",
    "eid_distance",
    "eid_in_window",
    "eid_le",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "LogExhaustedError",
    "StatCounters",
    "KB",
    "MB",
    "GB",
    "CYCLES_PER_NS",
    "cycles_from_ns",
    "ns_from_cycles",
]
