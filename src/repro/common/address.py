"""Physical address helpers.

Addresses are plain integers (byte addresses). The cache hierarchy operates
at cache-line granularity and the shadow-paging / DRAM-cache layers at page
granularity, so the line/page arithmetic lives here in one place.
"""

#: Cache line size in bytes. Fixed at 64 B to match the paper's evaluation;
#: the OpenPiton prototype's 16 B *tracking* granularity is a property of the
#: PiCL scheme (see :mod:`repro.core.granularity`), not of the caches.
LINE_SIZE = 64

#: Page size in bytes, used by Shadow-Paging, ThyNVM's page entries, and the
#: optional DRAM cache extension.
PAGE_SIZE = 4096


def line_address(addr, line_size=LINE_SIZE):
    """Return the address of the cache line containing ``addr``."""
    return addr & ~(line_size - 1)


def line_offset(addr, line_size=LINE_SIZE):
    """Return the byte offset of ``addr`` within its cache line."""
    return addr & (line_size - 1)


def page_address(addr, page_size=PAGE_SIZE):
    """Return the address of the page containing ``addr``."""
    return addr & ~(page_size - 1)


def page_offset(addr, page_size=PAGE_SIZE):
    """Return the byte offset of ``addr`` within its page."""
    return addr & (page_size - 1)


def lines_in_page(page_size=PAGE_SIZE, line_size=LINE_SIZE):
    """Number of cache lines per page (64 for the default 4 KB / 64 B)."""
    return page_size // line_size


def iter_page_lines(addr, page_size=PAGE_SIZE, line_size=LINE_SIZE):
    """Yield the line addresses of every line in the page containing ``addr``."""
    base = page_address(addr, page_size)
    for offset in range(0, page_size, line_size):
        yield base + offset
