"""Epoch ID (EID) arithmetic, including the 4-bit wraparound tag model.

PiCL tags every cache line with a small EID (the paper uses 4 bits). The
hardware compares a line's tag against the current SystemEID to detect
cross-epoch stores, and the ACS engine matches tags against the epoch being
persisted. Because the tag is narrow, comparisons are modular: they are only
meaningful while all live EIDs fall inside a window smaller than ``2**bits``.

The simulator keeps *full* (unbounded) integer EIDs for bookkeeping — that is
what a software model should do — and uses this module to (a) derive the
hardware tag a full EID would carry and (b) check that a configuration's
epoch window (ACS-gap plus in-flight commits) actually fits in the tag,
which is the real hardware constraint the 4-bit choice imposes.
"""

from repro.common.errors import ConfigurationError

#: Tag width used by the paper ("4-bit values are sufficient").
DEFAULT_EID_BITS = 4


class EpochId:
    """Namespace of constants for epoch IDs.

    Full EIDs are plain ints; ``EpochId.NONE`` marks a cache line that has
    no epoch association yet (freshly filled, never stored to).
    """

    #: Sentinel for "no EID assigned" (a clean line loaded from memory).
    NONE = -1

    #: The initial SystemEID after reset.
    FIRST = 0


def to_tag(eid, bits=DEFAULT_EID_BITS):
    """Return the hardware tag (low ``bits`` bits) a full EID would carry."""
    if eid < 0:
        raise ValueError("cannot derive a tag for the NONE sentinel")
    return eid & ((1 << bits) - 1)


def tags_equal(eid_a, eid_b, bits=DEFAULT_EID_BITS):
    """True when two full EIDs are indistinguishable to ``bits``-wide tags."""
    return to_tag(eid_a, bits) == to_tag(eid_b, bits)


def eid_le(eid_a, eid_b):
    """Ordering on full EIDs (trivial, but named for symmetry with tags)."""
    return eid_a <= eid_b


def eid_distance(eid_a, eid_b):
    """Absolute distance between two full EIDs."""
    return abs(eid_a - eid_b)


def eid_in_window(eid, low, high):
    """True when ``low <= eid <= high`` (inclusive window on full EIDs)."""
    return low <= eid <= high


def max_window(bits=DEFAULT_EID_BITS):
    """Largest EID window that ``bits``-wide tags can disambiguate.

    With ``n``-bit tags, the hardware can tell apart at most ``2**n - 1``
    consecutive epochs plus the executing one; a window wider than that
    aliases and breaks both cross-epoch store detection and ACS matching.
    """
    return (1 << bits) - 1


def check_window_fits(acs_gap, extra_inflight=1, bits=DEFAULT_EID_BITS):
    """Validate that the live epoch window fits in the hardware tag.

    ``acs_gap`` committed-but-unpersisted epochs plus ``extra_inflight``
    (the executing epoch) must all carry distinguishable tags.

    Raises :class:`ConfigurationError` when the window does not fit.
    """
    window = acs_gap + extra_inflight
    limit = max_window(bits)
    if window > limit:
        raise ConfigurationError(
            "epoch window of %d (ACS-gap %d + %d in flight) does not fit in "
            "%d-bit EID tags (max window %d)"
            % (window, acs_gap, extra_inflight, bits, limit)
        )
    return window


def resolve_tag(tag, system_eid, bits=DEFAULT_EID_BITS):
    """Recover the full EID a tag denotes, given the current SystemEID.

    The hardware invariant (enforced by :func:`check_window_fits`) is that
    every live tag belongs to an epoch in ``(system_eid - max_window,
    system_eid]``; within that window, tags are unique, so the full EID is
    the unique value in the window whose low bits equal ``tag``.
    """
    mask = (1 << bits) - 1
    if not 0 <= tag <= mask:
        raise ValueError("tag %r out of range for %d bits" % (tag, bits))
    delta = (system_eid - tag) & mask
    eid = system_eid - delta
    if eid < 0:
        raise ValueError(
            "tag %d cannot denote a live epoch at SystemEID %d" % (tag, system_eid)
        )
    return eid
