"""Exception hierarchy for the PiCL reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """An internal invariant of the simulation was violated.

    These indicate bugs in the model (or a scheme breaking a hardware
    invariant such as the undo-before-in-place ordering), never bad user
    input.
    """


class LogExhaustedError(ReproError):
    """The NVM log region ran out of space and the OS did not extend it."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent memory image."""
