"""The differential crash matrix: scheme × crash point × validation.

For every cell the harness runs a real simulation to an injected crash
point, powers the machine off, runs the scheme's §IV-B recovery, and
checks the rebuilt image *token-exactly* against the recovery oracle —
the architectural snapshot the system records at every commit (the
shadow functional memory image a crash-free machine would hold at that
checkpoint). Three cell kinds:

* ``plan`` — a :class:`repro.fault.plan.CrashPlan` crash (semantic event
  or instruction count); the recovered image must equal the oracle
  snapshot of the recovery's commit.
* ``nested`` — crash, then crash *again* mid-recovery (after a few of
  recovery's in-place writes have landed), then recover from the
  partially-recovered NVM: both passes must produce the same image and
  match the oracle (recovery is restartable/idempotent).
* ``fault`` — crash, then corrupt the durable log region (torn
  superblock, bit flips — :mod:`repro.fault.nvm_faults`); recovery must
  *detect* the corruption via ``RecoveryError``, never silently
  mis-recover.

A cell never raises on validation failure — it returns a
:class:`CrashOutcome` with ``status="failed"`` and the mismatch detail,
so one broken cell cannot hide the rest of the matrix.
"""

import dataclasses

from repro.common.errors import ReproError, RecoveryError
from repro.common.units import KB
from repro.core.recovery import check_recovered
from repro.fault.nvm_faults import INJECTORS
from repro.fault.plan import (
    SITE_ACS_SCAN,
    SITE_LLC_EVICTION,
    SITE_PRE_INPLACE,
    SITE_UNDO_FLUSH,
    CrashPlan,
)
from repro.sim.simulator import Simulation

#: Schemes with a real recovery procedure (ideal NVM has nothing to check).
RECOVERABLE_SCHEMES = ("picl", "frm", "journaling", "shadow", "thynvm")

#: Schemes keeping a durable log region (the NVM-corruption targets).
LOGGED_SCHEMES = ("picl", "frm")

#: References around an epoch boundary for the ±k crash points.
BOUNDARY_OFFSET = 7

#: Config overrides for the mid-ACS cells (see the event's comment).
ACS_OVERRIDES = {"llc_size_per_core": 512 * KB, "epoch_instructions": 15_000}


@dataclasses.dataclass
class CrashEvent:
    """One column of the matrix: a crash point and who it applies to.

    Some semantic windows only open under a particular memory behaviour
    (an ACS pass writes in place only when dirty lines outlive the ACS
    gap inside the LLC), so an event may pin its own benchmark, config
    overrides, or epoch count instead of the matrix defaults.
    """

    name: str
    kind: str  # "plan" | "nested" | "fault"
    schemes: tuple = RECOVERABLE_SCHEMES
    make_plan: object = None  # (config, n_instructions) -> CrashPlan
    injector: str = None  # key into nvm_faults.INJECTORS for kind="fault"
    benchmark: str = None
    overrides: dict = None
    epochs: int = None


@dataclasses.dataclass
class CrashOutcome:
    """One validated cell of the matrix."""

    scheme: str
    event: str
    status: str  # "ok" | "detected" | "failed"
    triggered: bool  # did the injected crash point actually fire?
    commit_id: object = None
    detail: str = ""

    @property
    def passed(self):
        return self.status in ("ok", "detected")


#: Benchmark for cells needing dirty LLC evictions / a populated log at
#: every preset scale: mcf's working set exceeds any scaled LLC and its
#: write traffic streams, so write-backs (and FRM log appends) never dry
#: up. gcc's write set fits the ci-scale LLC entirely — eviction windows
#: never open and FRM's per-epoch log is empty at a boundary crash.
EVICTION_BENCHMARK = "mcf"


def _late_crash(config, n_instructions):
    """A crash point in the middle of the last epoch.

    Late, so the live log is large — but mid-epoch, not at a boundary,
    so single-epoch schemes (FRM truncates its log at every commit) still
    hold entries for the corruption injectors to target.
    """
    span = config.epoch_instructions * config.n_cores
    return CrashPlan.at(max(1, n_instructions - span // 2))


def matrix_events(full=False):
    """The crash-point columns of the matrix.

    The quick matrix covers each semantic window once per applicable
    scheme; ``full`` widens it with more occurrences, boundary offsets
    and crash fractions (the nightly sweep).
    """
    events = [
        CrashEvent(
            "epoch1-%d" % BOUNDARY_OFFSET,
            "plan",
            make_plan=lambda c, n: CrashPlan.at_epoch_boundary(
                c, 1, -BOUNDARY_OFFSET
            ),
        ),
        CrashEvent(
            "epoch2+%d" % BOUNDARY_OFFSET,
            "plan",
            make_plan=lambda c, n: CrashPlan.at_epoch_boundary(
                c, 2, BOUNDARY_OFFSET
            ),
        ),
        CrashEvent(
            "mid-epoch",
            "plan",
            make_plan=lambda c, n: CrashPlan.at(int(n * 0.55)),
        ),
        CrashEvent(
            "llc-eviction",
            "plan",
            make_plan=lambda c, n: CrashPlan.on_event(SITE_LLC_EVICTION, 5),
            benchmark=EVICTION_BENCHMARK,
        ),
        CrashEvent(
            "undo-flush-torn",
            "plan",
            schemes=("picl",),
            make_plan=lambda c, n: CrashPlan.on_event(SITE_UNDO_FLUSH, 2),
        ),
        CrashEvent(
            "pre-inplace",
            "plan",
            schemes=("picl",),
            make_plan=lambda c, n: CrashPlan.on_event(SITE_PRE_INPLACE, 3),
            benchmark=EVICTION_BENCHMARK,
        ),
        CrashEvent(
            "mid-acs",
            "plan",
            schemes=("picl",),
            make_plan=lambda c, n: CrashPlan.on_event(SITE_ACS_SCAN, 2),
            # ACS writes in place only for dirty lines whose last store is
            # >= acs_gap epochs old and that are still LLC-resident: a
            # streaming write set that fits the LLC and wraps slower than
            # the gap. Stationary write sets (gcc) are always re-tagged or
            # evicted first and the window never opens.
            benchmark="libquantum",
            overrides=ACS_OVERRIDES,
            epochs=10,
        ),
        CrashEvent(
            "nested-recovery",
            "nested",
            schemes=LOGGED_SCHEMES,
            make_plan=_late_crash,
            benchmark=EVICTION_BENCHMARK,
        ),
    ]
    for injector in ("torn_superblock", "bitflip_token"):
        events.append(
            CrashEvent(
                "nvm-" + injector,
                "fault",
                schemes=LOGGED_SCHEMES,
                make_plan=_late_crash,
                injector=injector,
                benchmark=EVICTION_BENCHMARK,
            )
        )
    if full:
        for fraction in (15, 35, 75):
            events.append(
                CrashEvent(
                    "run-%d%%" % fraction,
                    "plan",
                    make_plan=lambda c, n, f=fraction: CrashPlan.at(
                        int(n * f / 100)
                    ),
                )
            )
        for epoch in (1, 2, 3):
            for offset in (-1, 1):
                events.append(
                    CrashEvent(
                        "epoch%d%+d" % (epoch, offset),
                        "plan",
                        make_plan=lambda c, n, e=epoch, o=offset: (
                            CrashPlan.at_epoch_boundary(c, e, o)
                        ),
                    )
                )
        for occurrence in (1, 3, 6):
            events.append(
                CrashEvent(
                    "undo-flush#%d" % occurrence,
                    "plan",
                    schemes=("picl",),
                    make_plan=lambda c, n, o=occurrence: CrashPlan.on_event(
                        SITE_UNDO_FLUSH, o
                    ),
                )
            )
            events.append(
                CrashEvent(
                    "mid-acs#%d" % occurrence,
                    "plan",
                    schemes=("picl",),
                    make_plan=lambda c, n, o=occurrence: CrashPlan.on_event(
                        SITE_ACS_SCAN, o
                    ),
                    benchmark="libquantum",
                    overrides=ACS_OVERRIDES,
                    epochs=10,
                )
            )
        events.append(
            CrashEvent(
                "undo-flush-tear0",
                "plan",
                schemes=("picl",),
                make_plan=lambda c, n: CrashPlan.on_event(
                    SITE_UNDO_FLUSH, 1, tear_entries=0
                ),
            )
        )
        for injector in ("bitflip_valid_till", "corrupt_header"):
            events.append(
                CrashEvent(
                    "nvm-" + injector,
                    "fault",
                    schemes=LOGGED_SCHEMES,
                    make_plan=_late_crash,
                    injector=injector,
                    benchmark=EVICTION_BENCHMARK,
                )
            )
    return events


# ----------------------------------------------------------------------
# per-cell validation
# ----------------------------------------------------------------------


def validate_recovery(sim):
    """Crash now, recover, and assert token-exact equality to the oracle.

    Returns the recovery's commit id; raises
    :class:`~repro.common.errors.RecoveryError` on any divergence or when
    the oracle snapshot is unavailable (reference window too shallow).
    """
    image, commit_id, reference = sim.crash_and_recover()
    if reference is None:
        raise RecoveryError(
            "no oracle snapshot for commit %r (reference window too "
            "shallow or tracking disabled)" % (commit_id,)
        )
    check_recovered(image, reference)
    return commit_id


def validate_nested_recovery(sim, interrupt_after=5):
    """Crash, recover, crash again mid-recovery, recover again.

    The first recovery's in-place writes are applied to NVM only up to
    ``interrupt_after`` lines (recovery itself is torn by a second power
    failure); the rerun from that partially-recovered image must converge
    to the identical image. Returns the commit id.
    """
    image1, commit_id, reference = sim.crash_and_recover()
    if reference is None:
        raise RecoveryError("no oracle snapshot for commit %r" % (commit_id,))
    check_recovered(image1, reference)
    controller = sim.scheme.controller
    snapshot = controller.snapshot_image()
    progress = sorted(
        (addr, token)
        for addr, token in image1.items()
        if snapshot.get(addr, 0) != token
    )
    for addr, token in progress[:interrupt_after]:
        controller.write_token(addr, token)
    image2, commit_id2 = sim.scheme.recover()
    if commit_id2 != commit_id:
        raise RecoveryError(
            "re-recovery targeted commit %r, first pass %r"
            % (commit_id2, commit_id)
        )
    check_recovered(image2, image1)
    check_recovered(image2, reference)
    return commit_id


def validate_fault_detection(sim, injector_name):
    """Corrupt the durable log post-crash; recovery must raise.

    Returns the injector's description of the corruption; raises
    :class:`~repro.common.errors.RecoveryError` if recovery *succeeds*
    over the corrupted log (a silent mis-recovery).
    """
    sim.system.crash()
    detail = INJECTORS[injector_name](sim.scheme.log)
    try:
        sim.scheme.recover()
    except RecoveryError:
        return detail
    raise RecoveryError(
        "silent mis-recovery: %s went undetected (%s)" % (injector_name, detail)
    )


def run_cell(config, scheme, event, benchmark, epochs, seed):
    """Run one (scheme, crash point) cell and validate it."""
    if event.overrides:
        config = dataclasses.replace(config, **event.overrides)
    if event.benchmark:
        benchmark = event.benchmark
    if event.epochs:
        epochs = event.epochs
    n_instructions = config.epoch_instructions * config.n_cores * epochs
    plan = event.make_plan(config, n_instructions) if event.make_plan else None
    sim = Simulation(config, scheme, [benchmark], n_instructions, seed=seed)
    sim.run(crash_plan=plan)
    triggered = sim.crashed
    outcome = CrashOutcome(scheme, event.name, "ok", triggered)
    try:
        if event.kind == "plan":
            # A plan whose site never fired completed the run; validating
            # recovery of the final state is still meaningful, but the
            # outcome records that the window was not exercised.
            outcome.commit_id = validate_recovery(sim)
        elif event.kind == "nested":
            outcome.commit_id = validate_nested_recovery(sim)
        elif event.kind == "fault":
            outcome.detail = validate_fault_detection(sim, event.injector)
            outcome.status = "detected"
        else:
            raise ReproError("unknown event kind %r" % event.kind)
    except ReproError as exc:
        outcome.status = "failed"
        outcome.detail = str(exc)
    return outcome


def run_crash_matrix(
    config,
    benchmark="gcc",
    epochs=8,
    seed=20180101,
    schemes=RECOVERABLE_SCHEMES,
    events=None,
    full=False,
):
    """Run the whole matrix; returns the list of :class:`CrashOutcome`.

    ``config`` must have ``track_reference=True`` with a reference depth
    covering the run's commits (the oracle lives in those snapshots).
    """
    if events is None:
        events = matrix_events(full=full)
    outcomes = []
    for event in events:
        for scheme in schemes:
            if event.schemes and scheme not in event.schemes:
                continue
            outcomes.append(
                run_cell(config, scheme, event, benchmark, epochs, seed)
            )
    return outcomes
