"""Deterministic, seeded chaos injection for the remote-worker fleet.

Where :mod:`repro.fault.plan` crashes the *simulator* at semantic sites,
this module misbehaves the *fleet*: a :class:`ChaosPlan` rides into a
worker process (``REPRO_CHAOS``) and fires faults at the worker's
trigger sites, each exercising one failure path the scheduler claims to
survive:

``kill``
    SIGKILL the worker moments after it starts a unit — the connection
    drops mid-unit, the daemon requeues via ``worker_lost``.
``freeze``
    Suppress heartbeats long enough for the lease to lapse while the
    process (and its TCP connection) stays alive — the daemon expires
    the lease, requeues, and must *discard* the zombie's late delivery.
``drop`` / ``garble``
    Replace a unit's result frame with a truncated / byte-corrupted
    line — the daemon's framing is now untrustworthy, so it must answer
    with a protocol error, drop the worker, and requeue.
``partition``
    Sever the connection just before delivery, let the worker compute
    and reconnect, then deliver under the *old* worker id — a stale
    result the exactly-once accounting must reject.

Same injection idiom as PR 3's :class:`~repro.fault.plan.CrashPlan`:
every action names a trigger *site*, fires on the site's Nth visit
(counting from 1), and is strictly single-use. Determinism comes from
:meth:`ChaosPlan.seeded`, which derives each action's occurrence from
``sha256(seed, kind)`` — the same seed always yields the same fault
schedule, so a chaos run that fails is a chaos run you can replay.
"""

import hashlib

#: Fault kinds and the worker trigger site each one fires at.
CHAOS_SITES = {
    "kill": "unit_start",
    "freeze": "heartbeat",
    "drop": "deliver",
    "garble": "deliver",
    "partition": "deliver",
}

#: Environment variable carrying a plan spec into worker processes.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosAction:
    """One single-use fault: ``kind`` fired at its site's Nth visit."""

    __slots__ = ("kind", "occurrence", "fired")

    def __init__(self, kind, occurrence):
        if kind not in CHAOS_SITES:
            raise ValueError(
                "unknown chaos kind %r (one of %s)"
                % (kind, ", ".join(sorted(CHAOS_SITES)))
            )
        occurrence = int(occurrence)
        if occurrence < 1:
            raise ValueError("occurrence counts from 1, got %d" % occurrence)
        self.kind = kind
        self.occurrence = occurrence
        self.fired = False

    @property
    def site(self):
        return CHAOS_SITES[self.kind]

    def describe(self):
        return "%s@%d%s" % (
            self.kind,
            self.occurrence,
            " (fired)" if self.fired else "",
        )


class ChaosPlan:
    """A schedule of single-use fleet faults, counted per trigger site.

    ``trigger(site)`` is called by the worker at each visit of a site
    and returns the (usually empty) list of fault kinds firing *now*.
    Thread-compatibility note: the worker calls ``trigger`` from its
    executor and heartbeat threads; counting is guarded by the caller
    holding the GIL per call, and each action fires exactly once.
    """

    def __init__(self, actions=()):
        self.actions = list(actions)
        self._counts = {}

    def __bool__(self):
        return bool(self.actions)

    def trigger(self, site):
        """Count one visit of ``site``; returns kinds that fire on it."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        fired = []
        for action in self.actions:
            if (
                not action.fired
                and action.site == site
                and action.occurrence == count
            ):
                action.fired = True
                fired.append(action.kind)
        return fired

    def pending(self):
        """Actions that have not fired yet."""
        return [action for action in self.actions if not action.fired]

    def describe(self):
        if not self.actions:
            return "no chaos"
        return ", ".join(action.describe() for action in self.actions)

    # ------------------------------------------------------------------
    # construction & transport
    # ------------------------------------------------------------------

    def to_spec(self):
        """The ``REPRO_CHAOS`` string round-tripping this plan."""
        return ",".join(
            "%s@%d" % (action.kind, action.occurrence)
            for action in self.actions
        )

    @classmethod
    def from_spec(cls, spec):
        """Parse ``"kill@2,garble@1"``; empty/None means no chaos."""
        actions = []
        for part in (spec or "").split(","):
            part = part.strip()
            if not part:
                continue
            if "@" in part:
                kind, _, occurrence = part.partition("@")
            else:
                kind, occurrence = part, 1
            actions.append(ChaosAction(kind.strip(), occurrence))
        return cls(actions)

    @classmethod
    def from_env(cls, environ=None):
        import os

        environ = os.environ if environ is None else environ
        return cls.from_spec(environ.get(CHAOS_ENV))

    @classmethod
    def seeded(cls, seed, kinds, lo=1, hi=4):
        """A deterministic plan: each kind's occurrence from the seed.

        ``sha256(seed | kind)`` picks an occurrence in ``[lo, hi]`` —
        stable across runs, processes, and platforms, so the chaos smoke
        can log its seed and any failure is replayable bit-for-bit.
        """
        if hi < lo:
            raise ValueError("need hi >= lo")
        actions = []
        for kind in kinds:
            digest = hashlib.sha256(
                ("%s|%s" % (seed, kind)).encode("utf-8")
            ).digest()
            occurrence = lo + int.from_bytes(digest[:4], "big") % (hi - lo + 1)
            actions.append(ChaosAction(kind, occurrence))
        return cls(actions)


def garble_line(line):
    """Deterministically corrupt one wire line (keeps the newline).

    Flips bits in the middle of the frame so JSON parsing (or the
    base64 payload inside it) fails server-side; the terminating
    newline is preserved so the daemon reads exactly one bad frame
    instead of fusing two.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    body = line.rstrip(b"\n")
    if not body:
        return b"\xff\n"
    middle = len(body) // 2
    corrupted = bytearray(body)
    for offset in range(min(8, len(body))):
        corrupted[(middle + offset) % len(body)] ^= 0x55
    return bytes(corrupted) + b"\n"


def truncate_line(line):
    """Drop the tail of a wire line (still newline-terminated)."""
    if isinstance(line, str):
        line = line.encode("utf-8")
    body = line.rstrip(b"\n")
    return body[: max(1, len(body) // 3)] + b"\n"
