"""Crash plans: where, semantically, the power fails.

The paper's recovery argument (§IV-B) must hold "no matter where the
crash lands", but instruction-count crash points only sample the *wide*
windows. The dangerous windows are narrow and semantic: mid-undo-flush
(only a prefix of the burst is durable), between an LLC eviction and its
bloom-guarded log write, after the log write but before the in-place data
write, and mid-ACS scan (some lines persisted in place, the PersistedEID
marker not yet advanced). A :class:`CrashPlan` names one of those windows
and fires a :class:`CrashSignal` the *n*-th time execution reaches it.

Components expose the windows as crash sites (a ``fault_plan`` attribute,
``None`` except under injection — the hot-path cost is one attribute
test on paths that already do NVM work):

* ``SITE_LLC_EVICTION`` — :meth:`repro.cache.hierarchy.CacheHierarchy._insert_llc`,
  after the victim is chosen and back-invalidated, before the scheme's
  ``write_back`` runs. All schemes share this site.
* ``SITE_UNDO_FLUSH`` — :meth:`repro.core.undo_buffer.UndoBuffer.flush`:
  a *torn* flush, only ``tear_entries`` of the burst reach the log.
* ``SITE_PRE_INPLACE`` — :meth:`repro.core.picl.PiclScheme.write_back`,
  between the bloom-guarded buffer flush and the in-place data write.
* ``SITE_ACS_SCAN`` — :meth:`repro.core.acs.AcsEngine._scan_range`, after
  each in-place write of the scan (so occurrence *n* crashes with *n*
  lines of the epoch persisted and the rest not).

Instruction-count plans (:meth:`CrashPlan.at_instructions` /
:meth:`CrashPlan.at_epoch_boundary`) reuse the simulator's existing
``crash_at_instructions`` path; crashes *during* recovery are modelled by
``recover_image(..., apply_limit=k)`` plus the harness's re-recovery.
"""

from repro.common.errors import ConfigurationError


class CrashSignal(BaseException):
    """Raised at an armed crash site; the simulator converts it to a crash.

    Derives from BaseException so no model-level ``except Exception`` can
    accidentally swallow a power failure.
    """

    def __init__(self, site):
        super().__init__(site)
        self.site = site


SITE_LLC_EVICTION = "llc_eviction"
SITE_UNDO_FLUSH = "undo_flush"
SITE_PRE_INPLACE = "pre_inplace"
SITE_ACS_SCAN = "acs_scan"

SEMANTIC_SITES = (
    SITE_LLC_EVICTION,
    SITE_UNDO_FLUSH,
    SITE_PRE_INPLACE,
    SITE_ACS_SCAN,
)


class CrashPlan:
    """One injected crash: a semantic site (or instruction count) + trigger.

    A plan is single-use, like a :class:`repro.sim.simulator.Simulation`:
    pass it to ``Simulation.run(crash_plan=...)``, which installs it on
    the components owning its site. ``fired`` records whether the site was
    ever reached — a plan that never fires lets the run complete, which
    the harness reports rather than hides.
    """

    def __init__(self, site, occurrence=1, tear_entries=None, at_instructions=None):
        if occurrence < 1:
            raise ConfigurationError("occurrence counts from 1")
        if site is not None and site not in SEMANTIC_SITES:
            raise ConfigurationError(
                "unknown crash site %r; known: %s"
                % (site, ", ".join(SEMANTIC_SITES))
            )
        if (site is None) == (at_instructions is None):
            raise ConfigurationError(
                "a plan names exactly one of: semantic site, instruction count"
            )
        self.site = site
        self.occurrence = occurrence
        self.tear_entries = tear_entries
        self.at_instructions = at_instructions
        self._seen = 0
        self.fired = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def at(cls, n_instructions):
        """Crash once the instruction count reaches ``n_instructions``."""
        return cls(None, at_instructions=int(n_instructions))

    @classmethod
    def at_epoch_boundary(cls, config, epoch, offset=0):
        """Crash ``offset`` references from the end of scheduled epoch
        ``epoch`` (1-based); negative offsets land just *before* the
        boundary fires, positive just after."""
        span = config.epoch_instructions * config.n_cores
        return cls.at(max(1, span * epoch + offset))

    @classmethod
    def on_event(cls, site, occurrence=1, tear_entries=None):
        """Crash the ``occurrence``-th time execution reaches ``site``."""
        return cls(site, occurrence=occurrence, tear_entries=tear_entries)

    # ------------------------------------------------------------------
    # component-facing protocol
    # ------------------------------------------------------------------

    def notify(self, site):
        """Crash-site beacon: raises :class:`CrashSignal` when due."""
        if site != self.site:
            return
        self._seen += 1
        if self._seen == self.occurrence:
            self.fired = True
            raise CrashSignal(site)

    def flush_tear(self, n_entries):
        """The undo-flush site's variant of :meth:`notify`.

        Returns how many of the burst's ``n_entries`` become durable
        before the power fails (the caller appends that prefix and then
        calls :meth:`trip`), or None when this flush survives intact.
        """
        if self.site != SITE_UNDO_FLUSH:
            return None
        self._seen += 1
        if self._seen != self.occurrence:
            return None
        if self.tear_entries is None:
            return n_entries // 2
        return max(0, min(self.tear_entries, n_entries))

    def trip(self, site):
        """Unconditionally fire (used after a torn prefix is applied)."""
        self.fired = True
        raise CrashSignal(site)

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, sim):
        """Attach this plan to every component exposing its crash site."""
        if self.site is None:
            return
        sim.hierarchy.fault_plan = self
        scheme = sim.scheme
        scheme.fault_plan = self
        buffer = getattr(scheme, "buffer", None)
        if buffer is not None:
            buffer.fault_plan = self
        acs = getattr(scheme, "acs", None)
        if acs is not None:
            acs.fault_plan = self

    def describe(self):
        """Short human-readable crash-point label."""
        if self.site is None:
            return "instructions=%d" % self.at_instructions
        label = "%s#%d" % (self.site, self.occurrence)
        if self.site == SITE_UNDO_FLUSH and self.tear_entries is not None:
            label += "(tear=%d)" % self.tear_entries
        return label

    def __repr__(self):
        return "CrashPlan(%s, fired=%s)" % (self.describe(), self.fired)
