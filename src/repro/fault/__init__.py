"""Crash-injection and recovery-validation subsystem.

* :mod:`repro.fault.plan` — :class:`CrashPlan` / :class:`CrashSignal`:
  semantic crash points injected through hooks in the simulator, PiCL,
  the undo buffer, the cache hierarchy, and the ACS engine.
* :mod:`repro.fault.nvm_faults` — NVM corruption injectors (torn
  superblock writes, bit flips in the log region) that recovery must
  *detect*, never silently mis-recover from.
* :mod:`repro.fault.harness` — the differential crash matrix: every
  scheme × crash point, recovered image checked token-exactly against
  the architectural oracle snapshot.
* :mod:`repro.fault.chaos` — seeded fleet-chaos plans (worker kill,
  heartbeat freeze, frame drop/garble, partition-then-rejoin) driven
  through the remote-worker trigger sites; ``benchmarks/chaos_smoke.py``
  is the differential harness on top.

Only the plan layer is imported eagerly: the harness pulls in the full
simulator, which itself threads ``CrashSignal`` through its run loop —
import :mod:`repro.fault.harness` explicitly where needed.
"""

from repro.fault.chaos import ChaosAction, ChaosPlan
from repro.fault.plan import (
    SEMANTIC_SITES,
    SITE_ACS_SCAN,
    SITE_LLC_EVICTION,
    SITE_PRE_INPLACE,
    SITE_UNDO_FLUSH,
    CrashPlan,
    CrashSignal,
)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "CrashPlan",
    "CrashSignal",
    "SEMANTIC_SITES",
    "SITE_ACS_SCAN",
    "SITE_LLC_EVICTION",
    "SITE_PRE_INPLACE",
    "SITE_UNDO_FLUSH",
]
