"""NVM corruption injectors for the durable log region.

Each injector mutates a live :class:`repro.mem.log_region.LogRegion` the
way a failing NVM DIMM would — *behind the bookkeeping's back*, so the
superblock checksums sealed at append time no longer match the stored
bytes. The safety condition the harness asserts is detection, not
tolerance: recovery over a corrupted log must raise
:class:`repro.common.errors.RecoveryError` rather than rebuild a wrong
image and call it a checkpoint.

All injectors return a short description of what they did, and raise
:class:`~repro.common.errors.ConfigurationError` when the log holds
nothing corruptible (so a test that silently injected nothing cannot
pass vacuously).
"""

from repro.common.errors import ConfigurationError


def _newest_block(log_region, min_entries=1):
    """The newest superblock holding at least ``min_entries`` entries."""
    for block in log_region.iter_superblocks_backward():
        if len(block.entries) >= min_entries:
            return block
    raise ConfigurationError(
        "no superblock with >= %d entries to corrupt (log holds %d entries)"
        % (min_entries, len(log_region))
    )


def tear_superblock(log_region, keep=None):
    """Torn superblock write: a suffix of the block's entries is lost.

    Models a power failure mid-way through the device committing a
    superblock: the block's header (checksum, max ValidTill) describes
    the full write, but only ``keep`` entries actually landed. Distinct
    from the *legitimate* torn flush of ``CrashPlan`` — there the
    surviving prefix is appended through the normal path and stays
    checksum-consistent; here the header lies about the bytes.
    """
    block = _newest_block(log_region, min_entries=2)
    total = len(block.entries)
    if keep is None:
        keep = total // 2
    keep = max(0, min(keep, total - 1))
    # Mutate the entry list directly: the checksum and max_valid_till
    # sealed by add() now describe entries that no longer exist.
    del block.entries[keep:]
    return "tore newest superblock: kept %d of %d entries" % (keep, total)


def flip_entry_bit(log_region, field="token", bit=0, entry_index=-1):
    """Flip one bit of one field of one logged entry in place."""
    block = _newest_block(log_region)
    entry = block.entries[entry_index]
    if not hasattr(entry, field):
        raise ConfigurationError("undo entries have no field %r" % field)
    old = getattr(entry, field)
    setattr(entry, field, old ^ (1 << bit))
    return "flipped bit %d of %s (%d -> %d)" % (
        bit,
        field,
        old,
        getattr(entry, field),
    )


def corrupt_superblock_header(log_region, bit=0):
    """Flip a bit in a superblock's max-ValidTill header.

    The header drives recovery's early-stop check, so a silent downward
    flip on the newest block would skip every live entry — exactly the
    mis-recovery the per-block verification exists to catch.
    """
    block = _newest_block(log_region)
    old = block.max_valid_till
    block.max_valid_till = old ^ (1 << bit)
    return "flipped bit %d of max_valid_till (%d -> %d)" % (
        bit,
        old,
        block.max_valid_till,
    )


#: The injector suite the crash matrix runs, name -> callable.
INJECTORS = {
    "torn_superblock": tear_superblock,
    "bitflip_token": lambda log: flip_entry_bit(log, "token", bit=3),
    "bitflip_valid_till": lambda log: flip_entry_bit(log, "valid_till", bit=1),
    "corrupt_header": corrupt_superblock_header,
}
