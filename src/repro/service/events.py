"""Structured event log: what happened to every point, durably.

Each line of ``events.jsonl`` is one JSON record with at least ``t``
(unix time), ``event``, and usually ``digest`` — the same content-hash
the result cache and checkpoint journal key on, so one digest can be
followed across enqueue, dispatch, retries, and completion. The log is
append-only across daemon restarts, which is exactly what lets tests
(and operators) assert global properties like "this digest was executed
once, ever, no matter how many clients asked or how often the daemon
was kicked over".

Event vocabulary (producers in :mod:`repro.service.scheduler` /
``server``): ``enqueue``, ``dispatch``, ``done``, ``cache_hit``,
``journal_hit``, ``join`` (deduped onto an in-flight execution),
``retry`` (transient worker crash/timeout, attempt counted), ``failed``,
``batch_accepted``, ``batch_done``, ``batch_recovered``,
``spool_corrupt``, ``serve``, ``stop``.
"""

import collections
import json
import os
import threading
import time


class EventLog:
    """Thread-safe append-only JSONL event sink with in-memory counters.

    ``path=None`` keeps events in memory only (unit tests). Writes are
    line-buffered appends under a lock: scheduler callbacks run on the
    event loop *and* on executor threads, and interleaved torn lines
    would defeat the whole point of the log.
    """

    def __init__(self, path=None):
        self.path = path
        self.counts = collections.Counter()
        self._lock = threading.Lock()
        self._memory = []
        if path:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)

    def append(self, event, **fields):
        """Record one event; returns the full record dict."""
        record = {"t": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.counts[event] += 1
            self._memory.append(record)
            if self.path:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return record

    def tail(self, n=20):
        """The most recent ``n`` records (memory-backed, this process)."""
        with self._lock:
            return list(self._memory[-n:])

    def snapshot(self):
        """Counter totals as a plain dict (for ``status`` responses)."""
        with self._lock:
            return dict(self.counts)


def read_events(path):
    """Parse an ``events.jsonl`` file back into a list of records.

    Tolerates a torn final line (daemon killed mid-append).
    """
    records = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records


def executions_per_digest(records):
    """``{digest: number of completed executions}`` from event records.

    The dedupe property under test: every digest's count is exactly 1 —
    cache hits, journal hits, and joins serve every other request.
    """
    counts = collections.Counter()
    for record in records:
        if record.get("event") == "done" and record.get("digest"):
            counts[record["digest"]] += 1
    return counts
