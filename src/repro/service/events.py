"""Structured event log: what happened to every point, durably.

Each line of ``events.jsonl`` is one JSON record with at least ``t``
(unix time), ``event``, and usually ``digest`` — the same content-hash
the result cache and checkpoint journal key on, so one digest can be
followed across enqueue, dispatch, retries, and completion. The log is
append-only across daemon restarts, which is exactly what lets tests
(and operators) assert global properties like "this digest was executed
once, ever, no matter how many clients asked or how often the daemon
was kicked over".

To keep a long-lived daemon's log bounded, the sink rotates: when the
active file passes ``max_bytes`` it is renamed to ``events.jsonl.1``
(older segments shifting to ``.2``, ``.3``, …) and segments past the
retention count are deleted. :func:`read_events` replays *all retained
segments oldest-first*, so rotation is invisible to consumers until a
segment actually ages out. ``REPRO_EVENTS_MAX_BYTES`` /
``REPRO_EVENTS_SEGMENTS`` tune both knobs; ``REPRO_EVENTS_MAX_BYTES=0``
disables rotation entirely.

Event vocabulary (producers in :mod:`repro.service.scheduler` /
``server``): ``enqueue``, ``dispatch``, ``done``, ``cache_hit``,
``journal_hit``, ``join`` (deduped onto an in-flight execution),
``retry`` (transient worker crash/timeout, attempt counted), ``failed``,
``batch_accepted``, ``batch_done``, ``batch_recovered``,
``spool_corrupt``, ``serve``, ``stop``; fleet events ``worker_register``,
``worker_expired`` (lease lapsed), ``worker_lost`` (connection died),
``worker_quarantine`` (circuit breaker tripped), ``assign``, ``requeue``,
``stale_result`` (zombie delivery discarded), ``unit_error``; plus the
observability events ``protocol_error``, ``client_disconnect``,
``io_error``, and ``signal_handler_unavailable``.
"""

import collections
import json
import os
import threading
import time

#: Rotate the active segment once it passes this size (bytes).
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Rotated segments kept (``events.jsonl.1`` … ``.N``) besides the
#: active file.
DEFAULT_SEGMENTS = 4


def rotation_env():
    """``(max_bytes, segments)`` from the environment (or defaults)."""
    try:
        max_bytes = int(os.environ.get("REPRO_EVENTS_MAX_BYTES", ""))
    except ValueError:
        max_bytes = DEFAULT_MAX_BYTES
    try:
        segments = int(os.environ.get("REPRO_EVENTS_SEGMENTS", ""))
    except ValueError:
        segments = DEFAULT_SEGMENTS
    return max(0, max_bytes), max(1, segments)


class EventLog:
    """Thread-safe append-only JSONL event sink with in-memory counters.

    ``path=None`` keeps events in memory only (unit tests). Writes are
    line-buffered appends under a lock: scheduler callbacks run on the
    event loop *and* on executor threads, and interleaved torn lines
    would defeat the whole point of the log. ``max_bytes=0`` disables
    rotation; both rotation knobs default to the environment.
    """

    def __init__(self, path=None, max_bytes=None, segments=None):
        self.path = path
        env_max_bytes, env_segments = rotation_env()
        self.max_bytes = env_max_bytes if max_bytes is None else max_bytes
        self.segments = env_segments if segments is None else max(1, segments)
        self.counts = collections.Counter()
        self._lock = threading.Lock()
        self._memory = []
        self._size = 0
        if path:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            try:
                self._size = os.path.getsize(path)
            except OSError:
                self._size = 0

    def append(self, event, **fields):
        """Record one event; returns the full record dict."""
        record = {"t": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.counts[event] += 1
            self._memory.append(record)
            if self.path:
                if self.max_bytes and self._size >= self.max_bytes:
                    self._rotate()
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                self._size += len(line) + 1
        return record

    def _rotate(self):
        """Shift ``path`` -> ``.1`` -> ``.2`` …, dropping past retention.

        Caller holds the lock. Rename failures are swallowed (a log must
        never take the daemon down) but leave the size counter accurate
        so the next append retries the rotation.
        """
        for index in range(self.segments, 0, -1):
            older = "%s.%d" % (self.path, index)
            if index == self.segments:
                try:
                    os.unlink(older)
                except OSError:
                    pass
                continue
            newer = "%s.%d" % (self.path, index + 1)
            try:
                os.replace(older, newer)
            except FileNotFoundError:
                continue
            except OSError:
                return
        try:
            os.replace(self.path, "%s.1" % self.path)
        except OSError:
            return
        self._size = 0

    def tail(self, n=20):
        """The most recent ``n`` records (memory-backed, this process)."""
        with self._lock:
            return list(self._memory[-n:])

    def snapshot(self):
        """Counter totals as a plain dict (for ``status`` responses)."""
        with self._lock:
            return dict(self.counts)


def event_segments(path):
    """All retained segment paths for ``path``, oldest first."""
    suffixes = []
    index = 1
    while os.path.exists("%s.%d" % (path, index)):
        suffixes.append("%s.%d" % (path, index))
        index += 1
    return list(reversed(suffixes)) + [path]


def read_events(path):
    """Parse an event log back into a list of records, oldest first.

    Reads *every retained rotation segment* (``path.N`` … ``path.1``,
    then ``path``), so replay consumers see one continuous history.
    Tolerates a torn final line (daemon killed mid-append) and missing
    files.
    """
    records = []
    for segment in event_segments(path):
        try:
            handle = open(segment, "r", encoding="utf-8")
        except FileNotFoundError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    return records


def executions_per_digest(records):
    """``{digest: number of completed executions}`` from event records.

    The dedupe property under test: every digest's count is exactly 1 —
    cache hits, journal hits, and joins serve every other request. Only
    *accepted* completions emit ``done``; a zombie worker's discarded
    delivery does not count, which is precisely the exactly-once claim.
    """
    counts = collections.Counter()
    for record in records:
        if record.get("event") == "done" and record.get("digest"):
            counts[record["digest"]] += 1
    return counts
