"""Sweep-farm service: a scheduler daemon in front of the sweep runner.

The fault-tolerant machinery in :mod:`repro.sim.parallel` (content-
addressed :class:`~repro.sim.parallel.ResultCache`, crash-surviving
:class:`~repro.sim.parallel.SweepCheckpoint`, killable isolated batch
execution with bounded retries) already is most of a work-queue backend.
This package puts a scheduler in front of it:

* :class:`~repro.service.server.SweepService` — an asyncio daemon that
  accepts figure/sweep batches from many concurrent clients over a unix
  socket (or localhost TCP), dedupes work per ``point_digest`` against
  the shared cache, journal, and in-flight set (one execution no matter
  how many clients ask), fans execution over isolated worker processes
  with per-client round-robin fairness, and streams results back as
  points finish.
* :class:`~repro.service.scheduler.Scheduler` — the event-loop-side
  brain: dedupe, fairness queues, dispatch, write-through to cache and
  checkpoint journal.
* :class:`~repro.service.client.ServiceClient` — a small synchronous
  JSON-line client (``repro submit`` / ``repro status`` use it).
* :class:`~repro.service.events.EventLog` — the structured per-point
  event journal (enqueue/dispatch/cache_hit/join/retry/crash/done) that
  makes the farm observable and lets tests assert "exactly one
  execution per digest".
* :class:`~repro.service.worker.SweepWorker` — a remote fleet member
  (``repro worker``): dials the daemon, registers capabilities, runs
  assigned units under a heartbeat-renewed lease.
* :class:`~repro.service.placement.HostTable` — lease-based liveness,
  per-host circuit breakers, and least-loaded same-trace-affine
  placement for the fleet. Zero registered workers degrades the daemon
  to the local thread-pool path bit-identically.

Durability: every accepted batch is spooled to disk and every finished
point is appended to the checkpoint journal before the client sees it, so
a daemon killed mid-batch resumes on restart with no lost or duplicated
points — finished points replay from the journal, unfinished ones
re-execute.

The protocol carries pickled ``RunPoint``/result payloads; like the
on-disk cache, it is for *local, trusted* clients only.
"""

from repro.service.client import ServiceClient, wait_until_ready
from repro.service.events import EventLog, read_events
from repro.service.placement import HostTable
from repro.service.scheduler import Scheduler
from repro.service.server import (
    DEFAULT_SPOOL_DIR,
    SweepService,
    default_socket_path,
)
from repro.service.worker import SweepWorker

__all__ = [
    "DEFAULT_SPOOL_DIR",
    "EventLog",
    "HostTable",
    "Scheduler",
    "ServiceClient",
    "SweepService",
    "SweepWorker",
    "default_socket_path",
    "read_events",
    "wait_until_ready",
]
