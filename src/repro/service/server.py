"""The sweep-service daemon: sockets, spooling, and restart recovery.

A :class:`SweepService` listens on a unix socket (default
``<spool>/service.sock``) or localhost TCP and speaks the JSON-line
protocol of :mod:`repro.service.protocol`. Its durable state lives in
one *spool directory*:

``journal.ckpt``
    A :class:`~repro.sim.parallel.SweepCheckpoint` of every finished
    point (digest -> result), appended before any client sees the
    result. Survives SIGKILL; a torn tail is truncated on reload.
``batches/<id>.pkl``
    One pickled point-list per accepted batch, written before the batch
    is scheduled and removed once every point has settled. A daemon
    killed mid-batch finds the file on restart and re-submits the batch
    to itself: journaled points replay instantly, the rest re-execute —
    no lost points, no duplicated executions.
``events.jsonl``
    The append-only structured event log (append-across-restarts).

The shared result cache (``REPRO_CACHE_DIR``) is *not* under the spool:
it outlives any daemon and is how independent daemons and plain
``run_points`` sweeps share work.
"""

import asyncio
import os
import pickle
import signal
import tempfile

from repro.service import protocol
from repro.service.events import EventLog
from repro.service.scheduler import Scheduler
from repro.sim.parallel import (
    DEFAULT_BACKOFF,
    ENGINE_FLAGS,
    ResultCache,
    SweepCheckpoint,
)

DEFAULT_SPOOL_DIR = ".repro_service"

#: Client name under which restart-recovered batches are scheduled.
RECOVERY_CLIENT = "recovered"

#: Per-connection stream buffer: a whole-figure submit is one JSON line
#: of pickled points (a ci fig09 batch is ~1 MB), far past asyncio's
#: 64 KiB default readline limit.
STREAM_LIMIT = 64 * 1024 * 1024


def default_socket_path(spool_dir=None):
    """Where the daemon listens when no socket/TCP endpoint is given."""
    return os.path.join(spool_dir or DEFAULT_SPOOL_DIR, "service.sock")


class SweepService:
    """One daemon instance. ``tcp`` is a ``(host, port)`` pair; when
    None the unix socket at ``socket_path`` (default: inside the spool
    directory) is used. ``runner`` is passed through to the
    :class:`Scheduler` for tests.
    """

    def __init__(
        self,
        spool_dir=None,
        socket_path=None,
        tcp=None,
        jobs=None,
        cache=None,
        timeout=None,
        retries=None,
        backoff=DEFAULT_BACKOFF,
        runner=None,
        lease=None,
    ):
        self.spool_dir = spool_dir or DEFAULT_SPOOL_DIR
        self.batch_dir = os.path.join(self.spool_dir, "batches")
        os.makedirs(self.batch_dir, exist_ok=True)
        self.tcp = tcp
        self.socket_path = (
            None if tcp else (socket_path or default_socket_path(self.spool_dir))
        )
        self.events = EventLog(os.path.join(self.spool_dir, "events.jsonl"))
        self.checkpoint = SweepCheckpoint(
            os.path.join(self.spool_dir, "journal.ckpt")
        )
        self.cache = cache if cache is not None else ResultCache.from_env()
        self.scheduler = Scheduler(
            jobs=jobs,
            cache=self.cache,
            checkpoint=self.checkpoint,
            events=self.events,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            runner=runner,
            lease=lease,
        )
        self._server = None
        self._stopping = None
        self._clients = 0
        self._background = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        """Bind the socket, start the scheduler, replay the spool."""
        self._stopping = asyncio.Event()
        self.scheduler.start()
        self._recover_spool()
        if self.tcp:
            host, port = self.tcp
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port, limit=STREAM_LIMIT
            )
        else:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path, limit=STREAM_LIMIT
            )
        self.events.append(
            "serve",
            endpoint=list(self.tcp) if self.tcp else self.socket_path,
            jobs=self.scheduler.jobs,
            journaled=len(self.checkpoint),
        )

    def request_stop(self):
        """Ask the daemon to exit (signal handlers, ``shutdown`` op)."""
        if self._stopping is not None:
            self._stopping.set()

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        await self.scheduler.close()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            except OSError as exc:
                # Swallowed (shutdown must finish) but observable.
                self.events.append(
                    "io_error", op="unlink_socket", error=str(exc)
                )
        self.events.append("stop")

    async def run(self):
        """Serve until :meth:`request_stop`; returns an exit code."""
        await self.start()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError) as exc:
                # Non-main-thread / non-unix loops: the daemon still
                # works, it just cannot catch this signal — say so.
                self.events.append(
                    "signal_handler_unavailable",
                    signal=int(signum),
                    error=str(exc),
                )
        try:
            await self._stopping.wait()
        finally:
            await self.close()
        return 0

    # ------------------------------------------------------------------
    # the batch spool (crash durability for accepted work)
    # ------------------------------------------------------------------

    def _spool_path(self, batch_id):
        return os.path.join(self.batch_dir, "%s.pkl" % batch_id)

    def _spool(self, batch_id, points, env=None):
        """Persist an accepted batch atomically before scheduling it.

        The spool record is a dict carrying the point list plus the
        client's engine-flag capture, so a restart re-runs the batch
        under the same engine selection the client asked for. (Older
        spools pickled a bare point list; recovery still reads those.)
        """
        fd, tmp_path = tempfile.mkstemp(dir=self.batch_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    {"points": list(points), "env": env},
                    handle,
                    pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp_path, self._spool_path(batch_id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError as exc:
                self.events.append(
                    "io_error", op="unlink_spool_tmp", error=str(exc)
                )
            raise

    def _unspool(self, batch_id):
        try:
            os.unlink(self._spool_path(batch_id))
        except FileNotFoundError:
            pass

    def _recover_spool(self):
        """Re-submit every batch the previous daemon left unfinished."""
        for name in sorted(os.listdir(self.batch_dir)):
            if not name.endswith(".pkl"):
                continue
            batch_id = name[: -len(".pkl")]
            try:
                with open(os.path.join(self.batch_dir, name), "rb") as handle:
                    record = pickle.load(handle)
            except Exception as exc:
                self.events.append(
                    "spool_corrupt", batch=batch_id, error=str(exc)
                )
                self._unspool(batch_id)
                continue
            if isinstance(record, dict):
                points = record["points"]
                env = record.get("env")
            else:
                # Pre-env spool format: a bare point list.
                points = record
                env = None
            entries = self.scheduler.submit(
                RECOVERY_CLIENT, points, batch_id=batch_id, env=env
            )
            self.events.append(
                "batch_recovered", batch=batch_id, n_points=len(points)
            )
            self._settle_in_background(batch_id, entries)

    def _settle_in_background(self, batch_id, entries):
        """Unspool the batch once every point settles, client or no."""

        async def settle():
            await asyncio.gather(
                *(future for future, _source in entries),
                return_exceptions=True,
            )
            self._unspool(batch_id)

        task = asyncio.ensure_future(settle())
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    # ------------------------------------------------------------------
    # client connections
    # ------------------------------------------------------------------

    async def _handle_client(self, reader, writer):
        self._clients += 1
        client = "client-%d" % self._clients
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError as exc:
                    # A line past STREAM_LIMIT: the buffered tail cannot
                    # be resynchronized, so answer cleanly and hang up —
                    # the daemon itself stays healthy.
                    self.events.append(
                        "protocol_error", client=client, error=str(exc)
                    )
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "error": "frame too large: %s" % exc,
                            "fatal": True,
                        },
                    )
                    break
                if not line:
                    break
                try:
                    message = protocol.loads(line)
                except ValueError as exc:
                    self.events.append(
                        "protocol_error", client=client, error=str(exc)
                    )
                    await self._send(
                        writer, {"event": "error", "error": "bad message: %s" % exc}
                    )
                    continue
                op = message.get("op")
                if op == "ping":
                    await self._send(
                        writer,
                        {"event": "pong", "protocol": protocol.PROTOCOL_VERSION},
                    )
                elif op == "status":
                    await self._send(
                        writer, {"event": "status", "data": self._status()}
                    )
                elif op == "shutdown":
                    await self._send(writer, {"event": "bye"})
                    self.request_stop()
                    break
                elif op == "submit":
                    await self._handle_submit(message, writer, client)
                elif op == "register":
                    # The connection becomes a worker channel for the
                    # rest of its life; returns when the worker is gone.
                    await self._handle_worker(message, reader, writer)
                    break
                else:
                    await self._send(
                        writer,
                        {"event": "error", "error": "unknown op %r" % (op,)},
                    )
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            # Client went away; any scheduled work continues.
            self.events.append(
                "client_disconnect", client=client, error=str(exc)
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError) as exc:
                self.events.append(
                    "io_error", op="close_client", client=client, error=str(exc)
                )

    async def _handle_worker(self, message, reader, writer):
        """Drive one remote-worker connection until it dies.

        The worker registered on what began as a client connection; from
        here the connection is a full-duplex worker channel: the
        scheduler pushes ``assign`` frames through ``send`` whenever
        placement picks this host, and this loop consumes the worker's
        heartbeats, results, and errors. Liveness is the lease's job —
        this loop never times out a read; it only reacts to EOF, resets,
        and garbled frames (all of which mean the *connection* is dead
        or untrustworthy, and the scheduler requeues the host's units).
        """

        def send(msg):
            writer.write(protocol.dumps(msg))

        def close():
            writer.close()

        def admit(msg):
            host = self.scheduler.worker_register(
                str(msg.get("name") or "worker"),
                msg.get("capabilities"),
                send=send,
                close=close,
            )
            send(
                {
                    "event": "registered",
                    "worker": host.worker_id,
                    "lease": self.scheduler.lease,
                    "heartbeat": self.scheduler.heartbeat_interval,
                    "protocol": protocol.PROTOCOL_VERSION,
                }
            )
            return host

        worker_id = admit(message).worker_id
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError as exc:
                    self.events.append(
                        "protocol_error", worker=worker_id, error=str(exc)
                    )
                    self.scheduler.worker_lost(worker_id)
                    return
                if not line:
                    self.scheduler.worker_lost(worker_id)
                    return
                try:
                    msg = protocol.loads(line)
                except ValueError as exc:
                    # A garbled frame means the stream can no longer be
                    # trusted: drop the worker (its units requeue) and
                    # let it reconnect with a clean channel.
                    self.events.append(
                        "protocol_error", worker=worker_id, error=str(exc)
                    )
                    self.scheduler.worker_lost(worker_id)
                    return
                op = msg.get("op")
                if op == "heartbeat":
                    ok = self.scheduler.worker_heartbeat(msg.get("worker"))
                    send({"event": "lease", "ok": ok})
                elif op == "register":
                    # A zombie re-admitting itself after its lease
                    # lapsed; it gets a brand-new worker id.
                    worker_id = admit(msg).worker_id
                elif op == "unit_result":
                    try:
                        results = [
                            protocol.decode_payload(text)
                            for text in msg.get("results") or []
                        ]
                    except Exception as exc:
                        self.events.append(
                            "protocol_error",
                            worker=worker_id,
                            unit=msg.get("unit"),
                            error="undecodable results: %s" % exc,
                        )
                        self.scheduler.worker_lost(worker_id)
                        return
                    accepted = self.scheduler.worker_result(
                        msg.get("worker"), msg.get("unit"), results
                    )
                    send(
                        {
                            "event": "ack",
                            "unit": msg.get("unit"),
                            "accepted": accepted,
                        }
                    )
                elif op == "unit_error":
                    accepted = self.scheduler.worker_error(
                        msg.get("worker"),
                        msg.get("unit"),
                        msg.get("error"),
                        transient=bool(msg.get("transient", True)),
                    )
                    send(
                        {
                            "event": "ack",
                            "unit": msg.get("unit"),
                            "accepted": accepted,
                        }
                    )
                else:
                    send(
                        {"event": "error", "error": "unknown worker op %r" % (op,)}
                    )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self.events.append(
                "io_error", op="worker_channel", worker=worker_id, error=str(exc)
            )
            self.scheduler.worker_lost(worker_id)

    async def _send(self, writer, message):
        writer.write(protocol.dumps(message))
        await writer.drain()

    def _status(self):
        status = self.scheduler.status()
        status["spooled_batches"] = len(
            [n for n in os.listdir(self.batch_dir) if n.endswith(".pkl")]
        )
        status["clients_seen"] = self._clients
        return status

    async def _handle_submit(self, message, writer, client):
        batch_id = message.get("batch") or os.urandom(8).hex()
        env = message.get("env")
        if env is not None:
            if not isinstance(env, dict):
                await self._send(
                    writer,
                    {"event": "error", "error": "env must be an object"},
                )
                return
            # Sanitize: only the known engine flags may travel into
            # worker environments — a submit is not a general env
            # injection channel.
            env = {
                name: str(value)
                for name, value in env.items()
                if name in ENGINE_FLAGS
            }
        keys = None
        if message.get("points") is not None:
            try:
                points = [
                    protocol.decode_payload(text) for text in message["points"]
                ]
            except Exception as exc:
                await self._send(
                    writer,
                    {"event": "error", "error": "undecodable points: %s" % exc},
                )
                return
        elif message.get("figure"):
            from repro.experiments.batches import figure_points

            try:
                pairs = figure_points(
                    message["figure"],
                    preset=message.get("preset"),
                    benchmarks=message.get("benchmarks"),
                    epochs=message.get("epochs"),
                )
            except Exception as exc:
                await self._send(
                    writer,
                    {"event": "error", "error": "cannot decompose: %s" % exc},
                )
                return
            keys = [list(key) for key, _point in pairs]
            points = [point for _key, point in pairs]
        else:
            await self._send(
                writer,
                {"event": "error", "error": "submit needs points or figure"},
            )
            return
        self._spool(batch_id, points, env=env)
        entries = self.scheduler.submit(
            client, points, batch_id=batch_id, env=env
        )
        self._settle_in_background(batch_id, entries)
        self.events.append(
            "batch_accepted",
            batch=batch_id,
            client=client,
            n_points=len(points),
            sources={
                source: sum(1 for _f, s in entries if s == source)
                for source in ("journal", "cache", "joined", "queued")
            },
        )
        await self._send(
            writer,
            {
                "event": "accepted",
                "batch": batch_id,
                "n_points": len(points),
                "keys": keys,
                "protocol": protocol.PROTOCOL_VERSION,
            },
        )

        async def waiter(index, future, source):
            try:
                # shield(): this future may be shared with other clients'
                # submissions (that is the dedupe); a disconnect-driven
                # cancellation of this waiter must not cancel the work.
                result = await asyncio.shield(future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                return {
                    "event": "point_error",
                    "batch": batch_id,
                    "index": index,
                    "error": str(exc),
                }
            return {
                "event": "point",
                "batch": batch_id,
                "index": index,
                "source": source,
                "result": protocol.encode_payload(result),
            }

        tasks = [
            asyncio.ensure_future(waiter(index, future, source))
            for index, (future, source) in enumerate(entries)
        ]
        failures = 0
        try:
            for next_done in asyncio.as_completed(tasks):
                point_message = await next_done
                if point_message["event"] == "point_error":
                    failures += 1
                await self._send(writer, point_message)
        except (ConnectionError, asyncio.CancelledError):
            for task in tasks:
                task.cancel()
            raise
        summary = {
            "event": "done",
            "batch": batch_id,
            "n_points": len(points),
            "failures": failures,
            "sources": {
                source: sum(1 for _f, s in entries if s == source)
                for source in ("journal", "cache", "joined", "queued")
            },
        }
        self.events.append(
            "batch_done", batch=batch_id, client=client, failures=failures
        )
        await self._send(writer, summary)
