"""Synchronous JSON-line client for the sweep service.

``repro submit``/``repro status`` (and the tests) talk to the daemon
through this. It is deliberately plain blocking-socket code: a client
submits, then sits in a read loop collecting streamed ``point`` events
until ``done`` — reassembling completion-ordered arrivals back into
input order by each event's ``index``.

Reads carry a deadline (``REPRO_CLIENT_TIMEOUT``, default 300 s, ``0``
disables) instead of blocking forever on a daemon that hung after
``accepted``. When a streaming read times out the client does not give
up: it reconnects and *re-submits the same batch id and points*, which
is safe and cheap by construction — the scheduler answers every
already-finished point from its journal and joins every in-flight one,
so the resumed stream replays instantly up to where it died and no
point is ever executed twice.
"""

import os
import socket
import time

from repro.service import protocol
from repro.service.server import default_socket_path
from repro.sim.parallel import PointExecutionError, engine_env

#: Default streaming-read deadline in seconds (REPRO_CLIENT_TIMEOUT).
DEFAULT_CLIENT_TIMEOUT = 300.0

#: Reconnect-and-resume attempts per stream before giving up.
RESUME_ATTEMPTS = 3


def client_timeout():
    """The configured read deadline, or None when disabled."""
    raw = os.environ.get("REPRO_CLIENT_TIMEOUT")
    if raw is None or not raw.strip():
        return DEFAULT_CLIENT_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_CLIENT_TIMEOUT
    return value if value > 0 else None


class ServiceUnavailableError(ConnectionError):
    """No daemon is answering at the requested endpoint."""


class ServiceClient:
    """One connection to a running daemon.

    ``tcp`` is a ``(host, port)`` pair; otherwise the unix socket at
    ``socket_path`` (default: the default spool's socket) is used.
    ``read_timeout`` overrides ``REPRO_CLIENT_TIMEOUT`` (``0`` disables
    the deadline). Usable as a context manager.
    """

    def __init__(
        self, socket_path=None, tcp=None, connect_timeout=30.0, read_timeout=None
    ):
        self._socket_path = socket_path
        self._tcp = tcp
        self._connect_timeout = connect_timeout
        if read_timeout is None:
            self.read_timeout = client_timeout()
        else:
            self.read_timeout = read_timeout if read_timeout > 0 else None
        self._sock = None
        self._file = None
        self._connect()
        self.last_summary = None
        self.last_sources = None
        self.resumes = 0

    def _connect(self):
        if self._tcp:
            host, port = self._tcp
            self._sock = socket.create_connection(
                (host, int(port)), timeout=self._connect_timeout
            )
        else:
            path = self._socket_path or default_socket_path()
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self._connect_timeout)
            self._sock.connect(path)
        # Streaming reads wait as long as the simulation does — but not
        # forever: the deadline turns a wedged daemon into an exception
        # (and, mid-stream, into a reconnect-and-resume).
        self._sock.settimeout(self.read_timeout)
        self._file = self._sock.makefile("rwb")

    def _reconnect(self):
        """Abandon the connection (buffered state and all) and redial."""
        self.close()
        self._connect()

    def close(self):
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _send(self, message):
        self._file.write(protocol.dumps(message))
        self._file.flush()

    def _recv(self):
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        message = protocol.loads(line)
        if message.get("event") == "error":
            raise PointExecutionError("server error: %s" % message.get("error"))
        return message

    # ------------------------------------------------------------------
    # simple ops
    # ------------------------------------------------------------------

    def ping(self):
        """True if the daemon answers; raises on a dead endpoint."""
        self._send({"op": "ping"})
        return self._recv().get("event") == "pong"

    def status(self):
        """The daemon's status snapshot (queues, events, cache, spool)."""
        self._send({"op": "status"})
        return self._recv()["data"]

    def shutdown(self):
        """Ask the daemon to exit cleanly."""
        self._send({"op": "shutdown"})
        try:
            self._recv()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------

    def submit_points(self, points, batch_id=None, on_event=None, env=None):
        """Run ``points`` on the farm; returns results in input order.

        Streams partial results (``on_event`` sees every raw ``point`` /
        ``point_error`` message as it arrives). Raises
        :class:`PointExecutionError` if any point terminally failed,
        after the stream completes.

        ``env`` overrides the engine-flag capture shipped with the batch;
        by default the *client's* live environment is captured
        (:func:`repro.sim.parallel.engine_env`), so ``REPRO_VECTOR`` /
        ``REPRO_BATCH_MISS`` / ``REPRO_BRUTE_SCAN`` pinned at the client
        govern the daemon's workers for exactly this batch.
        """
        points = list(points)
        batch_id = batch_id or os.urandom(8).hex()
        if env is None:
            env = engine_env()
        message = protocol.submit_points(batch_id, points, env=env)
        self._send(message)
        return self._collect(len(points), on_event, resubmit=message)

    def submit_figure(
        self,
        figure,
        preset=None,
        benchmarks=None,
        epochs=None,
        on_event=None,
        env=None,
    ):
        """Have the *server* decompose a registered figure and run it.

        Returns ``{key_tuple: result}`` keyed exactly as the figure's
        ``points()`` builder keys its grid. ``env`` follows
        :meth:`submit_points` semantics (default: capture the client's
        engine flags).
        """
        if env is None:
            env = engine_env()
        message = protocol.submit_figure(
            os.urandom(8).hex(),
            figure,
            preset=preset,
            benchmarks=benchmarks,
            epochs=epochs,
            env=env,
        )
        self._send(message)
        accepted = self._recv()
        keys = [tuple(key) for key in accepted["keys"]]
        results = self._stream(accepted, on_event, resubmit=message)
        return dict(zip(keys, results))

    def _collect(self, n_points, on_event, resubmit=None):
        try:
            accepted = self._recv()
        except socket.timeout:
            raise PointExecutionError(
                "no accept from server within %.0fs" % (self.read_timeout or 0)
            )
        if accepted.get("event") != "accepted":
            raise PointExecutionError(
                "expected accepted, got %r" % (accepted,)
            )
        if accepted["n_points"] != n_points:
            raise PointExecutionError(
                "server accepted %d points, sent %d"
                % (accepted["n_points"], n_points)
            )
        return self._stream(accepted, on_event, resubmit=resubmit)

    def _resume(self, resubmit):
        """Redial and replay a submit whose stream went quiet.

        Returns the fresh ``accepted`` message. Idempotent server-side:
        same batch id, same points — journaled points answer instantly,
        in-flight points are joined, nothing re-executes.
        """
        self.resumes += 1
        self._reconnect()
        self._send(resubmit)
        accepted = self._recv()
        if accepted.get("event") != "accepted":
            raise PointExecutionError(
                "resume expected accepted, got %r" % (accepted,)
            )
        return accepted

    def _stream(self, accepted, on_event, resubmit=None):
        results = [None] * accepted["n_points"]
        have = [False] * accepted["n_points"]
        errors = {}
        attempts = 0
        while True:
            try:
                message = self._recv()
            except (socket.timeout, ConnectionError):
                if resubmit is None or attempts >= RESUME_ATTEMPTS:
                    raise PointExecutionError(
                        "stream stalled past %s deadline(s) with %d/%d "
                        "point(s) delivered"
                        % (
                            "%.0fs" % self.read_timeout
                            if self.read_timeout
                            else "no",
                            sum(have),
                            len(have),
                        )
                    )
                attempts += 1
                accepted = self._resume(resubmit)
                continue
            event = message.get("event")
            # Any delivery is progress: the stall budget caps
            # *consecutive* dead reads, not total resumes over a long
            # healthy stream.
            if event in ("point", "point_error", "done"):
                attempts = 0
            if event == "point":
                index = message["index"]
                results[index] = protocol.decode_payload(message["result"])
                have[index] = True
                errors.pop(index, None)
                if on_event is not None:
                    on_event(message)
            elif event == "point_error":
                errors[message["index"]] = message["error"]
                if on_event is not None:
                    on_event(message)
            elif event == "done":
                self.last_summary = message
                self.last_sources = message.get("sources")
                break
            # Anything else (future protocol additions) is skipped.
        if errors:
            raise PointExecutionError(
                "%d point(s) failed: %s"
                % (
                    len(errors),
                    "; ".join(
                        "index %d: %s" % (index, error)
                        for index, error in sorted(errors.items())
                    ),
                )
            )
        return results


def wait_until_ready(socket_path=None, tcp=None, timeout=30.0, interval=0.1):
    """Block until a daemon answers a ping at the endpoint (or raise).

    The daemon takes a moment to import and bind after being spawned;
    tests and the CI smoke use this instead of sleeping.
    """
    deadline = time.monotonic() + timeout
    last_error = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(
                socket_path=socket_path, tcp=tcp, connect_timeout=interval + 1
            ) as client:
                if client.ping():
                    return True
        except (OSError, ConnectionError) as exc:
            last_error = exc
        time.sleep(interval)
    raise ServiceUnavailableError(
        "no sweep service at %s after %.1fs (%s)"
        % (tcp or socket_path or default_socket_path(), timeout, last_error)
    )
