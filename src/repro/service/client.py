"""Synchronous JSON-line client for the sweep service.

``repro submit``/``repro status`` (and the tests) talk to the daemon
through this. It is deliberately plain blocking-socket code: a client
submits, then sits in a read loop collecting streamed ``point`` events
until ``done`` — reassembling completion-ordered arrivals back into
input order by each event's ``index``.
"""

import os
import socket
import time

from repro.service import protocol
from repro.service.server import default_socket_path
from repro.sim.parallel import PointExecutionError, engine_env


class ServiceUnavailableError(ConnectionError):
    """No daemon is answering at the requested endpoint."""


class ServiceClient:
    """One connection to a running daemon.

    ``tcp`` is a ``(host, port)`` pair; otherwise the unix socket at
    ``socket_path`` (default: the default spool's socket) is used.
    Usable as a context manager.
    """

    def __init__(self, socket_path=None, tcp=None, connect_timeout=30.0):
        if tcp:
            host, port = tcp
            self._sock = socket.create_connection(
                (host, int(port)), timeout=connect_timeout
            )
        else:
            path = socket_path or default_socket_path()
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout)
            self._sock.connect(path)
        # Streaming reads must wait as long as the simulation does.
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rwb")
        self.last_summary = None
        self.last_sources = None

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _send(self, message):
        self._file.write(protocol.dumps(message))
        self._file.flush()

    def _recv(self):
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        message = protocol.loads(line)
        if message.get("event") == "error":
            raise PointExecutionError("server error: %s" % message.get("error"))
        return message

    # ------------------------------------------------------------------
    # simple ops
    # ------------------------------------------------------------------

    def ping(self):
        """True if the daemon answers; raises on a dead endpoint."""
        self._send({"op": "ping"})
        return self._recv().get("event") == "pong"

    def status(self):
        """The daemon's status snapshot (queues, events, cache, spool)."""
        self._send({"op": "status"})
        return self._recv()["data"]

    def shutdown(self):
        """Ask the daemon to exit cleanly."""
        self._send({"op": "shutdown"})
        try:
            self._recv()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------

    def submit_points(self, points, batch_id=None, on_event=None, env=None):
        """Run ``points`` on the farm; returns results in input order.

        Streams partial results (``on_event`` sees every raw ``point`` /
        ``point_error`` message as it arrives). Raises
        :class:`PointExecutionError` if any point terminally failed,
        after the stream completes.

        ``env`` overrides the engine-flag capture shipped with the batch;
        by default the *client's* live environment is captured
        (:func:`repro.sim.parallel.engine_env`), so ``REPRO_VECTOR`` /
        ``REPRO_BATCH_MISS`` / ``REPRO_BRUTE_SCAN`` pinned at the client
        govern the daemon's workers for exactly this batch.
        """
        points = list(points)
        batch_id = batch_id or os.urandom(8).hex()
        if env is None:
            env = engine_env()
        self._send(protocol.submit_points(batch_id, points, env=env))
        return self._collect(len(points), on_event)

    def submit_figure(
        self,
        figure,
        preset=None,
        benchmarks=None,
        epochs=None,
        on_event=None,
        env=None,
    ):
        """Have the *server* decompose a registered figure and run it.

        Returns ``{key_tuple: result}`` keyed exactly as the figure's
        ``points()`` builder keys its grid. ``env`` follows
        :meth:`submit_points` semantics (default: capture the client's
        engine flags).
        """
        if env is None:
            env = engine_env()
        self._send(
            protocol.submit_figure(
                os.urandom(8).hex(),
                figure,
                preset=preset,
                benchmarks=benchmarks,
                epochs=epochs,
                env=env,
            )
        )
        accepted = self._recv()
        keys = [tuple(key) for key in accepted["keys"]]
        results = self._stream(accepted, on_event)
        return dict(zip(keys, results))

    def _collect(self, n_points, on_event):
        accepted = self._recv()
        if accepted.get("event") != "accepted":
            raise PointExecutionError(
                "expected accepted, got %r" % (accepted,)
            )
        if accepted["n_points"] != n_points:
            raise PointExecutionError(
                "server accepted %d points, sent %d"
                % (accepted["n_points"], n_points)
            )
        return self._stream(accepted, on_event)

    def _stream(self, accepted, on_event):
        results = [None] * accepted["n_points"]
        errors = []
        while True:
            message = self._recv()
            event = message.get("event")
            if event == "point":
                results[message["index"]] = protocol.decode_payload(
                    message["result"]
                )
                if on_event is not None:
                    on_event(message)
            elif event == "point_error":
                errors.append((message["index"], message["error"]))
                if on_event is not None:
                    on_event(message)
            elif event == "done":
                self.last_summary = message
                self.last_sources = message.get("sources")
                break
            # Anything else (future protocol additions) is skipped.
        if errors:
            raise PointExecutionError(
                "%d point(s) failed: %s"
                % (
                    len(errors),
                    "; ".join(
                        "index %d: %s" % (index, error)
                        for index, error in errors
                    ),
                )
            )
        return results


def wait_until_ready(socket_path=None, tcp=None, timeout=30.0, interval=0.1):
    """Block until a daemon answers a ping at the endpoint (or raise).

    The daemon takes a moment to import and bind after being spawned;
    tests and the CI smoke use this instead of sleeping.
    """
    deadline = time.monotonic() + timeout
    last_error = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(
                socket_path=socket_path, tcp=tcp, connect_timeout=interval + 1
            ) as client:
                if client.ping():
                    return True
        except (OSError, ConnectionError) as exc:
            last_error = exc
        time.sleep(interval)
    raise ServiceUnavailableError(
        "no sweep service at %s after %.1fs (%s)"
        % (tcp or socket_path or default_socket_path(), timeout, last_error)
    )
