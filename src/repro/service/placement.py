"""Fleet placement: the host table, leases, health, and the breaker.

The remote-worker fleet (:mod:`repro.service.worker`) turns the sweep
scheduler into a distributed system, and this module owns the part that
must stay correct when hosts misbehave:

* **Liveness is lease-based.** A worker's registration grants it a lease
  that every heartbeat renews; a worker whose lease deadline passes is
  presumed dead *even if its TCP connection still looks open* (frozen
  process, network partition). The scheduler then requeues its units —
  and any result the zombie later delivers is discarded, because the
  host entry that held the lease is gone (:meth:`HostTable.get` answers
  None for it). One execution is *accepted* per digest, ever.
* **Health is scored per host name, across reconnects.** Consecutive
  failure incidents (crash, lease lapse, connection loss) trip a circuit
  breaker: the name is quarantined and only re-admitted through a single
  *probe* unit after an exponentially backed-off cool-down. A probe
  success closes the breaker; a probe failure doubles the back-off.
* **Placement is least-loaded with same-trace affinity.** Among eligible
  hosts the one whose previous unit replayed the same reference stream
  (:func:`repro.sim.parallel.trace_key`) wins, so the worker-process
  ``make_trace`` memo keeps paying off across the fleet; ties fall to
  the least-loaded, then to registration order (deterministic).

Pure bookkeeping: no sockets, no asyncio, and an injectable clock, so
every liveness and breaker transition is unit-testable with a fake
clock (``tests/service/test_placement.py``). The scheduler drives it
from the event loop only.
"""

import time

from repro.sim.parallel import DEFAULT_LEASE

#: Consecutive failure incidents before a host name is quarantined.
FAILURE_THRESHOLD = 3

#: First quarantine cool-down in seconds; doubles per probe failure.
PROBE_BACKOFF = 1.0

#: Longest quarantine cool-down — a flapping host probes at least this
#: often instead of being exiled forever.
MAX_PROBE_BACKOFF = 60.0


class HostHealth:
    """Breaker state for one worker *name* (survives reconnects)."""

    __slots__ = ("failures", "quarantined_until", "backoff", "probing")

    def __init__(self):
        self.failures = 0
        self.quarantined_until = None  # None = breaker closed
        self.backoff = PROBE_BACKOFF
        self.probing = False

    def admits(self, now):
        """May this name receive a unit right now?"""
        if self.quarantined_until is None:
            return True
        if now < self.quarantined_until:
            return False
        # Cool-down over: half-open — exactly one probe unit at a time.
        return not self.probing


class WorkerHost:
    """One live registration: a connected worker holding a lease."""

    __slots__ = (
        "worker_id",
        "name",
        "capabilities",
        "capacity",
        "send",
        "close",
        "lease_deadline",
        "load",
        "units",
        "last_trace",
        "serial",
    )

    def __init__(self, worker_id, name, capabilities, send, close, serial):
        self.worker_id = worker_id
        self.name = name
        self.capabilities = dict(capabilities or {})
        try:
            self.capacity = max(1, int(self.capabilities.get("slots", 1)))
        except (TypeError, ValueError):
            self.capacity = 1
        self.send = send  # callable(message dict) -> None, loop-side
        self.close = close  # callable() -> None, drops the connection
        self.lease_deadline = None
        self.load = 0
        self.units = set()  # unit ids currently assigned here
        self.last_trace = None
        self.serial = serial


class HostTable:
    """Live hosts, their leases, and per-name health. See module doc."""

    def __init__(
        self,
        lease=DEFAULT_LEASE,
        clock=time.monotonic,
        failure_threshold=FAILURE_THRESHOLD,
        probe_backoff=PROBE_BACKOFF,
        max_probe_backoff=MAX_PROBE_BACKOFF,
    ):
        self.lease = lease
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.probe_backoff = probe_backoff
        self.max_probe_backoff = max_probe_backoff
        self._hosts = {}  # worker_id -> WorkerHost (live only)
        self._health = {}  # name -> HostHealth (persists across reconnects)
        self._serial = 0

    # ------------------------------------------------------------------
    # registration & liveness
    # ------------------------------------------------------------------

    def register(self, name, capabilities=None, send=None, close=None):
        """Admit a worker connection; returns its :class:`WorkerHost`.

        Each registration gets a fresh ``worker_id`` (``name#serial``) so
        a reconnecting worker can never be confused with the zombie
        holding its previous lease. Health is keyed by bare name, so the
        breaker remembers a flaky host across reconnects.
        """
        self._serial += 1
        worker_id = "%s#%d" % (name, self._serial)
        host = WorkerHost(worker_id, name, capabilities, send, close, self._serial)
        host.lease_deadline = self.clock() + self.lease
        self._hosts[worker_id] = host
        self._health.setdefault(name, HostHealth())
        return host

    def get(self, worker_id):
        """The live host for ``worker_id``, or None (expired/lost/unknown)."""
        return self._hosts.get(worker_id)

    def heartbeat(self, worker_id):
        """Renew a lease; False if the holder is no longer live."""
        host = self._hosts.get(worker_id)
        if host is None:
            return False
        host.lease_deadline = self.clock() + self.lease
        return True

    def expire(self, now=None):
        """Remove and return every host whose lease deadline has passed.

        The caller (the scheduler's lease loop) requeues their units and
        records the failure; from this moment any message bearing the
        expired ``worker_id`` is a zombie's and will be discarded.
        """
        now = self.clock() if now is None else now
        expired = [
            host
            for host in self._hosts.values()
            if host.lease_deadline is not None and host.lease_deadline <= now
        ]
        for host in expired:
            del self._hosts[host.worker_id]
        return expired

    def lost(self, worker_id):
        """A worker connection dropped; remove and return its host."""
        return self._hosts.pop(worker_id, None)

    def live(self):
        """All live hosts, registration order."""
        return sorted(self._hosts.values(), key=lambda host: host.serial)

    def live_count(self):
        return len(self._hosts)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def placeable(self, now=None):
        """Whether *any* host could accept a unit right now.

        Trace-independent (affinity only ranks, never rejects), so the
        dispatcher can check capacity *before* popping a unit — popping
        first and pushing back would skew its round-robin fairness.
        """
        now = self.clock() if now is None else now
        return any(
            host.load < host.capacity and self._health[host.name].admits(now)
            for host in self._hosts.values()
        )

    def place(self, trace, now=None):
        """The host that should run a unit of trace-identity ``trace``.

        Least-loaded among eligible hosts (live, spare capacity, breaker
        admits), with same-trace affinity: a host that just replayed the
        same stream beats a colder, equally-loaded one. Returns None when
        nothing is placeable right now.
        """
        now = self.clock() if now is None else now
        best = None
        best_rank = None
        for host in self._hosts.values():
            if host.load >= host.capacity:
                continue
            if not self._health[host.name].admits(now):
                continue
            # Affinity first, then load, then registration order.
            rank = (0 if host.last_trace == trace else 1, host.load, host.serial)
            if best_rank is None or rank < best_rank:
                best, best_rank = host, rank
        return best

    def assign(self, host, unit_id, trace):
        """Record a unit placed on ``host`` (call after :meth:`place`)."""
        host.load += 1
        host.units.add(unit_id)
        host.last_trace = trace
        health = self._health[host.name]
        if health.quarantined_until is not None:
            health.probing = True  # this unit is the half-open probe

    def release(self, host, unit_id):
        """A unit left ``host`` (result accepted, requeued, or failed)."""
        host.units.discard(unit_id)
        host.load = max(0, host.load - 1)

    # ------------------------------------------------------------------
    # health scoring (per name)
    # ------------------------------------------------------------------

    def record_success(self, name):
        """A unit completed on ``name``: close the breaker, reset back-off."""
        health = self._health.setdefault(name, HostHealth())
        health.failures = 0
        health.quarantined_until = None
        health.backoff = self.probe_backoff
        health.probing = False

    def record_failure(self, name, now=None):
        """One failure incident on ``name``; True if it tripped quarantine.

        An *incident* is a crash, lease lapse, or connection loss — not a
        per-unit count, so one dead host shedding five units scores one
        failure. At :data:`FAILURE_THRESHOLD` consecutive incidents the
        name is quarantined for the current back-off, which then doubles
        (capped), giving the exponential probe cadence.
        """
        now = self.clock() if now is None else now
        health = self._health.setdefault(name, HostHealth())
        health.probing = False
        health.failures += 1
        if health.failures < self.failure_threshold:
            return False
        health.quarantined_until = now + health.backoff
        health.backoff = min(health.backoff * 2.0, self.max_probe_backoff)
        return True

    def health(self, name):
        """The :class:`HostHealth` for ``name`` (created on demand)."""
        return self._health.setdefault(name, HostHealth())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def snapshot(self, now=None):
        """JSON-safe fleet state for the ``status`` protocol op."""
        now = self.clock() if now is None else now
        hosts = []
        for host in self.live():
            health = self._health[host.name]
            hosts.append(
                {
                    "worker": host.worker_id,
                    "capacity": host.capacity,
                    "load": host.load,
                    "lease_remaining": round(host.lease_deadline - now, 3)
                    if host.lease_deadline is not None
                    else None,
                    "failures": health.failures,
                    "quarantined": not health.admits(now),
                }
            )
        return {
            "lease": self.lease,
            "live": len(hosts),
            "hosts": hosts,
        }
