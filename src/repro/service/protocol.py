"""The sweep service's wire protocol: one JSON object per line.

Requests (client to server) carry an ``op``; responses (server to
client) carry an ``event``. A ``submit`` fans out into a stream:
``accepted``, then one ``point``/``point_error`` per point *in
completion order* (each tagged with its input ``index``), then ``done``.

Simulation objects (``RunPoint``, ``SimulationResult``) ride inside the
JSON as base64-encoded pickles — the same serialization the on-disk
result cache uses, and with the same trust model: the service is for
local, cooperating clients (unix socket by default), not a hardened
network endpoint.
"""

import base64
import json
import pickle

#: Bump on incompatible wire changes; both sides send it in handshakes.
PROTOCOL_VERSION = 1


def encode_payload(obj):
    """A python object as a JSON-safe base64 pickle string."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text):
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def dumps(message):
    """One protocol message as a newline-terminated bytes line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def loads(line):
    """Parse one received line (bytes or str) into a message dict.

    Raises ValueError on malformed input (bad JSON or a non-object).
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("protocol message must be a JSON object")
    return message


def submit_points(batch_id, points, env=None):
    """A submit request carrying explicit, client-built RunPoints.

    ``env`` is the client's engine-flag capture
    (:func:`repro.sim.parallel.engine_env`): a plain string dict the
    server pins into the worker processes that run this batch. ``None``
    means the client expressed no preference (daemon environment wins).
    """
    return {
        "op": "submit",
        "protocol": PROTOCOL_VERSION,
        "batch": batch_id,
        "points": [encode_payload(point) for point in points],
        "env": env,
    }


def submit_figure(
    batch_id, figure, preset=None, benchmarks=None, epochs=None, env=None
):
    """A submit request the server decomposes via the figure registry."""
    return {
        "op": "submit",
        "protocol": PROTOCOL_VERSION,
        "batch": batch_id,
        "figure": figure,
        "preset": preset,
        "benchmarks": list(benchmarks) if benchmarks is not None else None,
        "epochs": epochs,
        "env": env,
    }
