"""The sweep service's wire protocol: one JSON object per line.

Requests (client to server) carry an ``op``; responses (server to
client) carry an ``event``. A ``submit`` fans out into a stream:
``accepted``, then one ``point``/``point_error`` per point *in
completion order* (each tagged with its input ``index``), then ``done``.

Simulation objects (``RunPoint``, ``SimulationResult``) ride inside the
JSON as base64-encoded pickles — the same serialization the on-disk
result cache uses, and with the same trust model: the service is for
local, cooperating clients (unix socket by default), not a hardened
network endpoint.
"""

import base64
import json
import pickle

#: Bump on incompatible wire changes; both sides send it in handshakes.
PROTOCOL_VERSION = 1


def encode_payload(obj):
    """A python object as a JSON-safe base64 pickle string."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text):
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def dumps(message):
    """One protocol message as a newline-terminated bytes line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def loads(line):
    """Parse one received line (bytes or str) into a message dict.

    Raises ValueError on malformed input (bad JSON or a non-object).
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("protocol message must be a JSON object")
    return message


def submit_points(batch_id, points, env=None):
    """A submit request carrying explicit, client-built RunPoints.

    ``env`` is the client's engine-flag capture
    (:func:`repro.sim.parallel.engine_env`): a plain string dict the
    server pins into the worker processes that run this batch. ``None``
    means the client expressed no preference (daemon environment wins).
    """
    return {
        "op": "submit",
        "protocol": PROTOCOL_VERSION,
        "batch": batch_id,
        "points": [encode_payload(point) for point in points],
        "env": env,
    }


def register_worker(name, capabilities=None):
    """A worker's registration handshake.

    ``capabilities`` is a JSON-safe dict advertising what the host can
    do — at minimum ``slots`` (concurrent units it will accept) and
    ``engine`` (its :func:`repro.sim.parallel.engine_env` capture). The
    daemon answers ``registered`` with the granted ``worker`` id, the
    ``lease`` length, and the ``heartbeat`` cadence it expects.
    """
    return {
        "op": "register",
        "protocol": PROTOCOL_VERSION,
        "name": name,
        "capabilities": dict(capabilities or {}),
    }


def heartbeat(worker_id):
    """A lease renewal. The daemon answers ``lease`` with ``ok``:
    False means the lease already lapsed (the sender is a zombie) and
    the worker must re-register before doing anything else."""
    return {"op": "heartbeat", "worker": worker_id}


def unit_result(worker_id, unit_id, results):
    """A completed unit's results, in the unit's point order."""
    return {
        "op": "unit_result",
        "worker": worker_id,
        "unit": unit_id,
        "results": [encode_payload(result) for result in results],
    }


def unit_error(worker_id, unit_id, error, transient=True):
    """A failed unit. ``transient`` distinguishes host trouble (crash,
    timeout — requeue elsewhere, score the host) from a deterministic
    simulation error (fails anywhere — fail the points, host is fine).
    """
    return {
        "op": "unit_error",
        "worker": worker_id,
        "unit": unit_id,
        "error": str(error),
        "transient": bool(transient),
    }


def submit_figure(
    batch_id, figure, preset=None, benchmarks=None, epochs=None, env=None
):
    """A submit request the server decomposes via the figure registry."""
    return {
        "op": "submit",
        "protocol": PROTOCOL_VERSION,
        "batch": batch_id,
        "figure": figure,
        "preset": preset,
        "benchmarks": list(benchmarks) if benchmarks is not None else None,
        "epochs": epochs,
        "env": env,
    }
