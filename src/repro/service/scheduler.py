"""The event-loop scheduler: dedupe, fairness, dispatch, write-through.

One :class:`Scheduler` owns all execution state of a running daemon:

* **Dedupe.** Every submitted point is resolved in order against the
  checkpoint journal (finished this daemon lifetime or a previous one),
  the shared on-disk :class:`~repro.sim.parallel.ResultCache`, and the
  in-flight table. Only a genuinely novel digest is enqueued; concurrent
  clients asking for the same digest share one future and therefore one
  execution.
* **Fairness.** Pending work is kept as per-client queues of same-trace
  units (see :func:`repro.sim.parallel.trace_batches`); the dispatcher
  pops units round-robin across clients, so a client submitting a
  29-benchmark figure cannot starve one submitting a single point.
* **Dispatch.** A popped unit goes to the remote fleet first: the
  :class:`~repro.service.placement.HostTable` picks a least-loaded,
  trace-affine worker among those whose lease is alive and whose circuit
  breaker admits work. When no host is placeable — and always when zero
  workers are registered — the unit runs on the local thread-pool path,
  each slot driving :func:`~repro.sim.parallel.execute_batch_with_retry`
  (an isolated, killable child process with capped-backoff retries), so
  a daemon with no fleet behaves exactly like the pre-fleet daemon.
* **Failure-driven reassignment.** A worker that crashes, drops its
  connection, or lets its lease lapse sheds its assigned units: each is
  requeued onto the fleet exactly once, and pinned to the local pool if
  it fails again. A result arriving from a *zombie* — a holder of an
  expired lease or a superseded assignment — is discarded, so the
  accepted-execution count per digest stays exactly one (the ``done``
  event in the log) no matter how the fleet misbehaves.
* **Write-through.** A finished point is appended to the checkpoint
  journal and stored in the result cache *before* its future resolves,
  so no client can observe a result the daemon could later lose.

The scheduler must be driven from a single asyncio event loop
(``submit``, ``start``/``close``, and all ``worker_*`` calls are
loop-side); only the event log and the runner are touched from executor
threads.
"""

import asyncio
import collections
from concurrent.futures import ThreadPoolExecutor

from repro.service import protocol
from repro.service.events import EventLog
from repro.service.placement import HostTable
from repro.sim.parallel import (
    DEFAULT_BACKOFF,
    PointExecutionError,
    execute_batch_with_retry,
    fault_env,
    kill_isolated_processes,
    lease_env,
    point_digest,
    resolve_jobs,
    trace_batches,
    trace_key,
)


class _Unit:
    """One dispatchable same-trace batch owned by one client."""

    __slots__ = (
        "client",
        "batch_id",
        "entries",
        "env",
        "unit_id",
        "trace",
        "requeues",
        "force_local",
    )

    def __init__(self, client, batch_id, entries, env=None, unit_id=None):
        self.client = client
        self.batch_id = batch_id
        self.entries = entries  # [(digest, point, future), ...]
        #: The client's engine-flag capture (see ENGINE_FLAGS), pinned in
        #: the worker child that runs this unit; None = inherit.
        self.env = env
        self.unit_id = unit_id
        self.trace = trace_key(entries[0][1]) if entries else None
        #: Times this unit was given back after a host failure. The
        #: first failure re-enters fleet placement; the second pins the
        #: unit to the local pool — "requeued onto the fleet exactly
        #: once", so a pathological fleet cannot bounce a unit forever.
        self.requeues = 0
        self.force_local = False

    def digests(self):
        return [digest for digest, _point, _future in self.entries]


def _silence(future):
    """Mark a future's exception retrieved (no-waiter recovery batches)."""
    if not future.cancelled():
        future.exception()


class Scheduler:
    """See module docstring. ``runner`` injects an execution function
    ``runner(points) -> results`` for tests; the default is the isolated
    retrying machinery honoring ``timeout``/``retries``/``backoff``
    (which themselves default to ``REPRO_POINT_TIMEOUT`` /
    ``REPRO_RETRIES``). ``lease`` overrides ``REPRO_LEASE`` for the
    fleet's liveness deadline.
    """

    def __init__(
        self,
        jobs=None,
        cache=None,
        checkpoint=None,
        events=None,
        timeout=None,
        retries=None,
        backoff=DEFAULT_BACKOFF,
        runner=None,
        lease=None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.checkpoint = checkpoint
        self.events = events if events is not None else EventLog()
        env_timeout, env_retries = fault_env()
        self.timeout = env_timeout if timeout is None else timeout
        self.retries = env_retries if retries is None else retries
        self.backoff = backoff
        self._runner = runner
        env_lease, env_heartbeat = lease_env()
        self.lease = env_lease if lease is None else lease
        self.heartbeat_interval = min(env_heartbeat, max(self.lease / 3.0, 0.05))
        self.hosts = HostTable(lease=self.lease)
        self._inflight = {}  # digest -> asyncio.Future (unresolved only)
        self._queues = collections.OrderedDict()  # client -> deque[_Unit]
        self._rotation = 0
        self._assigned = {}  # unit_id -> (unit, host) on the fleet
        self._unit_serial = 0
        self._local_running = 0
        self._wakeup = None  # asyncio.Event, created in start()
        self._dispatcher = None
        self._lease_task = None
        self._unit_tasks = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="sweep-unit"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Start the dispatcher and lease monitor on the running loop."""
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._lease_task = asyncio.ensure_future(self._lease_loop())

    async def close(self):
        """Stop dispatching, kill live workers, fail queued futures."""
        self._closed = True
        for task in (self._dispatcher, self._lease_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        # Deliberately killed children must not be retried or relaunched;
        # their waiting unit tasks fail fast with WorkerCrashError.
        kill_isolated_processes()
        for unit_id, (unit, host) in list(self._assigned.items()):
            for digest, _point, future in unit.entries:
                self._inflight.pop(digest, None)
                if not future.done():
                    future.cancel()
        self._assigned.clear()
        for host in self.hosts.live():
            if host.close is not None:
                try:
                    host.close()
                except Exception:  # a dying connection must not block close
                    pass
        for queue in self._queues.values():
            for unit in queue:
                for digest, _point, future in unit.entries:
                    self._inflight.pop(digest, None)
                    if not future.done():
                        future.cancel()
        self._queues.clear()
        if self._unit_tasks:
            await asyncio.gather(*self._unit_tasks, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # submission (event-loop side)
    # ------------------------------------------------------------------

    def submit(self, client, points, batch_id=None, env=None):
        """Resolve-or-enqueue every point for ``client``.

        Returns ``[(future, source), ...]`` in input order; ``source`` is
        how the point was answered: ``journal`` / ``cache`` (already
        done), ``joined`` (another client's in-flight execution), or
        ``queued`` (novel work enqueued now).

        ``env`` is the client's engine-flag capture
        (:data:`repro.sim.parallel.ENGINE_FLAGS`); fresh units execute
        under it. A ``joined`` point runs under whichever env first
        enqueued its digest — safe because every engine mode is
        bit-identical, so the shared result is the same either way.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        loop = asyncio.get_event_loop()
        out = []
        fresh = []  # (digest, point, future) needing execution
        for point in points:
            digest = point_digest(point)
            journaled = (
                self.checkpoint.get(digest) if self.checkpoint is not None else None
            )
            if journaled is not None:
                future = loop.create_future()
                future.set_result(journaled)
                self.events.append(
                    "journal_hit", digest=digest, client=client, batch=batch_id
                )
                out.append((future, "journal"))
                continue
            inflight = self._inflight.get(digest)
            if inflight is not None:
                self.events.append(
                    "join", digest=digest, client=client, batch=batch_id
                )
                out.append((inflight, "joined"))
                continue
            cached = self.cache.load(point) if self.cache is not None else None
            if cached is not None:
                if self.checkpoint is not None:
                    self.checkpoint.record_digest(digest, cached)
                future = loop.create_future()
                future.set_result(cached)
                self.events.append(
                    "cache_hit", digest=digest, client=client, batch=batch_id
                )
                out.append((future, "cache"))
                continue
            future = loop.create_future()
            self._inflight[digest] = future
            fresh.append((digest, point, future))
            self.events.append(
                "enqueue", digest=digest, client=client, batch=batch_id
            )
            out.append((future, "queued"))
        if fresh:
            queue = self._queues.setdefault(client, collections.deque())
            fresh_points = [point for _digest, point, _future in fresh]
            for indices in trace_batches(fresh_points, range(len(fresh))):
                self._unit_serial += 1
                queue.append(
                    _Unit(
                        client,
                        batch_id,
                        [fresh[i] for i in indices],
                        env=env,
                        unit_id="u%d" % self._unit_serial,
                    )
                )
            if self._wakeup is not None:  # submits before start() just queue
                self._wakeup.set()
        return out

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _next_unit(self):
        """Pop the next unit, rotating across clients for fairness."""
        clients = list(self._queues)
        if not clients:
            return None
        n = len(clients)
        for step in range(n):
            client = clients[(self._rotation + step) % n]
            queue = self._queues[client]
            if queue:
                unit = queue.popleft()
                if not queue:
                    del self._queues[client]
                # Resume *after* the client we just served.
                self._rotation = (self._rotation + step + 1) % max(
                    1, len(self._queues)
                )
                return unit
            del self._queues[client]
        return None

    def _push_back(self, unit):
        """Return an unplaceable unit to the head of its client's queue.

        Deliberately does *not* set the wakeup event: the dispatcher
        calls this when nothing can be placed, and signalling here would
        spin the pump hot. External state changes (results, lease ticks,
        registrations, submits) are what wake it.
        """
        self._queues.setdefault(unit.client, collections.deque()).appendleft(unit)

    async def _dispatch_loop(self):
        while True:
            self._wakeup.clear()
            self._pump()
            await self._wakeup.wait()

    def _pump(self):
        """Place/launch as many queued units as current capacity allows.

        Synchronous (no awaits), so cancellation can never strand a
        popped unit: every pop either dispatches or pushes back before
        control returns to the loop.
        """
        while True:
            # Capacity is checked *before* popping: a pop advances the
            # fairness rotation, so popping a unit we cannot place would
            # push it back out of turn.
            has_local = self._local_running < self.jobs
            has_remote = self.hosts.placeable()
            if not has_local and not has_remote:
                return
            unit = self._next_unit()
            if unit is None:
                return
            if not unit.force_local and has_remote:
                host = self.hosts.place(unit.trace)
                if host is not None:
                    self._assign_remote(unit, host)
                    continue
            # No placeable worker right now (or the unit is pinned
            # local): fall back to the local pool. With zero registered
            # workers this is exactly the pre-fleet daemon's path.
            if has_local:
                self._local_running += 1
                task = asyncio.ensure_future(self._run_unit(unit))
                self._unit_tasks.add(task)
                task.add_done_callback(self._unit_tasks.discard)
                continue
            # A local-pinned unit met a busy pool with only remote
            # capacity free: wait for a local slot.
            self._push_back(unit)
            return

    async def _lease_loop(self):
        """Expire lapsed leases and kick the pump on a fixed cadence.

        The tick also reopens quarantine probe windows and is the pump's
        backstop wake-up, so its interval bounds how long a placeable
        unit can sit after a missed capacity signal.
        """
        interval = max(0.05, self.lease / 4.0)
        while True:
            await asyncio.sleep(interval)
            for host in self.hosts.expire():
                self._host_died(host, "worker_expired")
            self._wakeup.set()

    # ------------------------------------------------------------------
    # remote (fleet) execution
    # ------------------------------------------------------------------

    def _assign_remote(self, unit, host):
        """Ship a unit to a worker; the lease now covers its execution."""
        self.hosts.assign(host, unit.unit_id, unit.trace)
        self._assigned[unit.unit_id] = (unit, host)
        self.events.append(
            "assign",
            unit=unit.unit_id,
            worker=host.worker_id,
            digests=unit.digests(),
            client=unit.client,
            batch=unit.batch_id,
        )
        try:
            host.send(
                {
                    "event": "assign",
                    "unit": unit.unit_id,
                    "points": [
                        protocol.encode_payload(point)
                        for _digest, point, _future in unit.entries
                    ],
                    "env": unit.env,
                }
            )
        except Exception:
            # The connection died under us; treat it as a lost worker so
            # the unit is requeued immediately rather than at the lease.
            lost = self.hosts.lost(host.worker_id)
            if lost is not None:
                self._host_died(lost, "worker_lost")

    def worker_register(self, name, capabilities=None, send=None, close=None):
        """A worker connection registered; returns its live host entry."""
        host = self.hosts.register(name, capabilities, send=send, close=close)
        self.events.append(
            "worker_register",
            worker=host.worker_id,
            capacity=host.capacity,
            capabilities={
                key: value
                for key, value in host.capabilities.items()
                if isinstance(value, (str, int, float, bool, dict, list))
            },
        )
        self._wakeup.set()
        return host

    def worker_heartbeat(self, worker_id):
        """Renew a lease; False means the holder is a zombie."""
        return self.hosts.heartbeat(worker_id)

    def worker_lost(self, worker_id):
        """A worker connection dropped (EOF, reset, garbled framing)."""
        host = self.hosts.lost(worker_id)
        if host is not None:
            self._host_died(host, "worker_lost")

    def worker_result(self, worker_id, unit_id, results):
        """A worker delivered a unit's results. False = discarded.

        Acceptance requires the assignment to still be held by exactly
        this ``worker_id``: an expired lease, a reassignment, or an
        unknown worker makes the delivery a zombie's and it is dropped —
        the requeued execution is the one whose ``done`` events (and
        journal/cache writes) count.
        """
        entry = self._assigned.get(unit_id)
        host = self.hosts.get(worker_id)
        if entry is None or host is None or entry[1].worker_id != worker_id:
            self.events.append(
                "stale_result", unit=unit_id, worker=worker_id
            )
            return False
        unit, host = entry
        if len(results) != len(unit.entries):
            # Framing nonsense: penalize the host and give the unit away.
            del self._assigned[unit_id]
            self.hosts.release(host, unit_id)
            self._record_host_failure(host, "short result frame")
            self._requeue(unit, "bad_frame", host)
            return False
        del self._assigned[unit_id]
        self.hosts.release(host, unit_id)
        self.hosts.record_success(host.name)
        self._settle_unit(unit, results, worker=host.worker_id)
        self._wakeup.set()
        return True

    def worker_error(self, worker_id, unit_id, error, transient=True):
        """A worker reported a unit failure. False = stale/discarded.

        ``transient`` (worker child crashed / timed out) penalizes the
        host and requeues the unit; a deterministic simulation error
        fails exactly these points — the host is fine, and rerunning
        elsewhere would fail identically.
        """
        entry = self._assigned.get(unit_id)
        host = self.hosts.get(worker_id)
        if entry is None or host is None or entry[1].worker_id != worker_id:
            self.events.append(
                "stale_result", unit=unit_id, worker=worker_id, error=str(error)
            )
            return False
        unit, host = entry
        del self._assigned[unit_id]
        self.hosts.release(host, unit_id)
        self.events.append(
            "unit_error",
            unit=unit_id,
            worker=worker_id,
            transient=bool(transient),
            error=str(error),
        )
        if transient:
            self._record_host_failure(host, str(error))
            self._requeue(unit, "worker_error", host)
        else:
            self.hosts.record_success(host.name)
            self._fail_unit(unit, PointExecutionError(str(error)))
        self._wakeup.set()
        return True

    def _host_died(self, host, reason):
        """Shed a dead host's units; score the incident; kick the pump."""
        self.events.append(
            reason,
            worker=host.worker_id,
            units=sorted(host.units),
        )
        self._record_host_failure(host, reason)
        for unit_id in list(host.units):
            entry = self._assigned.pop(unit_id, None)
            self.hosts.release(host, unit_id)
            if entry is not None:
                self._requeue(entry[0], reason, host)
        if host.close is not None:
            try:
                host.close()
            except Exception:  # the transport is already gone
                pass
        self._wakeup.set()

    def _record_host_failure(self, host, error):
        if self.hosts.record_failure(host.name):
            health = self.hosts.health(host.name)
            self.events.append(
                "worker_quarantine",
                worker=host.name,
                failures=health.failures,
                backoff=health.backoff,
                error=str(error),
            )

    def _requeue(self, unit, reason, host=None):
        """Give a unit back after a host failure (fleet-retry once)."""
        unit.requeues += 1
        if unit.requeues > 1:
            unit.force_local = True
        self.events.append(
            "requeue",
            unit=unit.unit_id,
            digests=unit.digests(),
            reason=reason,
            worker=host.worker_id if host is not None else None,
            requeues=unit.requeues,
            forced_local=unit.force_local,
        )
        self._push_back(unit)
        self._wakeup.set()

    # ------------------------------------------------------------------
    # local (thread-pool) execution
    # ------------------------------------------------------------------

    def _execute(self, unit):
        """Executor-thread side: run the unit's points to completion."""
        points = [point for _digest, point, _future in unit.entries]
        if self._runner is not None:
            return self._runner(points)

        def on_retry(attempt, delay, exc):
            # Thread-safe: EventLog locks internally.
            self.events.append(
                "retry",
                digests=unit.digests(),
                client=unit.client,
                batch=unit.batch_id,
                attempt=attempt,
                delay=delay,
                error=str(exc),
            )

        return execute_batch_with_retry(
            points,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=on_retry,
            should_retry=lambda: not self._closed,
            env=unit.env,
        )

    async def _run_unit(self, unit):
        loop = asyncio.get_event_loop()
        self.events.append(
            "dispatch",
            digests=unit.digests(),
            client=unit.client,
            batch=unit.batch_id,
        )
        try:
            results = await loop.run_in_executor(
                self._executor, self._execute, unit
            )
        except asyncio.CancelledError:
            for digest, _point, future in unit.entries:
                self._inflight.pop(digest, None)
                if not future.done():
                    future.cancel()
            raise
        except Exception as exc:
            if not isinstance(exc, PointExecutionError):
                exc = PointExecutionError(
                    "unit execution failed: %r" % (exc,)
                )
            self._fail_unit(unit, exc)
        else:
            self._settle_unit(unit, results)
        finally:
            self._local_running -= 1
            if self._wakeup is not None:
                self._wakeup.set()

    # ------------------------------------------------------------------
    # settlement (shared by local and fleet paths)
    # ------------------------------------------------------------------

    def _settle_unit(self, unit, results, worker=None):
        """Durability before visibility: journal + cache, then futures."""
        for (digest, point, future), result in zip(unit.entries, results):
            if self.checkpoint is not None:
                self.checkpoint.record_digest(digest, result)
            if self.cache is not None:
                self.cache.store(point, result)
            self._inflight.pop(digest, None)
            record = {
                "digest": digest,
                "client": unit.client,
                "batch": unit.batch_id,
            }
            if worker is not None:
                record["worker"] = worker
            self.events.append("done", **record)
            if not future.done():
                future.set_result(result)

    def _fail_unit(self, unit, exc):
        for digest, _point, future in unit.entries:
            self._inflight.pop(digest, None)
            self.events.append(
                "failed",
                digest=digest,
                client=unit.client,
                batch=unit.batch_id,
                error=str(exc),
            )
            if not future.done():
                future.add_done_callback(_silence)
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status(self):
        """A JSON-safe snapshot for the ``status`` protocol op."""
        return {
            "jobs": self.jobs,
            "inflight": len(self._inflight),
            "assigned": {
                unit_id: host.worker_id
                for unit_id, (_unit, host) in self._assigned.items()
            },
            "queued": {
                client: sum(len(unit.entries) for unit in queue)
                for client, queue in self._queues.items()
            },
            "workers": self.hosts.snapshot(),
            "journaled": len(self.checkpoint) if self.checkpoint else 0,
            "events": self.events.snapshot(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "quarantined": self.cache.quarantined,
            }
            if self.cache is not None
            else None,
        }
