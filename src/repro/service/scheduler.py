"""The event-loop scheduler: dedupe, fairness, dispatch, write-through.

One :class:`Scheduler` owns all execution state of a running daemon:

* **Dedupe.** Every submitted point is resolved in order against the
  checkpoint journal (finished this daemon lifetime or a previous one),
  the shared on-disk :class:`~repro.sim.parallel.ResultCache`, and the
  in-flight table. Only a genuinely novel digest is enqueued; concurrent
  clients asking for the same digest share one future and therefore one
  execution.
* **Fairness.** Pending work is kept as per-client queues of same-trace
  units (see :func:`repro.sim.parallel.trace_batches`); the dispatcher
  pops units round-robin across clients, so a client submitting a
  29-benchmark figure cannot starve one submitting a single point.
* **Dispatch.** Up to ``jobs`` units run concurrently, each on an
  executor thread driving :func:`~repro.sim.parallel.execute_batch_with_retry`
  — an isolated, killable child process with capped-backoff retries.
  Worker SIGKILL surfaces as a ``retry`` event, not a lost point.
* **Write-through.** A finished point is appended to the checkpoint
  journal and stored in the result cache *before* its future resolves,
  so no client can observe a result the daemon could later lose.

The scheduler must be driven from a single asyncio event loop
(``submit`` and ``start``/``close`` are loop-side); only the event log
and the runner are touched from executor threads.
"""

import asyncio
import collections
from concurrent.futures import ThreadPoolExecutor

from repro.service.events import EventLog
from repro.sim.parallel import (
    DEFAULT_BACKOFF,
    PointExecutionError,
    execute_batch_with_retry,
    fault_env,
    kill_isolated_processes,
    point_digest,
    resolve_jobs,
    trace_batches,
)


class _Unit:
    """One dispatchable same-trace batch owned by one client."""

    __slots__ = ("client", "batch_id", "entries", "env")

    def __init__(self, client, batch_id, entries, env=None):
        self.client = client
        self.batch_id = batch_id
        self.entries = entries  # [(digest, point, future), ...]
        #: The client's engine-flag capture (see ENGINE_FLAGS), pinned in
        #: the worker child that runs this unit; None = inherit.
        self.env = env


def _silence(future):
    """Mark a future's exception retrieved (no-waiter recovery batches)."""
    if not future.cancelled():
        future.exception()


class Scheduler:
    """See module docstring. ``runner`` injects an execution function
    ``runner(points) -> results`` for tests; the default is the isolated
    retrying machinery honoring ``timeout``/``retries``/``backoff``
    (which themselves default to ``REPRO_POINT_TIMEOUT`` /
    ``REPRO_RETRIES``).
    """

    def __init__(
        self,
        jobs=None,
        cache=None,
        checkpoint=None,
        events=None,
        timeout=None,
        retries=None,
        backoff=DEFAULT_BACKOFF,
        runner=None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.checkpoint = checkpoint
        self.events = events if events is not None else EventLog()
        env_timeout, env_retries = fault_env()
        self.timeout = env_timeout if timeout is None else timeout
        self.retries = env_retries if retries is None else retries
        self.backoff = backoff
        self._runner = runner
        self._inflight = {}  # digest -> asyncio.Future (unresolved only)
        self._queues = collections.OrderedDict()  # client -> deque[_Unit]
        self._rotation = 0
        self._wakeup = None  # asyncio.Event, created in start()
        self._slots = None  # asyncio.Semaphore(jobs), created in start()
        self._dispatcher = None
        self._unit_tasks = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="sweep-unit"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Start the dispatcher on the running event loop."""
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(self.jobs)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def close(self):
        """Stop dispatching, kill live workers, fail queued futures."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        # Deliberately killed children must not be retried or relaunched;
        # their waiting unit tasks fail fast with WorkerCrashError.
        kill_isolated_processes()
        for queue in self._queues.values():
            for unit in queue:
                for digest, _point, future in unit.entries:
                    self._inflight.pop(digest, None)
                    if not future.done():
                        future.cancel()
        self._queues.clear()
        if self._unit_tasks:
            await asyncio.gather(*self._unit_tasks, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # submission (event-loop side)
    # ------------------------------------------------------------------

    def submit(self, client, points, batch_id=None, env=None):
        """Resolve-or-enqueue every point for ``client``.

        Returns ``[(future, source), ...]`` in input order; ``source`` is
        how the point was answered: ``journal`` / ``cache`` (already
        done), ``joined`` (another client's in-flight execution), or
        ``queued`` (novel work enqueued now).

        ``env`` is the client's engine-flag capture
        (:data:`repro.sim.parallel.ENGINE_FLAGS`); fresh units execute
        under it. A ``joined`` point runs under whichever env first
        enqueued its digest — safe because every engine mode is
        bit-identical, so the shared result is the same either way.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        loop = asyncio.get_event_loop()
        out = []
        fresh = []  # (digest, point, future) needing execution
        for point in points:
            digest = point_digest(point)
            journaled = (
                self.checkpoint.get(digest) if self.checkpoint is not None else None
            )
            if journaled is not None:
                future = loop.create_future()
                future.set_result(journaled)
                self.events.append(
                    "journal_hit", digest=digest, client=client, batch=batch_id
                )
                out.append((future, "journal"))
                continue
            inflight = self._inflight.get(digest)
            if inflight is not None:
                self.events.append(
                    "join", digest=digest, client=client, batch=batch_id
                )
                out.append((inflight, "joined"))
                continue
            cached = self.cache.load(point) if self.cache is not None else None
            if cached is not None:
                if self.checkpoint is not None:
                    self.checkpoint.record_digest(digest, cached)
                future = loop.create_future()
                future.set_result(cached)
                self.events.append(
                    "cache_hit", digest=digest, client=client, batch=batch_id
                )
                out.append((future, "cache"))
                continue
            future = loop.create_future()
            self._inflight[digest] = future
            fresh.append((digest, point, future))
            self.events.append(
                "enqueue", digest=digest, client=client, batch=batch_id
            )
            out.append((future, "queued"))
        if fresh:
            queue = self._queues.setdefault(client, collections.deque())
            fresh_points = [point for _digest, point, _future in fresh]
            for indices in trace_batches(fresh_points, range(len(fresh))):
                queue.append(
                    _Unit(
                        client,
                        batch_id,
                        [fresh[i] for i in indices],
                        env=env,
                    )
                )
            if self._wakeup is not None:  # submits before start() just queue
                self._wakeup.set()
        return out

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _next_unit(self):
        """Pop the next unit, rotating across clients for fairness."""
        clients = list(self._queues)
        if not clients:
            return None
        n = len(clients)
        for step in range(n):
            client = clients[(self._rotation + step) % n]
            queue = self._queues[client]
            if queue:
                unit = queue.popleft()
                if not queue:
                    del self._queues[client]
                # Resume *after* the client we just served.
                self._rotation = (self._rotation + step + 1) % max(
                    1, len(self._queues)
                )
                return unit
            del self._queues[client]
        return None

    async def _dispatch_loop(self):
        while True:
            # Acquire the slot *before* popping a unit: if close() cancels
            # us while we hold a popped unit at an await point, that unit
            # would vanish with its futures forever pending.
            await self._slots.acquire()
            try:
                while True:
                    unit = self._next_unit()
                    if unit is not None:
                        break
                    self._wakeup.clear()
                    await self._wakeup.wait()
            except BaseException:
                self._slots.release()
                raise
            task = asyncio.ensure_future(self._run_unit(unit))
            self._unit_tasks.add(task)
            task.add_done_callback(self._unit_tasks.discard)

    def _execute(self, unit):
        """Executor-thread side: run the unit's points to completion."""
        points = [point for _digest, point, _future in unit.entries]
        if self._runner is not None:
            return self._runner(points)

        def on_retry(attempt, delay, exc):
            # Thread-safe: EventLog locks internally.
            self.events.append(
                "retry",
                digests=[digest for digest, _p, _f in unit.entries],
                client=unit.client,
                batch=unit.batch_id,
                attempt=attempt,
                delay=delay,
                error=str(exc),
            )

        return execute_batch_with_retry(
            points,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=on_retry,
            should_retry=lambda: not self._closed,
            env=unit.env,
        )

    async def _run_unit(self, unit):
        loop = asyncio.get_event_loop()
        self.events.append(
            "dispatch",
            digests=[digest for digest, _p, _f in unit.entries],
            client=unit.client,
            batch=unit.batch_id,
        )
        try:
            results = await loop.run_in_executor(
                self._executor, self._execute, unit
            )
        except asyncio.CancelledError:
            for digest, _point, future in unit.entries:
                self._inflight.pop(digest, None)
                if not future.done():
                    future.cancel()
            raise
        except Exception as exc:
            if not isinstance(exc, PointExecutionError):
                exc = PointExecutionError(
                    "unit execution failed: %r" % (exc,)
                )
            for digest, _point, future in unit.entries:
                self._inflight.pop(digest, None)
                self.events.append(
                    "failed",
                    digest=digest,
                    client=unit.client,
                    batch=unit.batch_id,
                    error=str(exc),
                )
                if not future.done():
                    future.add_done_callback(_silence)
                    future.set_exception(exc)
        else:
            for (digest, point, future), result in zip(unit.entries, results):
                # Durability before visibility: journal + cache first.
                if self.checkpoint is not None:
                    self.checkpoint.record_digest(digest, result)
                if self.cache is not None:
                    self.cache.store(point, result)
                self._inflight.pop(digest, None)
                self.events.append(
                    "done", digest=digest, client=unit.client, batch=unit.batch_id
                )
                if not future.done():
                    future.set_result(result)
        finally:
            self._slots.release()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status(self):
        """A JSON-safe snapshot for the ``status`` protocol op."""
        return {
            "jobs": self.jobs,
            "inflight": len(self._inflight),
            "queued": {
                client: sum(len(unit.entries) for unit in queue)
                for client, queue in self._queues.items()
            },
            "journaled": len(self.checkpoint) if self.checkpoint else 0,
            "events": self.events.snapshot(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "quarantined": self.cache.quarantined,
            }
            if self.cache is not None
            else None,
        }
