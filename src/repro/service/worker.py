"""The remote worker: ``repro worker`` — a fleet member process.

A :class:`SweepWorker` dials *out* to a running daemon (unix socket or
TCP), registers with its capabilities (execution ``slots``, core count,
engine-flag capture), and then serves ``assign`` frames: each unit's
points run through the same isolated, killable, retrying machinery the
daemon's local pool uses (:func:`repro.sim.parallel.execute_batch_with_retry`),
with the submitting client's engine env pinned in the child — so a
point computes bit-identically no matter which host it lands on.

Liveness is the worker's responsibility: a background thread renews the
daemon-granted lease every ``heartbeat`` interval. A worker that stops
beating — frozen, partitioned, dead — is expired by the daemon and its
units requeued; anything it delivers afterwards is stale by
construction (its ``worker_id`` died with the lease) and the daemon
discards it. The worker therefore tags every delivery with the id the
unit was *assigned under*, not its current one, which is exactly what
makes the stale-discard airtight across reconnects.

Threading model (no asyncio here — execution is blocking anyway):

* the main thread owns the connection: dial, register, read frames,
  enqueue assignments, and reconnect with a fresh registration whenever
  the connection dies;
* ``slots`` executor threads pull assignments and run them;
* one heartbeat thread beats on a timer (suppressed while a chaos
  ``freeze`` is active).

Sends from all threads go through one lock; reads happen only on the
main thread via a select-timed line buffer (:class:`_Channel`).

Chaos (:mod:`repro.fault.chaos`) hooks three sites: ``unit_start``
(kill), ``heartbeat`` (freeze), and ``deliver`` (drop / garble /
partition). A plan arrives via ``REPRO_CHAOS`` so the chaos smoke can
aim a deterministic fault schedule at each fleet member.
"""

import os
import queue
import select
import signal
import socket
import threading
import time

from repro.fault.chaos import ChaosPlan, garble_line, truncate_line
from repro.service import protocol
from repro.service.server import default_socket_path
from repro.sim.parallel import (
    DEFAULT_BACKOFF,
    PointExecutionError,
    PointTimeoutError,
    WorkerCrashError,
    available_cpus,
    engine_env,
    execute_batch_with_retry,
    fault_env,
    lease_env,
)

#: Seconds between reconnect attempts after a dead connection.
RECONNECT_DELAY = 0.5

#: Delay before a chaos ``kill`` lands, so the unit is genuinely
#: mid-execution when the process dies.
KILL_DELAY = 0.05


class _Channel:
    """Newline-framed messages over one blocking socket.

    Reads are select-timed against an internal buffer (a plain
    ``makefile`` object cannot mix timeouts with buffering without
    losing partial lines); sends are whole-line ``sendall`` under a
    lock so executor, heartbeat, and main threads never interleave
    frames.
    """

    def __init__(self, sock):
        self._sock = sock
        self._buf = b""
        self._send_lock = threading.Lock()

    def readline(self, timeout=None):
        """One full line, or None on timeout; ConnectionError on EOF."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            index = self._buf.find(b"\n")
            if index >= 0:
                line = self._buf[: index + 1]
                self._buf = self._buf[index + 1 :]
                return line
            if deadline is None:
                wait = None
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    return None
            try:
                ready, _w, _x = select.select([self._sock], [], [], wait)
            except (OSError, ValueError) as exc:
                raise ConnectionError("connection lost: %s" % exc)
            if not ready:
                return None
            try:
                data = self._sock.recv(1 << 16)
            except OSError as exc:
                raise ConnectionError("connection lost: %s" % exc)
            if not data:
                raise ConnectionError("daemon closed the connection")
            self._buf += data

    def send(self, message):
        self.send_raw(protocol.dumps(message))

    def send_raw(self, data):
        with self._send_lock:
            self._sock.sendall(data)

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


class SweepWorker:
    """One fleet member. ``runner(points, env)`` injects execution for
    tests; the default is the isolated retrying machinery. ``chaos``
    defaults to the plan in ``REPRO_CHAOS`` (usually none)."""

    def __init__(
        self,
        name=None,
        socket_path=None,
        tcp=None,
        slots=1,
        chaos=None,
        timeout=None,
        retries=None,
        backoff=DEFAULT_BACKOFF,
        runner=None,
        connect_timeout=30.0,
        reconnect_delay=RECONNECT_DELAY,
        on_event=None,
    ):
        self.name = name or "%s-%d" % (socket.gethostname(), os.getpid())
        self._socket_path = socket_path
        self._tcp = tcp
        self.slots = max(1, int(slots))
        self.chaos = chaos if chaos is not None else ChaosPlan.from_env()
        env_timeout, env_retries = fault_env()
        self.timeout = env_timeout if timeout is None else timeout
        self.retries = env_retries if retries is None else retries
        self.backoff = backoff
        self._runner = runner
        self._connect_timeout = connect_timeout
        self._reconnect_delay = reconnect_delay
        self._on_event = on_event  # callable(event, **fields), tests/CLI
        self.lease, self.heartbeat_interval = lease_env()
        self.worker_id = None
        self.units_done = 0
        self._channel = None
        self._queue = queue.Queue()
        self._stop = threading.Event()
        self._registered = threading.Event()
        self._frozen_until = 0.0
        self._threads = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _emit(self, event, **fields):
        if self._on_event is not None:
            self._on_event(event, **fields)

    def capabilities(self):
        return {
            "slots": self.slots,
            "cores": available_cpus(),
            "engine": engine_env(),
        }

    def run(self):
        """Serve until :meth:`stop`; reconnects across daemon restarts."""
        for _slot in range(self.slots):
            thread = threading.Thread(target=self._executor_loop, daemon=True)
            thread.start()
            self._threads.append(thread)
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        self._threads.append(beat)
        try:
            while not self._stop.is_set():
                try:
                    self._serve_connection()
                except (ConnectionError, OSError) as exc:
                    self._registered.clear()
                    self._emit("disconnected", error=str(exc))
                    if self._stop.is_set():
                        break
                    time.sleep(self._reconnect_delay)
        finally:
            self.stop()
        return 0

    def stop(self):
        self._stop.set()
        self._registered.clear()
        channel = self._channel
        if channel is not None:
            channel.close()
        for _thread in self._threads:
            self._queue.put(None)

    # ------------------------------------------------------------------
    # connection (main thread)
    # ------------------------------------------------------------------

    def _dial(self):
        if self._tcp:
            host, port = self._tcp
            sock = socket.create_connection(
                (host, int(port)), timeout=self._connect_timeout
            )
        else:
            path = self._socket_path or default_socket_path()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._connect_timeout)
            sock.connect(path)
        sock.settimeout(None)
        return _Channel(sock)

    def _serve_connection(self):
        channel = self._dial()
        self._channel = channel
        channel.send(protocol.register_worker(self.name, self.capabilities()))
        try:
            while not self._stop.is_set():
                line = channel.readline(timeout=0.5)
                if line is None:
                    continue
                message = protocol.loads(line)
                event = message.get("event")
                if event == "registered":
                    self.worker_id = message["worker"]
                    self.lease = float(message.get("lease") or self.lease)
                    self.heartbeat_interval = float(
                        message.get("heartbeat") or self.heartbeat_interval
                    )
                    # Re-admission ends any chaos freeze: the worker is
                    # demonstrably awake again.
                    self._frozen_until = 0.0
                    self._registered.set()
                    self._emit("registered", worker=self.worker_id)
                elif event == "assign":
                    points = [
                        protocol.decode_payload(text)
                        for text in message.get("points") or []
                    ]
                    self._emit(
                        "assigned", unit=message.get("unit"), n_points=len(points)
                    )
                    self._queue.put(
                        (
                            self.worker_id,
                            message.get("unit"),
                            points,
                            message.get("env"),
                        )
                    )
                elif event == "lease":
                    if not message.get("ok"):
                        # Our lease lapsed (the daemon sees a zombie):
                        # re-register for a fresh identity on this same
                        # connection; in-flight units deliver stale.
                        self._registered.clear()
                        channel.send(
                            protocol.register_worker(
                                self.name, self.capabilities()
                            )
                        )
                # ack / error / pong: nothing to do.
        finally:
            self._registered.clear()
            channel.close()

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------

    def _heartbeat_loop(self):
        while not self._stop.is_set():
            time.sleep(max(0.05, self.heartbeat_interval))
            if not self._registered.is_set():
                continue
            now = time.monotonic()
            if now < self._frozen_until:
                continue
            if self.chaos and "freeze" in self.chaos.trigger("heartbeat"):
                # Go dark long enough for the lease to lapse while the
                # process and connection stay alive — the daemon must
                # expire us, requeue our units, and discard anything we
                # deliver late.
                self._frozen_until = now + 3.0 * self.lease
                self._emit("chaos_freeze", until=self._frozen_until)
                continue
            channel = self._channel
            worker_id = self.worker_id
            if channel is None or worker_id is None:
                continue
            try:
                channel.send(protocol.heartbeat(worker_id))
            except (OSError, ConnectionError):
                pass  # main thread will notice and reconnect

    # ------------------------------------------------------------------
    # unit execution (executor threads)
    # ------------------------------------------------------------------

    def _execute(self, points, env):
        if self._runner is not None:
            return self._runner(points, env)
        return execute_batch_with_retry(
            points,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            should_retry=lambda: not self._stop.is_set(),
            env=env,
        )

    def _executor_loop(self):
        while True:
            item = self._queue.get()
            if item is None:
                return
            worker_id, unit_id, points, env = item
            if self.chaos and "kill" in self.chaos.trigger("unit_start"):
                self._emit("chaos_kill", unit=unit_id)
                timer = threading.Timer(
                    KILL_DELAY, os.kill, (os.getpid(), signal.SIGKILL)
                )
                timer.daemon = True
                timer.start()
            try:
                results = self._execute(points, env)
            except (WorkerCrashError, PointTimeoutError) as exc:
                self._deliver(
                    protocol.unit_error(worker_id, unit_id, exc, transient=True)
                )
            except PointExecutionError as exc:
                # Deterministic simulation failure: rerunning elsewhere
                # fails identically, so don't let it count against us.
                self._deliver(
                    protocol.unit_error(worker_id, unit_id, exc, transient=False)
                )
            except Exception as exc:
                self._deliver(
                    protocol.unit_error(worker_id, unit_id, exc, transient=True)
                )
            else:
                self.units_done += 1
                self._deliver(protocol.unit_result(worker_id, unit_id, results))

    def _deliver(self, message):
        """Send a unit outcome, letting chaos corrupt or sever it.

        Delivery failures are swallowed: a dead connection means the
        daemon already counted us lost and requeued the unit; pushing
        the result anyway is exactly the zombie case the scheduler
        discards.
        """
        line = protocol.dumps(message)
        if self.chaos:
            fired = self.chaos.trigger("deliver")
            if "partition" in fired:
                # Sever before delivering; compute is done, so after the
                # main thread reconnects and re-registers we push the
                # result under the *old* id — the textbook stale frame.
                self._emit("chaos_partition", unit=message.get("unit"))
                self._registered.clear()
                channel = self._channel
                if channel is not None:
                    channel.close()
                self._registered.wait(timeout=max(10.0, 3.0 * self.lease))
            elif "garble" in fired:
                self._emit("chaos_garble", unit=message.get("unit"))
                line = garble_line(line)
            elif "drop" in fired:
                self._emit("chaos_drop", unit=message.get("unit"))
                line = truncate_line(line)
        channel = self._channel
        if channel is None:
            return
        try:
            channel.send_raw(line)
        except (OSError, ConnectionError):
            pass
