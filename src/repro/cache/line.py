"""Cache line state.

Lines carry the MESI-lite coherence state, the dirty bit, the functional
token of their current contents, and the PiCL EID tag (Fig 5b of the paper).
The ``eid`` field is ``EpochId.NONE`` for lines that have never been stored
to since they were filled — "a line loaded from the memory to the LLC
initially has no EID associated".

For the OpenPiton-style sub-block tracking ablation, a line can also carry
per-sub-block EIDs (``sub_eids``); the default 64 B tracking granularity
leaves it ``None``.
"""

from repro.common.eid import EpochId


class LineState:
    """MESI-lite states (we never distinguish E from M beyond the dirty bit)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class CacheLine:
    """One cache line: tag, coherence state, dirty bit, token, EID tag."""

    __slots__ = (
        "addr",
        "state",
        "_dirty",
        "token",
        "eid",
        "owner",
        "sub_eids",
        "_home",
    )

    def __init__(self, addr, token=0, state=LineState.EXCLUSIVE, owner=None):
        self.addr = addr
        self.state = state
        self._dirty = False
        self.token = token
        self.eid = EpochId.NONE
        #: Core id that holds private copies (LLC bookkeeping); None if none.
        self.owner = owner
        #: Optional per-sub-block EIDs for 16 B tracking granularity.
        self.sub_eids = None
        #: The SetAssocCache this line currently resides in (None if none);
        #: maintained by the cache so dirty-bit flips can keep its running
        #: dirty count exact without scanning the sets.
        self._home = None

    @property
    def dirty(self):
        return self._dirty

    @dirty.setter
    def dirty(self, value):
        value = bool(value)
        if value != self._dirty:
            self._dirty = value
            home = self._home
            if home is not None:
                home._dirty += 1 if value else -1

    def copy_fill(self, addr):
        """Create a new line for an upper level, copying data and EID tag.

        Fills propagate the EID tag along with the data so that the private
        caches can detect cross-epoch stores without consulting the LLC.
        """
        # Built via __new__ with every slot assigned directly: this runs on
        # every fill, and skipping __init__ avoids double-writing the slots
        # the copy overrides.
        line = CacheLine.__new__(CacheLine)
        line.addr = addr
        line.state = LineState.EXCLUSIVE
        line._dirty = False
        line.token = self.token
        line.eid = self.eid
        line.owner = None
        sub_eids = self.sub_eids
        line.sub_eids = list(sub_eids) if sub_eids is not None else None
        line._home = None
        return line

    def __repr__(self):
        return "CacheLine(addr=%#x, dirty=%s, token=%d, eid=%d)" % (
            self.addr,
            self.dirty,
            self.token,
            self.eid,
        )
