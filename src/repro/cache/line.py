"""Cache line state.

Lines carry the MESI-lite coherence state, the dirty bit, the functional
token of their current contents, and the PiCL EID tag (Fig 5b of the paper).
The ``eid`` field is ``EpochId.NONE`` for lines that have never been stored
to since they were filled — "a line loaded from the memory to the LLC
initially has no EID associated".

For the OpenPiton-style sub-block tracking ablation, a line can also carry
per-sub-block EIDs (``sub_eids``); the default 64 B tracking granularity
leaves it ``None``.

Lines keep their resident cache up to date through the ``_home``
back-pointer: dirty-bit flips maintain the cache's dirty-line dict, and
EID retags (via :meth:`set_eid` / :meth:`init_sub_eids`) maintain the
LLC's :class:`repro.cache.eid_index.EidIndex` — which is how the index
stays exact without ever being rebuilt by a scan.
"""

from repro.common.eid import EpochId


class LineState:
    """MESI-lite states (we never distinguish E from M beyond the dirty bit)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class CacheLine:
    """One cache line: tag, coherence state, dirty bit, token, EID tag."""

    __slots__ = (
        "addr",
        "state",
        "_dirty",
        "token",
        "eid",
        "owner",
        "sub_eids",
        "_home",
        "_vslot",
    )

    def __init__(self, addr, token=0, state=LineState.EXCLUSIVE, owner=None):
        self.addr = addr
        self.state = state
        self._dirty = False
        self.token = token
        self.eid = EpochId.NONE
        #: Core id that holds private copies (LLC bookkeeping); None if none.
        self.owner = owner
        #: Optional per-sub-block EIDs for 16 B tracking granularity.
        self.sub_eids = None
        #: The SetAssocCache this line currently resides in (None if none);
        #: maintained by the cache so dirty flips and EID retags can keep
        #: its dirty-line dict and EID index exact without scanning.
        self._home = None
        #: Claimed way slot in the L1's columnar tag mirror (-1 if none);
        #: assigned lazily by L1TagMirror.sync, not at fill time.
        self._vslot = -1

    @property
    def dirty(self):
        return self._dirty

    @dirty.setter
    def dirty(self, value):
        value = bool(value)
        if value != self._dirty:
            self._dirty = value
            home = self._home
            if home is not None:
                if value:
                    home._dirty_lines[self.addr] = self
                else:
                    del home._dirty_lines[self.addr]

    def set_eid(self, eid):
        """Retag the line, keeping its home cache's EID index exact.

        Only meaningful for lines at 64 B granularity (``sub_eids is
        None``); sub-block lines live in the index's dedicated sub bucket
        regardless of their whole-line ``eid``, so their membership never
        moves on a retag.
        """
        old = self.eid
        if eid == old:
            return
        self.eid = eid
        if self.sub_eids is None:
            home = self._home
            if home is not None and home.eid_index is not None:
                home.eid_index.retag(self, old)
                if home._vec is not None:
                    home._vec.eidq.append(self)

    def init_sub_eids(self, n_sub_blocks):
        """Switch the line to sub-block tracking (all sub-EIDs unset).

        Moves the line from its whole-line EID bucket to the index's
        dedicated sub-block bucket, so it is neither scanned twice nor
        missed once per-sub-block EIDs take over matching.
        """
        old_eid = self.eid
        self.sub_eids = [EpochId.NONE] * n_sub_blocks
        home = self._home
        if home is not None and home.eid_index is not None:
            home.eid_index.refresh(self, old_eid, False)

    def copy_fill(self, addr):
        """Create a new line for an upper level, copying data and EID tag.

        Fills propagate the EID tag along with the data so that the private
        caches can detect cross-epoch stores without consulting the LLC.
        """
        # Built via __new__ with every slot assigned directly: this runs on
        # every fill, and skipping __init__ avoids double-writing the slots
        # the copy overrides.
        line = CacheLine.__new__(CacheLine)
        line.addr = addr
        line.state = LineState.EXCLUSIVE
        line._dirty = False
        line.token = self.token
        line.eid = self.eid
        line.owner = None
        sub_eids = self.sub_eids
        line.sub_eids = list(sub_eids) if sub_eids is not None else None
        line._home = None
        line._vslot = -1
        return line

    def __repr__(self):
        return "CacheLine(addr=%#x, dirty=%s, token=%d, eid=%d)" % (
            self.addr,
            self.dirty,
            self.token,
            self.eid,
        )
