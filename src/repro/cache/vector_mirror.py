"""Numpy mirror of one L1's tag and EID state for columnar classification.

The columnar interpreter (:meth:`repro.sim.simulator.Simulation.
_run_single_core_vector` under ``REPRO_VECTOR``) classifies a lookahead
window of references at once: set indices and an L1 tag probe in numpy.
Python dicts cannot be probed array-at-a-time, so the single core's L1
carries this mirror — a ``(n_sets, assoc)`` int64 tag table plus a parallel
EID table.

The mirror is **lazily coherent**. Keeping it exact at every miss fill /
eviction / retag costs a function call on the cache's hottest paths — a tax
paid even while the interpreter is disengaged on a miss-heavy phase, and
measured at roughly a third of the columnar loop's overhead. Instead, the
hot paths only append the affected line to one of three queues (plain
``list.append``, no call into the mirror):

* :attr:`pending` — lines that became resident (miss fills),
* :attr:`evictq` — lines that left (evictions, back-invalidations),
* :attr:`eidq` — resident lines whose EID tag may have moved (stores,
  sync refreshes, merge retags).

:meth:`sync` drains the queues immediately before each window
classification, so the tag table is exact at the only moments it is read.
Way slots are tracked on the lines themselves (``CacheLine._vslot``),
claimed at sync time from per-set free lists.

Between a classification and the end of its window the mirror goes stale
again as residual references mutate the cache. Two staleness directions
matter, and only one is dangerous:

* **Stale-negative** (classified miss, line is actually resident — e.g. a
  ref later in the window hits a line an earlier residual just filled):
  safe, because residual references replay through the exact
  per-reference path, which handles hits and misses alike.
* **Stale-positive** (classified hit, but a mid-window eviction removed
  the line): unsafe for the bulk path, so every eviction *also* appends
  the victim's address to :attr:`removed` — the one eager hook — and the
  interpreter demotes the victim's remaining classified-fast references
  back to the exact path after every residual span.

Tags are line addresses (always ``>= 0``); empty ways hold ``-1``. The EID
table is only consulted for ways whose tag matched, so its value for empty
ways is irrelevant.

The same structure mirrors the L2 and LLC for the batched miss-chain
engine (:mod:`repro.cache.miss_engine`): :class:`LevelMirror` adds a dirty
plane so a window's residual misses can be classified per level — L2 hit /
LLC hit / NVM fill, dirty-victim likelihood — array-at-a-time before any
state is mutated. Those planes are *advisory*: the drain loop re-probes
the live tag dicts as it mutates (a mid-window fill or eviction would
otherwise go unseen), so a stale plane can only mispredict a class, never
corrupt a result. ``REPRO_BRUTE_SCAN=1``-style verification is available
through :meth:`LevelMirror.verify_against`, which diffs a synced plane
against the live cache and fails fast on divergence.
"""

import numpy as np

#: Sentinel tag for an empty way (line addresses are non-negative).
EMPTY = -1


class TagMirror:
    """Array mirror of a set-associative cache's residency and EID tags."""

    __slots__ = (
        "n_sets",
        "assoc",
        "_line_shift",
        "_set_mask",
        "tags",
        "eids",
        "tags2d",
        "eids2d",
        "_free",
        "pending",
        "evictq",
        "eidq",
        "removed",
        "stale",
    )

    def __init__(self, n_sets, assoc, line_shift, set_mask):
        self.n_sets = n_sets
        self.assoc = assoc
        self._line_shift = line_shift
        self._set_mask = set_mask
        self.tags = np.full(n_sets * assoc, EMPTY, dtype=np.int64)
        self.eids = np.zeros(n_sets * assoc, dtype=np.int64)
        #: 2-D views over the same storage for fancy-indexed row reads.
        self.tags2d = self.tags.reshape(n_sets, assoc)
        self.eids2d = self.eids.reshape(n_sets, assoc)
        #: Free ways per set (way indices; order is irrelevant).
        self._free = [list(range(assoc)) for _ in range(n_sets)]
        #: Lines that became resident since the last sync.
        self.pending = []
        #: Lines that left the cache since the last sync.
        self.evictq = []
        #: Lines whose EID tag may have changed since the last sync.
        self.eidq = []
        #: Addresses evicted since the interpreter last drained this list;
        #: the columnar loop demotes their remaining classified-hit
        #: references to the exact path (stale-positive demotion). Eager,
        #: unlike the slot queues: it guards *within* a window.
        self.removed = []
        #: True when events happened that no queue recorded — the
        #: interpreter detaches the mirror entirely (``l1._vec = None``)
        #: for disengaged scalar bursts, so even the queue appends cost
        #: nothing, then sets this on re-attach. The next sync must
        #: rebuild from the live tags.
        self.stale = False

    def sync(self, l1_tags):
        """Drain the queues so the tag table matches the live cache.

        Order matters: evictions free ways before fills claim them (the
        same addr may have been evicted and refilled as a new line), and
        EID refreshes run last so they see the slots fills just claimed.
        ``l1_tags`` is the cache's live tag dict — a queued line only
        claims a way if it is *still* the resident line for its address.

        When the mirror was detached (``stale``) or more events queued up
        than the cache holds lines, replaying history is pointless (or
        impossible): rebuild the table from the live tag dict instead,
        which bounds every sync at O(resident).
        """
        evictq = self.evictq
        if self.stale or (
            len(self.pending) + len(evictq) + len(self.eidq)
            > len(l1_tags)
        ):
            self.rebuild(l1_tags)
            return
        if evictq:
            tags = self.tags
            free = self._free
            assoc = self.assoc
            for line in evictq:
                slot = line._vslot
                if slot >= 0:
                    line._vslot = -1
                    tags[slot] = EMPTY
                    free[slot // assoc].append(slot % assoc)
            evictq.clear()
        pending = self.pending
        if pending:
            tags = self.tags
            eids = self.eids
            shift = self._line_shift
            mask = self._set_mask
            assoc = self.assoc
            free = self._free
            for line in pending:
                addr = line.addr
                if line._vslot < 0 and l1_tags.get(addr) is line:
                    set_index = (addr >> shift) & mask
                    slot = set_index * assoc + free[set_index].pop()
                    line._vslot = slot
                    tags[slot] = addr
                    eids[slot] = line.eid
            pending.clear()
        eidq = self.eidq
        if eidq:
            eids = self.eids
            for line in eidq:
                slot = line._vslot
                if slot >= 0:
                    eids[slot] = line.eid
            eidq.clear()

    def rebuild(self, l1_tags):
        """Re-derive the whole table from the live tag dict.

        Queued lines that died before this point keep a stale ``_vslot``;
        that is harmless — a dead line is never re-inserted (every fill
        creates a fresh CacheLine), so its slot is never read again.
        """
        tags = self.tags
        eids = self.eids
        tags.fill(EMPTY)
        assoc = self.assoc
        shift = self._line_shift
        mask = self._set_mask
        free = self._free = [list(range(assoc)) for _ in range(self.n_sets)]
        for addr, line in l1_tags.items():
            set_index = (addr >> shift) & mask
            slot = set_index * assoc + free[set_index].pop()
            line._vslot = slot
            tags[slot] = addr
            eids[slot] = line.eid
        self.pending.clear()
        self.evictq.clear()
        self.eidq.clear()
        self.stale = False

    def clear(self):
        """Power loss / invalidate_all: every way empties at once.

        The caller resets ``_vslot`` on the dropped lines (it is already
        sweeping them to sever their home pointers).
        """
        self.tags.fill(EMPTY)
        self._free = [list(range(self.assoc)) for _ in range(self.n_sets)]
        self.pending.clear()
        self.evictq.clear()
        self.eidq.clear()
        self.removed.clear()
        self.stale = False

    def __len__(self):
        return int((self.tags != EMPTY).sum())


#: The single core's private L1 carries a plain tag mirror (the columnar
#: interpreter's hit classifier). Kept under its historical name.
L1TagMirror = TagMirror


class LevelMirror(TagMirror):
    """Tag + EID + dirty planes for a shared level (L2 or LLC).

    Used by the batched miss-chain engine to classify a window's residual
    misses per level (L2 hit / LLC hit / NVM fill, dirty-victim share)
    before any state mutation. Unlike the L1 mirror, whose classifications
    gate the bulk path and must therefore be exact at sync time, these
    planes are advisory — the drain loop re-probes live dicts as it
    mutates — so the dirty plane is simply rebuilt from the level's dirty
    dict at each sync (O(dirty), and dirty sets at these levels are small
    relative to the window cadence).
    """

    __slots__ = ("dirty", "dirty2d")

    def __init__(self, n_sets, assoc, line_shift, set_mask):
        super().__init__(n_sets, assoc, line_shift, set_mask)
        self.dirty = np.zeros(n_sets * assoc, dtype=np.int8)
        self.dirty2d = self.dirty.reshape(n_sets, assoc)

    def sync_level(self, cache):
        """Sync tags/EIDs from the level's queues, then rebuild dirty."""
        self.sync(cache._tags)
        dirty = self.dirty
        dirty.fill(0)
        for line in cache._dirty_lines.values():
            slot = line._vslot
            if slot >= 0:
                dirty[slot] = 1

    def clear(self):
        super().clear()
        self.dirty.fill(0)

    def verify_against(self, cache):
        """Brute-force differential oracle (``REPRO_BRUTE_SCAN`` idiom).

        Diffs a just-synced plane against the live cache and returns a
        list of mismatch descriptions (empty = coherent). Tests and the
        escape hatch call this; production never does.
        """
        problems = []
        seen = 0
        for addr, line in cache._tags.items():
            slot = line._vslot
            if slot < 0:
                problems.append("resident %#x has no slot" % addr)
                continue
            seen += 1
            if self.tags[slot] != addr:
                problems.append(
                    "slot %d tag %d != addr %#x" % (slot, self.tags[slot], addr)
                )
            elif self.eids[slot] != line.eid:
                problems.append(
                    "addr %#x eid %d != %d" % (addr, self.eids[slot], line.eid)
                )
            elif bool(self.dirty[slot]) != bool(line._dirty):
                problems.append(
                    "addr %#x dirty %d != %s" % (addr, self.dirty[slot], line._dirty)
                )
        occupied = int((self.tags != EMPTY).sum())
        if occupied != seen:
            problems.append("mirror holds %d tags, cache %d" % (occupied, seen))
        return problems
