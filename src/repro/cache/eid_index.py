"""The software analogue of PiCL's EID array (§IV, "Asynchronous Cache Scan").

The paper's ACS engine never walks the LLC data/tag arrays: it reads a
dedicated, densely packed EID array, so the cost of a persist scan is
proportional to the lines that *might* match, not to cache capacity ("no
tag checks required"). This module is that structure in software: an
index over the LLC's resident lines that the cache maintains incrementally
— through :class:`repro.cache.line.CacheLine`'s ``_home`` back-pointer on
every insert, removal, dirty flip and EID retag — and that is therefore
never rebuilt by scanning.

What each dict models:

* ``buckets[eid]`` — the EID array rows tagged ``eid``: every resident
  line carrying that (full, unwrapped) EID. Buckets hold *clean* tagged
  lines too, because the hardware scan matches on the EID array alone and
  then snoops: a line whose only dirty copy sits in a private cache is
  clean in the LLC yet must still be found, snooped, and written back
  (PiCL's undo forwarding retags the LLC copy without dirtying it).
* ``sub`` — lines under 16 B sub-block tracking (``sub_eids`` is not
  ``None``). These carry up to four EIDs, so they live in one dedicated
  bucket and the scan re-checks ``sub_eids`` per line; keeping them out
  of ``buckets`` guarantees a line is never visited through two buckets.
* The untagged-dirty bucket — dirty lines with no EID at all (every
  non-PiCL scheme's dirty lines) — is the per-cache dirty-line dict
  (``SetAssocCache._dirty_lines``), which doubles as the O(dirty) source
  for flush/sync paths; the EID index itself only tracks tagged lines.

Membership invariant: a resident line is in exactly one place — ``sub``
if ``sub_eids is not None``, else ``buckets[line.eid]`` if ``line.eid >=
0``, else (untagged) in no EID bucket. All dicts are insertion-ordered;
consumers that need the brute-force sweep's exact visit order regroup
candidates by cache set (see ``SetAssocCache.dirty_lines`` and
``AcsEngine``), so index-backed paths stay bit-identical to the
``REPRO_BRUTE_SCAN=1`` oracle.
"""


class EidIndex:
    """Incrementally maintained EID buckets over one cache's lines."""

    __slots__ = ("buckets", "sub")

    def __init__(self):
        #: full EID -> {line_addr: CacheLine} for tagged, non-sub lines.
        self.buckets = {}
        #: {line_addr: CacheLine} for lines with per-sub-block EIDs.
        self.sub = {}

    # ------------------------------------------------------------------
    # maintenance (called by SetAssocCache / CacheHierarchy / CacheLine)
    # ------------------------------------------------------------------

    def add(self, line):
        """Index a line entering the cache (caller checked it is tagged)."""
        if line.sub_eids is not None:
            self.sub[line.addr] = line
        elif line.eid >= 0:
            bucket = self.buckets.get(line.eid)
            if bucket is None:
                bucket = self.buckets[line.eid] = {}
            bucket[line.addr] = line

    def discard(self, line):
        """Drop a line leaving the cache (eviction, removal, power loss)."""
        if line.sub_eids is not None:
            self.sub.pop(line.addr, None)
        elif line.eid >= 0:
            bucket = self.buckets.get(line.eid)
            if bucket is not None:
                bucket.pop(line.addr, None)
                if not bucket:
                    del self.buckets[line.eid]

    def retag(self, line, old_eid):
        """Move a non-sub line whose ``eid`` changed from ``old_eid``.

        Handles tagging (old < 0), retagging, and untagging (new < 0).
        A stale ``old_eid`` raises KeyError — the index must never drift
        from the cache, so inconsistency fails fast instead of healing.
        """
        if old_eid >= 0:
            bucket = self.buckets[old_eid]
            del bucket[line.addr]
            if not bucket:
                del self.buckets[old_eid]
        eid = line.eid
        if eid >= 0:
            bucket = self.buckets.get(eid)
            if bucket is None:
                bucket = self.buckets[eid] = {}
            bucket[line.addr] = line

    def refresh(self, line, old_eid, old_had_sub):
        """Re-home a line after a merge may have changed eid/sub state."""
        if old_had_sub:
            # sub_eids never revert to None; membership is stable.
            return
        if line.sub_eids is not None:
            if old_eid >= 0:
                bucket = self.buckets[old_eid]
                del bucket[line.addr]
                if not bucket:
                    del self.buckets[old_eid]
            self.sub[line.addr] = line
        elif line.eid != old_eid:
            self.retag(line, old_eid)

    def clear(self):
        """Power loss: the on-chip EID array vanishes with the cache."""
        self.buckets.clear()
        self.sub.clear()

    # ------------------------------------------------------------------
    # queries (the ACS engine)
    # ------------------------------------------------------------------

    def occupancy(self, lo_eid, hi_eid):
        """Number of candidate lines an ACS pass over the range must visit."""
        count = len(self.sub)
        for eid, bucket in self.buckets.items():
            if lo_eid <= eid <= hi_eid:
                count += len(bucket)
        return count

    def candidates(self, lo_eid, hi_eid):
        """The lines an ACS pass over ``[lo_eid, hi_eid]`` may match.

        Sub-block lines are always candidates (their per-sub-block EIDs
        are re-checked by the scan's own ``_matches``); tagged lines come
        from the buckets in range. The list is a snapshot: the scan's
        snoops and writebacks may retag or clean lines mid-pass without
        invalidating it.
        """
        out = list(self.sub.values())
        buckets = self.buckets
        if len(buckets) <= 2 * (hi_eid - lo_eid + 1):
            for eid, bucket in buckets.items():
                if lo_eid <= eid <= hi_eid:
                    out.extend(bucket.values())
        else:
            for eid in range(lo_eid, hi_eid + 1):
                bucket = buckets.get(eid)
                if bucket:
                    out.extend(bucket.values())
        return out

    def __len__(self):
        return len(self.sub) + sum(len(b) for b in self.buckets.values())

    # ------------------------------------------------------------------
    # differential oracle
    # ------------------------------------------------------------------

    def verify_against(self, cache):
        """Diff the index against a full sweep of ``cache``'s lines.

        Returns a list of mismatch descriptions (empty = coherent). The
        batched miss-chain test suite runs this after draining windows
        that interleave deferred undo appends with inline index updates —
        the one ordering the engine must *not* batch (a deferred discard
        could pop a same-addr successor's bucket entry), so divergence
        here is the canary for that class of bug.
        """
        problems = []
        indexed = 0
        for addr, line in cache._tags.items():
            if line.sub_eids is not None:
                if self.sub.get(addr) is not line:
                    problems.append("sub line %#x missing/stale" % addr)
                indexed += 1
            elif line.eid >= 0:
                bucket = self.buckets.get(line.eid)
                if bucket is None or bucket.get(addr) is not line:
                    problems.append(
                        "line %#x eid %d missing/stale" % (addr, line.eid)
                    )
                indexed += 1
        held = len(self)
        if held != indexed:
            problems.append("index holds %d lines, cache tags %d" % (held, indexed))
        for eid, bucket in self.buckets.items():
            if not bucket:
                problems.append("empty bucket for eid %d survived" % eid)
        return problems
