"""A set-associative cache with LRU replacement.

Sets are kept in MRU-first order; lookups move the hit line to the front and
insertions evict from the back. This is the textbook LRU the paper's
evaluation assumes (PiCL explicitly leaves the eviction policy unmodified).
"""

from repro.common.address import LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.common.units import is_power_of_two


class SetAssocCache:
    """Set-associative, LRU, write-back cache structure."""

    def __init__(
        self,
        name,
        size_bytes,
        assoc,
        line_size=LINE_SIZE,
        hit_latency=1,
        stats=None,
    ):
        if size_bytes <= 0 or size_bytes % (assoc * line_size) != 0:
            raise ConfigurationError(
                "%s: size %d not divisible into %d-way sets of %d B lines"
                % (name, size_bytes, assoc, line_size)
            )
        n_sets = size_bytes // (assoc * line_size)
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                "%s: %d sets is not a power of two" % (name, n_sets)
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_size.bit_length() - 1
        self._sets = [[] for _ in range(n_sets)]
        self.stats = stats if stats is not None else StatCounters()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def set_index(self, line_addr):
        """Index of the set a line address maps to."""
        return (line_addr >> self._line_shift) & self._set_mask

    def lookup(self, line_addr, touch=True):
        """Return the line at ``line_addr`` or None; ``touch`` updates LRU."""
        cache_set = self._sets[self.set_index(line_addr)]
        for index, line in enumerate(cache_set):
            if line.addr == line_addr:
                if touch and index != 0:
                    cache_set.pop(index)
                    cache_set.insert(0, line)
                return line
        return None

    def contains(self, line_addr):
        """Presence check without LRU side effects."""
        return self.lookup(line_addr, touch=False) is not None

    # ------------------------------------------------------------------
    # insertion / removal
    # ------------------------------------------------------------------

    def insert(self, line):
        """Insert ``line`` as MRU; returns the evicted victim line or None.

        The caller is responsible for handling the victim (write-back,
        back-invalidation); the cache only applies LRU.
        """
        cache_set = self._sets[self.set_index(line.addr)]
        cache_set.insert(0, line)
        if len(cache_set) > self.assoc:
            victim = cache_set.pop()
            self.stats.add("%s.evictions" % self.name)
            return victim
        return None

    def remove(self, line_addr):
        """Remove and return the line at ``line_addr`` (None if absent)."""
        cache_set = self._sets[self.set_index(line_addr)]
        for index, line in enumerate(cache_set):
            if line.addr == line_addr:
                return cache_set.pop(index)
        return None

    def invalidate_all(self):
        """Drop every line (models power loss: SRAM contents vanish)."""
        for cache_set in self._sets:
            cache_set.clear()

    # ------------------------------------------------------------------
    # iteration (flush engines, ACS, statistics)
    # ------------------------------------------------------------------

    def iter_lines(self):
        """Iterate over every resident line (no LRU side effects)."""
        for cache_set in self._sets:
            for line in cache_set:
                yield line

    def dirty_lines(self):
        """List the currently dirty lines (snapshot, safe to mutate cache)."""
        return [line for line in self.iter_lines() if line.dirty]

    def dirty_count(self):
        """Number of dirty resident lines."""
        return sum(1 for line in self.iter_lines() if line.dirty)

    def resident_count(self):
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __len__(self):
        return self.resident_count()
