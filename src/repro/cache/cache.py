"""A set-associative cache with LRU replacement.

Sets are kept in MRU-first order; lookups move the hit line to the front and
insertions evict from the back. This is the textbook LRU the paper's
evaluation assumes (PiCL explicitly leaves the eviction policy unmodified).

Structure: alongside the per-set MRU lists (which exist only to decide
replacement order), one dict maps every resident line address to its line,
so the hit/miss check is a single hash probe instead of a linear scan of
the set. The cache also keeps a dirty-line dict — insertions, removals,
and dirty-bit flips (via :class:`repro.cache.line.CacheLine`'s ``_home``
back-pointer) maintain it — so flush and sync paths touch only the dirty
lines instead of sweeping every set; the shared LLC additionally carries an
:class:`repro.cache.eid_index.EidIndex` (attached by the hierarchy) that
buckets tagged lines by EID for the ACS engine. ``REPRO_BRUTE_SCAN=1``
keeps the original full-sweep paths alive as a differential oracle.
"""

import os

from repro.common.address import LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.common.units import is_power_of_two


class SetAssocCache:
    """Set-associative, LRU, write-back cache structure."""

    def __init__(
        self,
        name,
        size_bytes,
        assoc,
        line_size=LINE_SIZE,
        hit_latency=1,
        stats=None,
    ):
        if size_bytes <= 0 or size_bytes % (assoc * line_size) != 0:
            raise ConfigurationError(
                "%s: size %d not divisible into %d-way sets of %d B lines"
                % (name, size_bytes, assoc, line_size)
            )
        n_sets = size_bytes // (assoc * line_size)
        if not is_power_of_two(n_sets):
            raise ConfigurationError(
                "%s: %d sets is not a power of two" % (name, n_sets)
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_size.bit_length() - 1
        self._sets = [[] for _ in range(n_sets)]
        #: line_addr -> CacheLine for every resident line (the tag index).
        self._tags = {}
        #: line_addr -> CacheLine for every dirty resident line — the
        #: "dirty array" the flush/sync paths read instead of sweeping
        #: (see CacheLine.dirty). Insertion-ordered like every dict.
        self._dirty_lines = {}
        #: Optional EID-array analogue (the hierarchy attaches one to the
        #: LLC); None for private caches, which only need dirty tracking.
        self.eid_index = None
        #: Optional numpy tag/EID mirror for the columnar interpreter (the
        #: hierarchy attaches one to the single core's L1 under
        #: ``REPRO_VECTOR``); every residency change must keep it coherent.
        self._vec = None
        #: Differential escape hatch: recompute dirty_lines() by the
        #: original full sweep so tests can diff the indexed paths.
        self._brute_scan = os.environ.get("REPRO_BRUTE_SCAN", "") == "1"
        self.stats = stats if stats is not None else StatCounters()
        self._evictions = self.stats.slot("%s.evictions" % name)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def set_index(self, line_addr):
        """Index of the set a line address maps to."""
        return (line_addr >> self._line_shift) & self._set_mask

    def lookup(self, line_addr, touch=True):
        """Return the line at ``line_addr`` or None; ``touch`` updates LRU."""
        line = self._tags.get(line_addr)
        if line is None:
            return None
        if touch:
            cache_set = self._sets[
                (line_addr >> self._line_shift) & self._set_mask
            ]
            if cache_set[0] is not line:
                cache_set.remove(line)
                cache_set.insert(0, line)
        return line

    def contains(self, line_addr):
        """Presence check without LRU side effects."""
        return line_addr in self._tags

    def mru_lookup(self, line_addr):
        """Return the line only if it is resident *and* already MRU.

        A repeated access to an MRU line cannot reorder the set, so the
        coalescing fast path (see CacheHierarchy.access_repeat) is exact
        precisely when this returns a line; any other case must replay
        accesses one by one. No LRU side effects.
        """
        line = self._tags.get(line_addr)
        if line is None:
            return None
        cache_set = self._sets[(line_addr >> self._line_shift) & self._set_mask]
        if cache_set[0] is not line:
            return None
        return line

    # ------------------------------------------------------------------
    # insertion / removal
    # ------------------------------------------------------------------

    def insert(self, line):
        """Insert ``line`` as MRU; returns the evicted victim line or None.

        The caller is responsible for handling the victim (write-back,
        back-invalidation); the cache only applies LRU. The line must not
        already be resident (callers always lookup first).
        """
        addr = line.addr
        cache_set = self._sets[(addr >> self._line_shift) & self._set_mask]
        cache_set.insert(0, line)
        self._tags[addr] = line
        line._home = self
        if line._dirty:
            self._dirty_lines[addr] = line
        index = self.eid_index
        if index is not None and (line.eid >= 0 or line.sub_eids is not None):
            index.add(line)
        victim = None
        if len(cache_set) > self.assoc:
            victim = cache_set.pop()
            del self._tags[victim.addr]
            victim._home = None
            if victim._dirty:
                del self._dirty_lines[victim.addr]
            if index is not None and (
                victim.eid >= 0 or victim.sub_eids is not None
            ):
                index.discard(victim)
            self._evictions.value += 1
        if self._vec is not None:
            self._vec.pending.append(line)
            if victim is not None:
                self._vec.removed.append(victim.addr)
                self._vec.evictq.append(victim)
        return victim

    def remove(self, line_addr):
        """Remove and return the line at ``line_addr`` (None if absent)."""
        line = self._tags.pop(line_addr, None)
        if line is None:
            return None
        cache_set = self._sets[(line_addr >> self._line_shift) & self._set_mask]
        cache_set.remove(line)
        line._home = None
        if line._dirty:
            del self._dirty_lines[line_addr]
        if self._vec is not None:
            self._vec.removed.append(line_addr)
            self._vec.evictq.append(line)
        index = self.eid_index
        if index is not None and (line.eid >= 0 or line.sub_eids is not None):
            index.discard(line)
        return line

    def attach_mirror(self):
        """Attach a :class:`LevelMirror` (tag+EID+dirty planes) to a level.

        Used by the batched miss-chain engine's profiling/verification
        modes. Residency changes routed through :meth:`insert` /
        :meth:`remove` queue against it automatically; the hierarchy's
        inlined L2/LLC fill and eviction sites append to the same queues.
        The mirror starts stale so its first sync rebuilds from the live
        tag dict.
        """
        from repro.cache.vector_mirror import LevelMirror

        vec = LevelMirror(
            self.n_sets, self.assoc, self._line_shift, self._set_mask
        )
        vec.stale = True
        self._vec = vec
        return vec

    def invalidate_all(self):
        """Drop every line (models power loss: SRAM contents vanish)."""
        for line in self._tags.values():
            line._home = None
            line._vslot = -1
        for cache_set in self._sets:
            cache_set.clear()
        self._tags.clear()
        self._dirty_lines.clear()
        if self._vec is not None:
            self._vec.clear()
        if self.eid_index is not None:
            self.eid_index.clear()

    # ------------------------------------------------------------------
    # iteration (flush engines, ACS, statistics)
    # ------------------------------------------------------------------

    def iter_lines(self):
        """Iterate over every resident line (no LRU side effects).

        This is the brute-force sweep — O(capacity) — kept for tests and
        as the ``REPRO_BRUTE_SCAN=1`` differential oracle; production
        paths read the dirty dict / EID index instead.
        """
        for cache_set in self._sets:
            for line in cache_set:
                yield line

    def dirty_lines(self):
        """List the dirty lines in ``iter_lines()`` order (a snapshot).

        Visit order matters: flush engines issue NVM writes per line, and
        multi-channel timing depends on issue order. The dirty dict knows
        *which* lines are dirty in O(dirty); regrouping them by set and
        walking each touched set in MRU order reconstructs the exact order
        the brute-force sweep would have produced, so index-backed flushes
        stay bit-identical to the oracle.
        """
        if self._brute_scan:
            return [line for line in self.iter_lines() if line.dirty]
        dirty = self._dirty_lines
        if not dirty:
            return []
        shift = self._line_shift
        mask = self._set_mask
        sets = self._sets
        out = []
        for set_id in sorted({(addr >> shift) & mask for addr in dirty}):
            for line in sets[set_id]:
                if line._dirty:
                    out.append(line)
        return out

    def dirty_count(self):
        """Number of dirty resident lines (dict size, O(1))."""
        return len(self._dirty_lines)

    def resident_count(self):
        """Number of resident lines (running count, O(1))."""
        return len(self._tags)

    def __len__(self):
        return len(self._tags)
