"""SRAM cache hierarchy substrate.

A multi-level, multi-core, inclusive write-back hierarchy: per-core private
L1 and L2 caches and one shared LLC, with MESI-lite states, LRU replacement,
and the snooping/flush/scan operations the crash-consistency schemes hook
into. PiCL's additions (EID tags on lines, undo forwarding) ride on the
``eid`` field each line carries; the hierarchy itself never interprets it,
matching the paper's claim that PiCL leaves coherence and eviction policy
unmodified.
"""

from repro.cache.cache import SetAssocCache
from repro.cache.eid_index import EidIndex
from repro.cache.hierarchy import CacheHierarchy, EvictionSink
from repro.cache.line import CacheLine, LineState

__all__ = [
    "CacheLine",
    "LineState",
    "SetAssocCache",
    "EidIndex",
    "CacheHierarchy",
    "EvictionSink",
]
