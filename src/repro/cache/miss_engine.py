"""Batched miss-chain engine: the L2/LLC/NVM slow path as one fused loop.

The columnar interpreter (PR 6) made classified L1 hits nearly free, which
left miss-heavy rows at parity: every residual reference replays through
``CacheHierarchy.access`` — a chain of six-plus Python calls per miss
(``access`` → ``_fill_to_l1`` → ``_fill_to_l2`` → ``_insert_llc`` →
``demand_fill``/``write_back`` → channel arithmetic), each re-resolving
attributes the previous frame already held. Profiling a gcc row shows the
per-call overhead of exactly this chain dominating end-to-end time.

This module replaces that chain with a **drain**: a single closure that
processes a span of residual references with the entire miss chain
transcribed inline — L1/L2/LLC probes, victim selection in eviction
order, NVM channel recurrences as local-integer arithmetic, the scheme's
store/write-back callbacks either transcribed (when provably the known
bodies) or called at the exact scalar call sites — plus *deferred batch
bookkeeping*:

* stat counters accumulate in locals and land once per drain
  (delta-commutative with anything an out-of-line callee bumps);
* PiCL undo entries for cross-epoch stores defer only the FIFO append:
  the bloom filter and pending-address set (the structures the eviction
  hazard probe reads) update eagerly per entry, while the ``_entries``
  extend and entries-created counter land in one batch per run — the
  hazard probe stays live with zero pre-probe work;
* ``core.cycle`` / ``mem_stall_cycles`` / ``system._next_token`` live in
  locals and are written back on exit.

**Bit-identity argument.** The drain visits references in exactly the
scalar order and mutates all *shared* structures (tag dicts, LRU lists,
dirty dicts, EID index, mirror queues, NVM image, undo log) at exactly
the scalar program points. Deferral is restricted to state nothing reads
mid-drain, and every deferral is forced down before any point that could
observe it:

* pending undo entries are merged into ``buffer._entries`` before any
  hazard-triggered ``buffer.flush``, before any ``buffer.add`` that
  could cross capacity (so the flush fires at the scalar trigger entry
  with the scalar issue cycle; the capacity test counts
  ``_entries + pend``), before every fault-plan notify, and at drain
  exit — in particular they are always down before any site can raise
  ``CrashSignal``, so crash snapshots are token-exact. The bloom filter
  and pending-address set never lag at all (eager updates), so the
  hazard probe needs no pre-merge;
* channel timing state is held in locals but synced to the ``_Channel``
  object around every external call (undo flushes and scheme callbacks
  issue NVM traffic of their own); a live-flag keeps the exit sync from
  clobbering updates made by a callee that raised;
* counters/cycles/tokens flush in a ``finally``, so even a mid-drain
  ``CrashSignal`` leaves exactly the scalar crash-time values.

**Safety conditions** (checked by :func:`build_engine` /
:func:`build_engines`; any failure falls back to the scalar path,
bit-identically):

* ``REPRO_BATCH_MISS`` not ``0`` (the escape hatch);
* the columnar L1 mirror attached to every core's L1 (engines are
  per-core: each binds one core's private L1/L2 and mirror, and all of
  them share the exact LLC/NVM sink — the horizon-batched multi-core
  interpreter serializes the turns, so at most one drain is live at a
  time);
* no DRAM cache in front of NVM, plain single-channel ``NvmDevice``
  (the banked/open-page device has per-bank state the inline recurrence
  does not model);
* the hierarchy's eviction sink is the scheme itself.

Multi-core drains take a ``budget`` (the turn's cycle horizon): the
drain retires references while the core's clock stays at or under it and
stops after the first reference that crosses — exactly the heap loop's
"re-push and compare" continuation rule. A ``tbase``/``ibase`` pair
additionally keeps ``system.total_instructions`` / ``core.instructions``
crash-exact: the scalar multi-core loop retires them per reference, so
the drain's ``finally`` recomputes both from the chunk's cumulative
instruction counts at whatever reference it stopped on.

Scheme dispatch is derived from method identity
(:meth:`repro.baselines.base.CrashConsistencyScheme.miss_engine_profile`):
unknown overrides degrade to out-of-line calls at the scalar call sites,
so a new scheme is automatically safe, just not automatically fast.

The EID-index discard on LLC eviction is deliberately **never** deferred:
with a deferred discard, an old line and a same-address successor with
the same EID would share a bucket slot, and the late discard would pop
the successor's entry — index drift the fail-fast ``retag`` would only
catch much later. ``EidIndex.verify_against`` is the differential oracle
for exactly this class of bug.
"""

import os
from bisect import bisect_left

from repro.baselines.base import CrashConsistencyScheme
from repro.cache.line import CacheLine, LineState
from repro.common.eid import EpochId
from repro.common.errors import SimulationError
from repro.core.picl import PiclScheme
from repro.core.undo import UndoEntry
from repro.mem.nvm import AccessCategory, NvmDevice

#: write-back dispatch: out-of-line call / inline base body / inline PiCL body
_WB_CALL, _WB_BASE, _WB_PICL = 0, 1, 2


def _eligible(sim):
    """Shared safety gate; returns (controller, device) or None."""
    if os.environ.get("REPRO_BATCH_MISS", "1") == "0":
        return None
    hierarchy = sim.hierarchy
    if any(l1._vec is None for l1 in hierarchy._l1):
        return None
    if hierarchy.sink is not sim.scheme:
        return None
    controller = hierarchy.controller
    if controller.dram_cache is not None:
        return None
    device = controller.device
    # Exactly the plain closed-page device whose channel recurrence the
    # drain transcribes; the banked open-page subclass (and any future
    # device) keeps the scalar path.
    if type(device) is not NvmDevice or device._only_channel is None:
        return None
    return controller, device


def build_engine(sim):
    """Build the single-core miss-chain engine, or None when ineligible."""
    if sim.hierarchy.n_cores != 1:
        return None
    parts = _eligible(sim)
    if parts is None:
        return None
    controller, device = parts
    return MissChainEngine(sim, controller, device)


def build_engines(sim):
    """Per-core engines for the multi-core interpreter, or None.

    One engine per core, each bound to that core's private L1/L2 and L1
    mirror; the LLC/NVM bindings are shared. The interpreter's horizon
    rule guarantees at most one drain runs at a time, so the shared
    deferred state (channel recurrence, stat deltas) never interleaves.
    """
    parts = _eligible(sim)
    if parts is None:
        return None
    controller, device = parts
    return [
        MissChainEngine(sim, controller, device, core_id=core_id, eager_gap=True)
        for core_id in range(sim.hierarchy.n_cores)
    ]


class MissChainEngine:
    """Per-simulation state + the drain-closure factory."""

    def __init__(self, sim, controller, device, core_id=0, eager_gap=False):
        hierarchy = sim.hierarchy
        self.hierarchy = hierarchy
        self.system = sim.system
        self.scheme = sim.scheme
        self.core_id = core_id
        #: Crash-time gap convention of the scalar loop this engine must
        #: mirror. The multi-core heap loop charges a reference's compute
        #: gap to the core BEFORE issuing the access
        #: (``advance_compute``), the single-core segment loop only
        #: commits it together with the access wait — observable solely
        #: when a CrashSignal escapes mid-chain, where the crashed core's
        #: clock must match the scalar loop's to the cycle.
        self.eager_gap = eager_gap
        self.core = sim.cores[core_id]
        self.controller = controller
        self.device = device
        self.l1 = hierarchy._l1[core_id]
        self.l2 = hierarchy._l2[core_id]
        self.llc = hierarchy.llc
        self.vec = self.l1._vec

        sink = hierarchy.sink
        wb = type(sink).write_back
        if wb is CrashConsistencyScheme.write_back:
            self.wb_mode = _WB_BASE
        elif wb is PiclScheme.write_back:
            self.wb_mode = _WB_PICL
        else:
            self.wb_mode = _WB_CALL
        profile = sink.miss_engine_profile()
        self.fill_token_overridden = profile["fill_token"]
        # PiCL state (None-safe for every other scheme).
        self.buffer = getattr(sink, "buffer", None)

    # ------------------------------------------------------------------
    # window classification (profiling / Amdahl accounting)
    # ------------------------------------------------------------------

    def classify(self, miss_addrs):
        """Classify residual miss addresses per level, mutation-free.

        Requires the L2/LLC :class:`~repro.cache.vector_mirror.LevelMirror`
        planes (``REPRO_MISS_PROFILE=1``). Returns a dict with the class
        counts the docs' Amdahl breakdown uses: classified L2 hits, LLC
        hits, NVM fills, and how many NVM fills land in LLC sets whose
        LRU way is dirty (a write-back-likely fill). Advisory by design —
        the drain re-probes live dicts — so this never feeds timing.
        """
        import numpy as np

        l2_vec = self.l2._vec
        llc_vec = self.llc._vec
        if l2_vec is None or llc_vec is None or not len(miss_addrs):
            return None
        l2_vec.sync_level(self.l2)
        llc_vec.sync_level(self.llc)
        a = np.asarray(miss_addrs, dtype=np.int64)
        s2 = (a >> l2_vec._line_shift) & l2_vec._set_mask
        l2_hit = (l2_vec.tags2d[s2] == a[:, None]).any(axis=1)
        sL = (a >> llc_vec._line_shift) & llc_vec._set_mask
        llc_rows = llc_vec.tags2d[sL]
        llc_hit = (llc_rows == a[:, None]).any(axis=1)
        nvm = ~l2_hit & ~llc_hit
        full = (llc_rows != -1).all(axis=1)
        lru_dirty = llc_vec.dirty2d[sL][:, -1] != 0
        return {
            "misses": int(a.size),
            "l2_hits": int(np.count_nonzero(l2_hit)),
            "llc_hits": int(np.count_nonzero(llc_hit & ~l2_hit)),
            "nvm_fills": int(np.count_nonzero(nvm)),
            "dirty_victim_fills": int(np.count_nonzero(nvm & full & lru_dirty)),
        }

    # ------------------------------------------------------------------
    # the drain
    # ------------------------------------------------------------------

    def make_drain(self, gaps, addrs, writes, cum, run_ends, wcum):
        """Build the fused drain for one trace chunk.

        Returns ``drain(i, stop, seg_end, sfilter, budget=None,
        tbase=None, ibase=None) -> new i`` with the same contract as the
        interpreter's ``scalar_span``: processes references in
        ``[i, stop)`` exactly, may advance past ``stop`` (never
        ``seg_end``) through run-coalescing tails. ``sfilter`` is the
        segment's ``vector_store_filter()`` value and fixes the store
        dispatch for the whole call (the SystemEID only moves at segment
        boundaries).

        ``budget`` (multi-core turns) is the horizon: the first reference
        of the call always retires (the heap pop is unconditional), after
        which the drain stops as soon as the core's clock exceeds the
        budget — including mid-run, where the coalescing tail is clamped
        to the references whose start cycle still fits. ``tbase`` /
        ``ibase`` make the instruction counters crash-exact: when given,
        the ``finally`` writes ``system.total_instructions = tbase +
        cum[i-1]`` and ``core.instructions = ibase + cum[i-1]`` so a
        ``CrashSignal`` escaping mid-drain leaves exactly the per-
        reference values of the scalar heap loop.
        """
        hierarchy = self.hierarchy
        system = self.system
        scheme = self.scheme
        controller = self.controller
        device = self.device
        l1, l2, llc = self.l1, self.l2, self.llc
        vec = self.vec
        buffer = self.buffer
        bloom = buffer.bloom if buffer is not None else None
        channel = device._only_channel

        def turn_gen(
            i,
            stop,
            seg_end,
            sfilter,
            budget=None,
            tbase=None,
            ibase=None,
            # Multi-core persistent-burst protocol: when ``cstate`` (the
            # caller's per-core state) is given, the generator maintains
            # ``cstate.pos`` / ``cstate.gen_i`` / ``cstate.scalar_budget``
            # / ``cstate.gen_live`` itself at every park point, and
            # ``auto_epoch`` / ``auto_crash`` switch the segment bound to
            # self-managed: recomputed on every resume from the freshly
            # resynced instruction totals (foreign turns move them while
            # this generator is parked), overriding the ``seg_end``
            # argument. ``auto_epoch`` itself is stable while the
            # generator lives — an epoch fire bumps the caller's serial,
            # which retires the generator before the next resume.
            cstate=None,
            auto_epoch=None,
            auto_crash=None,
            # Default-arg binding, like the interpreter's scalar_span: the
            # body runs per reference and locals beat closure derefs.
            bisect=bisect_left,
            nlen=len(cum),
            cid=self.core_id,
            back_inv=hierarchy._back_invalidate,
            gaps=gaps,
            addrs=addrs,
            writes=writes,
            cum=cum,
            run_ends=run_ends,
            wcum=wcum,
            system=system,
            scheme=scheme,
            sink=hierarchy.sink,
            track=system.track_reference,
            arch_image=system.arch_image,
            modified=LineState.MODIFIED,
            # L1
            l1=l1,
            l1_tags=l1._tags,
            l1_sets=l1._sets,
            l1_dirty=l1._dirty_lines,
            l1_shift=l1._line_shift,
            l1_mask=l1._set_mask,
            l1_assoc=l1.assoc,
            l1_latency=l1.hit_latency,
            vec_pending=vec.pending,
            vec_evictq=vec.evictq,
            vec_eidq=vec.eidq,
            vec_removed=vec.removed,
            # L2
            l2=l2,
            l2_tags=l2._tags,
            l2_sets=l2._sets,
            l2_dirty=l2._dirty_lines,
            l2_shift=l2._line_shift,
            l2_mask=l2._set_mask,
            l2_assoc=l2.assoc,
            l2_latency=l2.hit_latency,
            l2_vec=l2._vec,
            # LLC
            llc=llc,
            llc_tags=llc._tags,
            llc_sets=llc._sets,
            llc_dirty=llc._dirty_lines,
            llc_shift=llc._line_shift,
            llc_mask=llc._set_mask,
            llc_assoc=llc.assoc,
            llc_latency=llc.hit_latency,
            llc_vec=llc._vec,
            index=llc.eid_index,
            buckets=llc.eid_index.buckets if llc.eid_index is not None else None,
            index_refresh=(
                llc.eid_index.refresh if llc.eid_index is not None else None
            ),
            # NVM / controller
            channel=channel,
            read_occ=device._line_read_occupancy,
            write_occ=device._line_write_occupancy,
            icap=device._interference_cap,
            qlimit=device._queue_limit,
            img_lines=controller.image._lines,
            smf=hierarchy.store_miss_factor,
            # dispatch
            wb_mode=self.wb_mode,
            ft=(hierarchy.sink.fill_token if self.fill_token_overridden else None),
            sink_on_store=hierarchy.sink.on_store,
            sink_repeat=hierarchy.sink.on_store_repeat,
            sink_wb=hierarchy.sink.write_back,
            snoop=hierarchy._snoop_invalidate,
            # PiCL inline state
            buffer=buffer,
            bloom=bloom,
            bloom_add=(bloom.add if bloom is not None else None),
            created=(buffer._entries_created if buffer is not None else None),
            epochs=getattr(scheme, "epochs", None),
            bwords=(bloom._words if bloom is not None else None),
            bmask=(bloom._mask if bloom is not None else None),
            bloom2=(bloom is not None and bloom.n_hashes == 2),
            capacity=(buffer.capacity if buffer is not None else 0),
            # fault plans (installed before run(); bound per chunk)
            h_fault=hierarchy.fault_plan,
            s_fault=getattr(scheme, "fault_plan", None),
            # stat slots (deferred via local deltas, flushed in finally)
            stats_add=hierarchy.stats.add,
            s_l1_hits=hierarchy._l1_hits,
            s_loads=hierarchy._loads,
            s_stores=hierarchy._stores,
            s_l1_miss=hierarchy._l1_misses,
            s_l2_hits=hierarchy._l2_hits,
            s_l2_miss=hierarchy._l2_misses,
            s_llc_hits=hierarchy._llc_hits,
            s_llc_miss=hierarchy._llc_misses,
            s_llc_dirty=hierarchy._llc_dirty_evictions,
            s_llc_clean=hierarchy._llc_clean_evictions,
            s_l1_ev=l1._evictions,
            s_l2_ev=l2._evictions,
            s_llc_ev=llc._evictions,
            s_fills=controller._demand_fills,
            s_wbs=controller._writebacks,
            s_iops_dr=device._iops_slots[AccessCategory.DEMAND_READ],
            s_iops_wb=device._iops_slots[AccessCategory.WRITEBACK],
            s_bytes_r=device._bytes_read,
            s_bytes_w=device._bytes_written,
            s_cross=getattr(scheme, "_cross_epoch_stores", None),
            CacheLine=CacheLine,
            new_line=CacheLine.__new__,
            EXCLUSIVE=LineState.EXCLUSIVE,
            EID_NONE=EpochId.NONE,
            SimulationError=SimulationError,
            UndoEntry=UndoEntry,
            core=self.core,
            eager_gap=self.eager_gap,
        ):
            # Store dispatch for this call (see vector_store_filter): True
            # -> scheme-silent (base on_store, inline no-op); False -> call
            # sink.on_store per store; int -> PiCL's plain mode, with the
            # full cross-epoch branch transcribed inline.
            if sfilter is True:
                smode = 0
            elif sfilter is False:
                smode = 1
            else:
                smode = 2
                sys_eid = sfilter
            # Deferred accumulators.
            ccycle = core.cycle
            mstall = core.mem_stall_cycles
            ntok = system._next_token
            seq_delta = 0
            d_l1_hits = d_loads = d_stores = d_l1_miss = 0
            d_l2_hits = d_l2_miss = d_llc_hits = d_llc_miss = 0
            d_llc_dirty = d_llc_clean = d_l1_ev = d_l2_ev = d_llc_ev = 0
            d_fills = d_wbs = d_iops_dr = d_iops_wb = 0
            d_bytes_r = d_bytes_w = d_cross = 0
            # Deferred undo entries. Only the FIFO extend (and the
            # entries-created counter) is deferred: the pending set and
            # bloom filter — the two structures the hazard probe reads —
            # update eagerly per entry, so ``pend`` merges down only at a
            # real flush point (hazard flush, capacity crossing, fault
            # notify, drain exit), not before every probe. ``pend`` is
            # nonempty only in smode 2, i.e. only when the sink is PiCL.
            pend = []
            # Channel recurrence state as local ints; ch_live flags when
            # the locals (not the object) are authoritative.
            rbu = channel.read_busy_until
            wbk = channel.write_backlog
            bua = channel.backlog_updated_at
            ch_live = True
            clean = False
            last_i = i
            try:
                while True:
                    if auto_epoch is None:
                        eff = stop
                    else:
                        # Self-managed segment bound: same formula as the
                        # caller's run_turn segmentation — the bound
                        # includes the boundary-crossing reference (+1) —
                        # but recomputed here on every resume, because
                        # foreign turns shrink the distance to the
                        # epoch/crash boundary while this core is parked.
                        limit = auto_epoch - tbase
                        if auto_crash is not None and auto_crash - tbase < limit:
                            limit = auto_crash - tbase
                        seg_end = bisect(cum, limit, i) + 1
                        if seg_end > nlen:
                            seg_end = nlen
                        eff = stop if stop < seg_end else seg_end
                    while i < eff:
                        if eager_gap:
                            # The multi-core scalar loop commits the gap
                            # (advance_compute) before the access chain,
                            # so a CrashSignal from inside the chain must
                            # observe it on the core clock.
                            ccycle += gaps[i]
                            cycle = ccycle
                        else:
                            cycle = ccycle + gaps[i]
                        addr = addrs[i]
                        w = writes[i]
                        if w:
                            # Token drawn before the access chain, as the
                            # scalar loop does — a crash mid-fill must leave
                            # the scalar _next_token.
                            token = ntok
                            ntok = token + 1
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            d_l1_hits += 1
                            wait = l1_latency
                        else:
                            # ==== _fill_to_l1, transcribed ====
                            d_l1_miss += 1
                            fstall = 0
                            source = l2_tags.get(addr)
                            if source is not None:
                                cache_set = l2_sets[(addr >> l2_shift) & l2_mask]
                                if cache_set[0] is not source:
                                    cache_set.remove(source)
                                    cache_set.insert(0, source)
                                lat = l2_latency
                                d_l2_hits += 1
                            else:
                                d_l2_miss += 1
                                # ==== _fill_to_l2, transcribed ====
                                llc_line = llc_tags.get(addr)
                                if llc_line is not None:
                                    cache_set = llc_sets[
                                        (addr >> llc_shift) & llc_mask
                                    ]
                                    if cache_set[0] is not llc_line:
                                        cache_set.remove(llc_line)
                                        cache_set.insert(0, llc_line)
                                    lat2 = llc_latency
                                    d_llc_hits += 1
                                    if (
                                        llc_line.owner is not None
                                        and llc_line.owner != cid
                                    ):
                                        # Another core holds the line: the
                                        # out-of-line snoop pulls its private
                                        # data and releases ownership. It only
                                        # touches the foreign core's caches
                                        # (and their mirror queues), never the
                                        # drain's deferred state.
                                        snoop(llc_line)
                                else:
                                    d_llc_miss += 1
                                    if ft is not None:
                                        # (pend is provably empty here: ft is
                                        # non-None only for redo schemes, whose
                                        # store filter forces smode 1.)
                                        channel.read_busy_until = rbu
                                        channel.write_backlog = wbk
                                        channel.backlog_updated_at = bua
                                        ch_live = False
                                        override = ft(addr)
                                        rbu = channel.read_busy_until
                                        wbk = channel.write_backlog
                                        bua = channel.backlog_updated_at
                                        ch_live = True
                                    else:
                                        override = None
                                    # NvmDevice.read_line / _Channel.read,
                                    # transcribed on locals.
                                    if cycle > bua:
                                        wbk -= cycle - bua
                                        if wbk < 0:
                                            wbk = 0
                                        bua = cycle
                                    start = rbu if rbu > cycle else cycle
                                    start += wbk if wbk < icap else icap
                                    finish = start + read_occ
                                    rbu = finish
                                    d_iops_dr += 1
                                    d_bytes_r += 64
                                    d_fills += 1
                                    mem_lat = finish - cycle
                                    if override is not None:
                                        token_f = override
                                        stats_add("llc.fills_from_log")
                                    else:
                                        # MemoryImage.read inline (0 is
                                        # INITIAL_TOKEN; _lines never rebinds
                                        # outside restore()).
                                        token_f = img_lines.get(addr, 0)
                                    # CacheLine.__init__, slot-by-slot (one
                                    # fresh line per NVM fill).
                                    llc_line = new_line(CacheLine)
                                    llc_line.addr = addr
                                    llc_line.state = EXCLUSIVE
                                    llc_line._dirty = False
                                    llc_line.token = token_f
                                    llc_line.eid = EID_NONE
                                    llc_line.owner = None
                                    llc_line.sub_eids = None
                                    llc_line._home = None
                                    llc_line._vslot = -1
                                    # ==== _insert_llc, transcribed ====
                                    cache_set = llc_sets[
                                        (addr >> llc_shift) & llc_mask
                                    ]
                                    cache_set.insert(0, llc_line)
                                    llc_tags[addr] = llc_line
                                    llc_line._home = llc
                                    # (fresh line: clean, untagged — the dirty
                                    # dict / EID index inserts are dead code)
                                    if llc_vec is not None:
                                        llc_vec.pending.append(llc_line)
                                    if len(cache_set) > llc_assoc:
                                        victim = cache_set.pop()
                                        vaddr = victim.addr
                                        del llc_tags[vaddr]
                                        victim._home = None
                                        if victim._dirty:
                                            del llc_dirty[vaddr]
                                        if llc_vec is not None:
                                            llc_vec.removed.append(vaddr)
                                            llc_vec.evictq.append(victim)
                                        # EidIndex.discard, inline — never
                                        # deferred (see module docstring).
                                        if index is not None:
                                            if victim.sub_eids is not None:
                                                index.sub.pop(vaddr, None)
                                            elif victim.eid >= 0:
                                                bucket = buckets.get(victim.eid)
                                                if bucket is not None:
                                                    bucket.pop(vaddr, None)
                                                    if not bucket:
                                                        del buckets[victim.eid]
                                        d_llc_ev += 1
                                        # ==== _back_invalidate, transcribed
                                        # for the drain's own core; a victim
                                        # owned by another core goes through
                                        # the out-of-line helper, which only
                                        # touches that core's private caches
                                        # and mirror queues — none of the
                                        # drain's deferred state.
                                        owner = victim.owner
                                        if owner is not None and owner != cid:
                                            back_inv(victim)
                                        elif owner is not None:
                                            l1_copy = l1_tags.pop(vaddr, None)
                                            if l1_copy is not None:
                                                l1_sets[
                                                    (vaddr >> l1_shift) & l1_mask
                                                ].remove(l1_copy)
                                                l1_copy._home = None
                                                if l1_copy._dirty:
                                                    del l1_dirty[vaddr]
                                                vec_removed.append(vaddr)
                                                vec_evictq.append(l1_copy)
                                            l2_copy = l2_tags.pop(vaddr, None)
                                            if l2_copy is not None:
                                                l2_sets[
                                                    (vaddr >> l2_shift) & l2_mask
                                                ].remove(l2_copy)
                                                l2_copy._home = None
                                                if l2_copy._dirty:
                                                    del l2_dirty[vaddr]
                                                if l2_vec is not None:
                                                    l2_vec.removed.append(vaddr)
                                                    l2_vec.evictq.append(l2_copy)
                                            if l1_copy is not None and l1_copy._dirty:
                                                src = l1_copy
                                            elif l2_copy is not None and l2_copy._dirty:
                                                src = l2_copy
                                            else:
                                                src = None
                                            if src is not None:
                                                # _merge_lines inline: the LLC
                                                # victim is detached (_home is
                                                # None), so the dirty-dict and
                                                # EID-index arms are dead.
                                                victim.token = src.token
                                                victim._dirty = True
                                                victim.eid = src.eid
                                                if src.sub_eids is not None:
                                                    victim.sub_eids = list(
                                                        src.sub_eids
                                                    )
                                            victim.owner = None
                                        if victim._dirty:
                                            d_llc_dirty += 1
                                            vtok = victim.token
                                            if h_fault is not None:
                                                # Merge pend so a crash here
                                                # observes the exact scalar
                                                # buffer contents.
                                                if pend:
                                                    buffer._entries.extend(pend)
                                                    created.value += len(pend)
                                                    pend = []
                                                h_fault.notify("llc_eviction")
                                            if wb_mode == 2:
                                                # PiclScheme.write_back +
                                                # eviction_hazard, transcribed.
                                                # Bloom and pending-set were
                                                # updated eagerly at pend time,
                                                # so the probe is live without
                                                # merging pend first.
                                                hstall = 0
                                                if buffer._entries or pend:
                                                    if bloom2:
                                                        h1 = (
                                                            vaddr * 2654435761
                                                        ) & 0xFFFFFFFF
                                                        pos = h1 & bmask
                                                        maybe = (
                                                            bwords[pos >> 6]
                                                            >> (pos & 63)
                                                        ) & 1
                                                        if maybe:
                                                            pos = (
                                                                h1
                                                                + (
                                                                    (
                                                                        (vaddr >> 6)
                                                                        * 40503
                                                                        + 0x9E3779B9
                                                                    )
                                                                    & 0xFFFFFFFF
                                                                )
                                                            ) & bmask
                                                            maybe = (
                                                                bwords[pos >> 6]
                                                                >> (pos & 63)
                                                            ) & 1
                                                    else:
                                                        maybe = buffer.bloom.might_contain(
                                                            vaddr
                                                        )
                                                    if maybe:
                                                        if (
                                                            vaddr
                                                            not in buffer._pending_addrs
                                                        ):
                                                            stats_add(
                                                                "undo.bloom_false_positives"
                                                            )
                                                        stats_add("undo.forced_flushes")
                                                        if pend:
                                                            buffer._entries.extend(
                                                                pend
                                                            )
                                                            created.value += len(pend)
                                                            pend = []
                                                        channel.read_busy_until = rbu
                                                        channel.write_backlog = wbk
                                                        channel.backlog_updated_at = bua
                                                        ch_live = False
                                                        hstall = buffer.flush(cycle)
                                                        rbu = channel.read_busy_until
                                                        wbk = channel.write_backlog
                                                        bua = channel.backlog_updated_at
                                                        ch_live = True
                                                if s_fault is not None:
                                                    if pend:
                                                        buffer._entries.extend(pend)
                                                        created.value += len(pend)
                                                        pend = []
                                                    s_fault.notify("pre_inplace")
                                                wnow = cycle + hstall
                                            elif wb_mode == 1:
                                                hstall = 0
                                                wnow = cycle
                                            else:
                                                # (pend is provably empty: pend
                                                # appends only in smode 2, which
                                                # implies wb_mode 2.)
                                                channel.read_busy_until = rbu
                                                channel.write_backlog = wbk
                                                channel.backlog_updated_at = bua
                                                ch_live = False
                                                fstall += sink_wb(vaddr, vtok, cycle)
                                                rbu = channel.read_busy_until
                                                wbk = channel.write_backlog
                                                bua = channel.backlog_updated_at
                                                ch_live = True
                                                wnow = None
                                            if wnow is not None:
                                                # controller.writeback /
                                                # _Channel.post_write on locals.
                                                if wnow > bua:
                                                    wbk -= wnow - bua
                                                    if wbk < 0:
                                                        wbk = 0
                                                    bua = wnow
                                                if wbk > qlimit:
                                                    st = wbk - qlimit
                                                    t2 = wnow + st
                                                    if t2 > bua:
                                                        wbk -= t2 - bua
                                                        if wbk < 0:
                                                            wbk = 0
                                                        bua = t2
                                                else:
                                                    st = 0
                                                wbk += write_occ
                                                d_iops_wb += 1
                                                d_bytes_w += 64
                                                img_lines[vaddr] = vtok
                                                d_wbs += 1
                                                fstall += hstall + st
                                        else:
                                            d_llc_clean += 1
                                    lat2 = llc_latency + mem_lat
                                llc_line.owner = cid
                                # copy_fill inline (LLC → L2).
                                source = new_line(CacheLine)
                                source.addr = addr
                                source.state = EXCLUSIVE
                                source._dirty = False
                                source.token = llc_line.token
                                source.eid = llc_line.eid
                                source.owner = None
                                sub = llc_line.sub_eids
                                source.sub_eids = (
                                    list(sub) if sub is not None else None
                                )
                                source._home = None
                                source._vslot = -1
                                cache_set = l2_sets[(addr >> l2_shift) & l2_mask]
                                cache_set.insert(0, source)
                                l2_tags[addr] = source
                                source._home = l2
                                # (copy_fill lines are clean: no dirty insert)
                                if l2_vec is not None:
                                    l2_vec.pending.append(source)
                                if len(cache_set) > l2_assoc:
                                    victim = cache_set.pop()
                                    vaddr = victim.addr
                                    del l2_tags[vaddr]
                                    victim._home = None
                                    if victim._dirty:
                                        del l2_dirty[vaddr]
                                    if l2_vec is not None:
                                        l2_vec.removed.append(vaddr)
                                        l2_vec.evictq.append(victim)
                                    d_l2_ev += 1
                                    # l1.remove(vaddr), inline (L1 has no EID
                                    # index; the mirror queues are eager).
                                    dropped = l1_tags.pop(vaddr, None)
                                    if dropped is not None:
                                        l1_sets[
                                            (vaddr >> l1_shift) & l1_mask
                                        ].remove(dropped)
                                        dropped._home = None
                                        if dropped._dirty:
                                            del l1_dirty[vaddr]
                                        vec_removed.append(vaddr)
                                        vec_evictq.append(dropped)
                                    if dropped is not None and dropped._dirty:
                                        # _merge_lines inline: the L2 victim is
                                        # detached (_home None) — only the data
                                        # fold is live.
                                        victim.token = dropped.token
                                        victim._dirty = True
                                        victim.eid = dropped.eid
                                        if dropped.sub_eids is not None:
                                            victim.sub_eids = list(
                                                dropped.sub_eids
                                            )
                                    if victim._dirty:
                                        target = llc_tags.get(vaddr)
                                        if target is None:
                                            raise SimulationError(
                                                "inclusion violated: L2 victim "
                                                "%#x absent from LLC" % vaddr
                                            )
                                        # _merge_lines inline: target lives in
                                        # the LLC — dirty dict, EID-index
                                        # refresh, and mirror queue are live.
                                        target.token = victim.token
                                        if not target._dirty:
                                            target._dirty = True
                                            llc_dirty[vaddr] = target
                                        old = target.eid
                                        new_eid = victim.eid
                                        had_sub = target.sub_eids is not None
                                        target.eid = new_eid
                                        if victim.sub_eids is not None:
                                            target.sub_eids = list(
                                                victim.sub_eids
                                            )
                                        if new_eid != old or (
                                            target.sub_eids is not None
                                            and not had_sub
                                        ):
                                            if index is not None:
                                                index_refresh(
                                                    target, old, had_sub
                                                )
                                            if llc_vec is not None:
                                                llc_vec.eidq.append(target)
                                lat = lat2 + l2_latency
                            # copy_fill inline (L2 → L1).
                            line = new_line(CacheLine)
                            line.addr = addr
                            line.state = EXCLUSIVE
                            line._dirty = False
                            line.token = source.token
                            line.eid = source.eid
                            line.owner = None
                            sub = source.sub_eids
                            line.sub_eids = list(sub) if sub is not None else None
                            line._home = None
                            line._vslot = -1
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            cache_set.insert(0, line)
                            l1_tags[addr] = line
                            line._home = l1
                            # (copy_fill lines are clean: no dirty insert)
                            vec_pending.append(line)
                            if len(cache_set) > l1_assoc:
                                victim = cache_set.pop()
                                vaddr = victim.addr
                                del l1_tags[vaddr]
                                victim._home = None
                                vec_removed.append(vaddr)
                                vec_evictq.append(victim)
                                d_l1_ev += 1
                                if victim._dirty:
                                    del l1_dirty[vaddr]
                                    # _merge_down into L2
                                    target = l2_tags.get(vaddr)
                                    if target is None:
                                        raise SimulationError(
                                            "inclusion violated: L1 victim %#x "
                                            "absent from l2" % vaddr
                                        )
                                    # _merge_lines inline: target lives in the
                                    # L2 — dirty dict and mirror queue live, no
                                    # EID index on private caches.
                                    target.token = victim.token
                                    if not target._dirty:
                                        target._dirty = True
                                        l2_dirty[vaddr] = target
                                    old = target.eid
                                    new_eid = victim.eid
                                    had_sub = target.sub_eids is not None
                                    target.eid = new_eid
                                    if victim.sub_eids is not None:
                                        target.sub_eids = list(victim.sub_eids)
                                    if new_eid != old or (
                                        target.sub_eids is not None
                                        and not had_sub
                                    ):
                                        if l2_vec is not None:
                                            l2_vec.eidq.append(target)
                            fill_lat = lat + l1_latency
                            if w:
                                wait = int(fill_lat * smf) + fstall
                            else:
                                wait = fill_lat + fstall
                        # ==== the store continuation of access() ====
                        if w:
                            if smode == 2:
                                # PiclScheme.on_store, plain mode, transcribed:
                                # cheap same-epoch branch, else the full branch
                                # with the undo append deferred into ``pend``.
                                seq_delta += 1
                                if line.eid != sys_eid:
                                    vf = line.eid
                                    if vf < 0:
                                        vf = epochs.persisted_eid
                                    entry = UndoEntry(addr, line.token, vf, sys_eid)
                                    if (
                                        len(buffer._entries) + len(pend) + 1
                                        >= capacity
                                    ):
                                        # The capacity-reaching entry goes
                                        # through add() so the flush fires at
                                        # the scalar trigger with the scalar
                                        # issue cycle (add() itself does the
                                        # bloom/pending/created work for it).
                                        if pend:
                                            buffer._entries.extend(pend)
                                            created.value += len(pend)
                                            pend = []
                                        channel.read_busy_until = rbu
                                        channel.write_backlog = wbk
                                        channel.backlog_updated_at = bua
                                        ch_live = False
                                        wait += buffer.add(entry, cycle)
                                        rbu = channel.read_busy_until
                                        wbk = channel.write_backlog
                                        bua = channel.backlog_updated_at
                                        ch_live = True
                                    else:
                                        # Defer the FIFO append, but update the
                                        # hazard-probe structures eagerly —
                                        # BloomFilter.add (2-hash, unrolled)
                                        # and the pending-address set.
                                        pend.append(entry)
                                        buffer._pending_addrs.add(addr)
                                        if bloom2:
                                            h1 = (addr * 2654435761) & 0xFFFFFFFF
                                            pos = h1 & bmask
                                            bwords[pos >> 6] |= 1 << (pos & 63)
                                            pos = (
                                                h1
                                                + (
                                                    ((addr >> 6) * 40503 + 0x9E3779B9)
                                                    & 0xFFFFFFFF
                                                )
                                            ) & bmask
                                            bwords[pos >> 6] |= 1 << (pos & 63)
                                            bloom._population += 1
                                        else:
                                            bloom_add(addr)
                                    # apply_store on the L1 line (64 B, no
                                    # EID index on private caches).
                                    line.eid = sys_eid
                                    d_cross += 1
                                    # Undo forwarding: retag the LLC copy,
                                    # EID-index exact (apply_store inline).
                                    llc_fwd = llc_tags.get(addr)
                                    if llc_fwd is None:
                                        raise SimulationError(
                                            "inclusion violated: stored line "
                                            "%#x absent from LLC" % addr
                                        )
                                    if llc_fwd is not line:
                                        # apply_store on the LLC copy:
                                        # EidIndex.retag transcribed (strict
                                        # KeyError on drift, like the index).
                                        old = llc_fwd.eid
                                        if old != sys_eid:
                                            llc_fwd.eid = sys_eid
                                            if llc_fwd.sub_eids is None:
                                                if old >= 0:
                                                    bucket = buckets[old]
                                                    del bucket[addr]
                                                    if not bucket:
                                                        del buckets[old]
                                                bucket = buckets.get(sys_eid)
                                                if bucket is None:
                                                    bucket = buckets[sys_eid] = {}
                                                bucket[addr] = llc_fwd
                                                if llc_vec is not None:
                                                    llc_vec.eidq.append(llc_fwd)
                            elif smode == 1:
                                # (pend is provably empty in smode 1.)
                                channel.read_busy_until = rbu
                                channel.write_backlog = wbk
                                channel.backlog_updated_at = bua
                                ch_live = False
                                wait += sink_on_store(cid, line, cycle)
                                rbu = channel.read_busy_until
                                wbk = channel.write_backlog
                                bua = channel.backlog_updated_at
                                ch_live = True
                            # smode 0: base on_store is a no-op.
                            line.token = token
                            if not line._dirty:
                                line._dirty = True
                                l1_dirty[addr] = line
                            line.state = modified
                            vec_eidq.append(line)
                            d_stores += 1
                            if track:
                                arch_image[addr] = token
                        else:
                            d_loads += 1
                        ccycle = cycle + wait
                        mstall += wait
                        if budget is not None and ccycle > budget:
                            # Horizon crossed: this reference still retires
                            # (the heap loop pushes after it), but the turn
                            # ends here — no tail, no next reference.
                            i += 1
                            break
                        # ==== run-coalescing tail (access_repeat inline) ====
                        run_end = run_ends[i]
                        if run_end > seg_end:
                            run_end = seg_end
                        i += 1
                        if budget is not None and run_end > i:
                            # Clamp the tail to the horizon: a tail reference
                            # executes iff the clock before it is within
                            # budget (each costs its gap plus the hit
                            # latency), and the first crossing reference is
                            # included — the same continuation rule as the
                            # per-reference loop above.
                            e = i
                            cc = ccycle
                            while e < run_end and cc <= budget:
                                cc += cum[e] - cum[e - 1] + l1_latency - 1
                                e += 1
                            run_end = e
                        if run_end > i:
                            k = run_end - i
                            kw = wcum[run_end - 1] - wcum[i - 1]
                            if kw:
                                # The head access just made ``line`` resident
                                # and MRU (fills insert at the front, hits
                                # move to it, and no scheme callback evicts
                                # L1 lines), so the scalar probe is provably
                                # true and skipped; the dirty/MODIFIED guard
                                # is real — the head may have been a load.
                                ok = False
                                if line._dirty and line.state == modified:
                                    if smode == 0:
                                        ok = True
                                    elif smode == 2:
                                        if line.eid == sys_eid:
                                            seq_delta += kw
                                            ok = True
                                    else:
                                        # (pend is provably empty in smode 1.)
                                        channel.read_busy_until = rbu
                                        channel.write_backlog = wbk
                                        channel.backlog_updated_at = bua
                                        ch_live = False
                                        ok = (
                                            sink_repeat(cid, line, kw, ccycle)
                                            is not None
                                        )
                                        rbu = channel.read_busy_until
                                        wbk = channel.write_backlog
                                        bua = channel.backlog_updated_at
                                        ch_live = True
                                if not ok:
                                    continue
                                last_token = ntok + kw - 1
                                line.token = last_token
                                d_stores += kw
                                d_l1_hits += k
                                d_loads += k - kw
                                ntok += kw
                                if track:
                                    arch_image[addr] = last_token
                                wait = k * l1_latency
                            else:
                                d_l1_hits += k
                                d_loads += k
                                wait = k * l1_latency
                            ccycle += (cum[run_end - 1] - cum[i - 1]) - k + wait
                            mstall += wait
                            i = run_end
                            if budget is not None and ccycle > budget:
                                break
                    # ---- horizon yield ----------------------------------
                    # Park only the state other agents read between turns:
                    # the shared NVM channel recurrence, the global token
                    # counter, the undo-FIFO deferrals (foreign hazard
                    # probes read ``buffer._entries``), this core's clock
                    # (the heap orders on it), and the instruction
                    # counters (foreign resumes re-derive their own bases
                    # from the global total). The stat deltas have no
                    # mid-run readers — they stay deferred until the
                    # generator finishes or is closed (the ``finally``
                    # below always flushes the deltas; ``clean`` guards
                    # only the parked state).
                    if pend:
                        buffer._entries.extend(pend)
                        created.value += len(pend)
                        pend = []
                    channel.read_busy_until = rbu
                    channel.write_backlog = wbk
                    channel.backlog_updated_at = bua
                    core.cycle = ccycle
                    core.mem_stall_cycles = mstall
                    system._next_token = ntok
                    if tbase is not None:
                        done = cum[i - 1] if i else 0
                        system.total_instructions = tbase + done
                        core.instructions = ibase + done
                    if cstate is not None:
                        cstate.pos = i
                        cstate.gen_i = i
                        cstate.scalar_budget -= i - last_i
                        last_i = i
                    clean = True
                    if i >= eff:
                        # Burst retired, segment boundary reached, or
                        # chunk tail hit: the caller runs the boundary
                        # bookkeeping (``gen_live`` tells it this was a
                        # completion, not a horizon park).
                        if cstate is not None:
                            cstate.gen_live = False
                        yield i
                        return
                    budget = yield i
                    clean = False
                    # ---- resume: reload what other turns moved ----------
                    ccycle = core.cycle
                    mstall = core.mem_stall_cycles
                    ntok = system._next_token
                    rbu = channel.read_busy_until
                    wbk = channel.write_backlog
                    bua = channel.backlog_updated_at
                    if tbase is not None:
                        done = cum[i - 1] if i else 0
                        tbase = system.total_instructions - done
                        ibase = core.instructions - done
            finally:
                if not clean:
                    if pend:
                        buffer._entries.extend(pend)
                        created.value += len(pend)
                    if ch_live:
                        channel.read_busy_until = rbu
                        channel.write_backlog = wbk
                        channel.backlog_updated_at = bua
                    core.cycle = ccycle
                    core.mem_stall_cycles = mstall
                    if tbase is not None:
                        # Multi-core crash exactness: the scalar heap loop
                        # retires total/core instructions per reference, so
                        # recompute both from the chunk's cumulative counts at
                        # whatever reference this call stopped on — including
                        # a CrashSignal escaping mid-reference, where ``i`` is
                        # the in-flight (uncounted) reference. With
                        # ``eager_gap`` the scalar loop's advance_compute has
                        # already retired the in-flight gap onto the CORE
                        # counter (never the global total, which it only
                        # bumps after the access returns), so mirror that.
                        done = cum[i - 1] if i else 0
                        system.total_instructions = tbase + done
                        core.instructions = ibase + done
                        if eager_gap and i < nlen:
                            core.instructions += gaps[i]
                    system._next_token = ntok
                # Deltas accumulate across parked turns; they flush exactly
                # once — here — whether the generator completes, dies on a
                # crash, or is closed while parked.
                if seq_delta:
                    scheme._store_seq += seq_delta
                if d_l1_hits:
                    s_l1_hits.value += d_l1_hits
                if d_loads:
                    s_loads.value += d_loads
                if d_stores:
                    s_stores.value += d_stores
                if d_l1_miss:
                    s_l1_miss.value += d_l1_miss
                if d_l2_hits:
                    s_l2_hits.value += d_l2_hits
                if d_l2_miss:
                    s_l2_miss.value += d_l2_miss
                if d_llc_hits:
                    s_llc_hits.value += d_llc_hits
                if d_llc_miss:
                    s_llc_miss.value += d_llc_miss
                if d_llc_dirty:
                    s_llc_dirty.value += d_llc_dirty
                if d_llc_clean:
                    s_llc_clean.value += d_llc_clean
                if d_l1_ev:
                    s_l1_ev.value += d_l1_ev
                if d_l2_ev:
                    s_l2_ev.value += d_l2_ev
                if d_llc_ev:
                    s_llc_ev.value += d_llc_ev
                if d_fills:
                    s_fills.value += d_fills
                if d_wbs:
                    s_wbs.value += d_wbs
                if d_iops_dr:
                    s_iops_dr.value += d_iops_dr
                if d_iops_wb:
                    s_iops_wb.value += d_iops_wb
                if d_bytes_r:
                    s_bytes_r.value += d_bytes_r
                if d_bytes_w:
                    s_bytes_w.value += d_bytes_w
                if d_cross:
                    s_cross.value += d_cross

        def drain(i, stop, seg_end, sfilter, budget=None, tbase=None, ibase=None):
            # One-shot wrapper over the generator: a single advance covers
            # the whole span (or the first horizon crossing — the shared
            # state is parked at the yield, so closing the parked
            # generator is side-effect free).
            g = turn_gen(i, stop, seg_end, sfilter, budget, tbase, ibase)
            i = next(g)
            g.close()
            return i

        # The multi-core burst path holds one generator per core across
        # turns (sending each turn's budget) so the prologue/epilogue
        # amortizes over the whole burst, not one ~4-reference turn.
        drain.turn_gen = turn_gen
        return drain
