"""Multi-core, inclusive, write-back cache hierarchy.

Structure (Table IV of the paper): per-core private L1 and L2, one shared
LLC sized per-core times the core count. Inclusion is strict (L1 ⊆ L2 ⊆
LLC), so an LLC eviction back-invalidates the private copies, pulling any
fresher private data into the victim before it is written back.

Crash-consistency schemes attach as an :class:`EvictionSink`:

* ``write_back(line_addr, token, now)`` — every dirty LLC eviction and
  every flush write is routed through the scheme, because schemes differ in
  what a write-back means (in place for undo schemes, into a redo buffer
  for redo schemes, bloom-checked for PiCL).
* ``fill_token(line_addr)`` — redo schemes snoop their buffer on fills.
* ``on_store(core, line, now)`` — called with the line *before* the store's
  token is applied, which is where PiCL detects cross-epoch stores and
  captures undo data.

Timing: on-chip operations (tag checks, snoops, scans) are charged only
their hit latencies; the paper's overheads all come from NVM traffic, and
"stores are not on the critical path as they are first absorbed by the
store-buffer", so stores are charged a configurable fraction of their miss
latency.
"""

import os

from repro.common.errors import SimulationError
from repro.common.stats import StatCounters
from repro.cache.cache import SetAssocCache
from repro.cache.eid_index import EidIndex
from repro.cache.line import CacheLine, LineState
from repro.cache.vector_mirror import L1TagMirror


class EvictionSink:
    """Default sink: write everything in place (the Ideal-NVM behaviour)."""

    def __init__(self, controller):
        self.controller = controller

    def write_back(self, line_addr, token, now):
        """Default sink behaviour: write the line in place."""
        _completion, stall = self.controller.writeback(line_addr, token, now)
        return stall

    def fill_token(self, line_addr):
        """Default sink behaviour: no redo buffer to snoop."""
        return None

    def on_store(self, core, line, now):
        """Default sink behaviour: stores need no extra work."""
        return 0

    def on_store_repeat(self, core, line, count, now):
        """Batch hook for ``count`` repeated stores that are scheme no-ops.

        Contract (see CacheHierarchy.access_repeat): return 0 after
        applying bookkeeping that is *provably identical* to ``count``
        consecutive ``on_store`` calls on this line — which also means no
        stall and no state change a later access could observe differently.
        Return None (without mutating anything) to make the caller replay
        the stores one by one through ``on_store``.
        """
        return 0

    def vector_store_filter(self):
        """Which L1 store hits the columnar interpreter may bulk-apply.

        Returns ``True`` (every store hit is scheme-silent — this sink's
        ``on_store`` is a pure no-op), ``False`` (no store may leave the
        exact path), or an EID: a store hit is scheme-silent exactly when
        the line's mirrored EID equals it (PiCL's same-epoch stores).
        Re-evaluated per epoch segment, never cached across boundaries.
        """
        return True

    def on_store_bulk(self, count):
        """Aggregate bookkeeping for ``count`` stores the columnar path
        bulk-applied after :meth:`vector_store_filter` classified each of
        them scheme-silent. Must be exactly what ``count`` consecutive
        ``on_store`` calls would have done to scheme state (for this sink:
        nothing)."""


class CacheHierarchy:
    """Private L1/L2 per core plus a shared, inclusive LLC."""

    def __init__(
        self,
        controller,
        n_cores=1,
        l1_size=32 * 1024,
        l1_assoc=4,
        l1_latency=1,
        l2_size=256 * 1024,
        l2_assoc=8,
        l2_latency=4,
        llc_size_per_core=2 * 1024 * 1024,
        llc_assoc=8,
        llc_latency=30,
        line_size=64,
        store_miss_factor=0.5,
        stats=None,
    ):
        self.controller = controller
        self.n_cores = n_cores
        self.line_size = line_size
        self.store_miss_factor = store_miss_factor
        self.stats = stats if stats is not None else StatCounters()
        self._l1 = [
            SetAssocCache("l1", l1_size, l1_assoc, line_size, l1_latency, self.stats)
            for _ in range(n_cores)
        ]
        self._l2 = [
            SetAssocCache("l2", l2_size, l2_assoc, line_size, l2_latency, self.stats)
            for _ in range(n_cores)
        ]
        self.llc = SetAssocCache(
            "llc",
            llc_size_per_core * n_cores,
            llc_assoc,
            line_size,
            llc_latency,
            self.stats,
        )
        # The LLC carries the EID-array analogue (see repro.cache.eid_index);
        # private caches only need dirty-line tracking. Attached here, not in
        # SetAssocCache, because only the shared level is ever ACS-scanned.
        self.llc.eid_index = EidIndex()
        # The columnar interpreter classifies whole epoch segments against a
        # numpy mirror of each core's L1 tags/EIDs (see
        # repro.cache.vector_mirror). L1s are private, so the mirror
        # generalizes per core: the single-core loop reads core 0's, the
        # horizon-batched multi-core loop reads the running core's.
        # REPRO_VECTOR=0 drops every mirror and restores the scalar loops;
        # REPRO_VECTOR_MC=0 drops them only for multi-core systems (the
        # dedicated escape hatch the service layer pins on fleet workers).
        if os.environ.get("REPRO_VECTOR", "1") != "0" and (
            n_cores == 1 or os.environ.get("REPRO_VECTOR_MC", "1") != "0"
        ):
            for l1 in self._l1:
                l1._vec = L1TagMirror(
                    l1.n_sets, l1.assoc, l1._line_shift, l1._set_mask
                )
            # The batched miss-chain engine's *profiling* mode additionally
            # mirrors L2/LLC tags+EIDs+dirty (LevelMirror) so residual
            # misses can be classified per level before mutation. Only
            # attached on request: production drains re-probe the live
            # dicts anyway, and an attached mirror taxes every inlined
            # fill/evict site with queue appends.
            if os.environ.get("REPRO_MISS_PROFILE", "0") == "1":
                for l2 in self._l2:
                    l2.attach_mirror()
                self.llc.attach_mirror()
        self.sink = EvictionSink(controller)
        #: Mirrors SetAssocCache._brute_scan: run the original full-sweep
        #: sync paths as a differential oracle (REPRO_BRUTE_SCAN=1).
        self._brute_scan = self.llc._brute_scan
        #: Armed crash plan (None outside fault injection — see repro.fault).
        self.fault_plan = None
        # Pre-resolved counters for the per-access hot path.
        self._loads = self.stats.slot("loads")
        self._stores = self.stats.slot("stores")
        self._l1_hits = self.stats.slot("l1.hits")
        self._l1_misses = self.stats.slot("l1.misses")
        self._l2_hits = self.stats.slot("l2.hits")
        self._l2_misses = self.stats.slot("l2.misses")
        self._llc_hits = self.stats.slot("llc.hits")
        self._llc_misses = self.stats.slot("llc.misses")
        self._llc_dirty_evictions = self.stats.slot("llc.dirty_evictions")
        self._llc_clean_evictions = self.stats.slot("llc.clean_evictions")
        self._llc_snoops = self.stats.slot("llc.snoops")

    def attach_sink(self, sink):
        """Attach the crash-consistency scheme's eviction sink."""
        self.sink = sink

    # ------------------------------------------------------------------
    # the demand path
    # ------------------------------------------------------------------

    def access(self, core, line_addr, is_write, token, now):
        """Perform one load or store; returns cycles the core is blocked."""
        l1 = self._l1[core]
        # L1-hit fast path: probe the tag index and touch the LRU inline —
        # by far the most common outcome of an access.
        line = l1._tags.get(line_addr)
        if line is not None:
            cache_set = l1._sets[(line_addr >> l1._line_shift) & l1._set_mask]
            if cache_set[0] is not line:
                cache_set.remove(line)
                cache_set.insert(0, line)
            self._l1_hits.value += 1
            if not is_write:
                self._loads.value += 1
                return l1.hit_latency
            wait = l1.hit_latency
        else:
            line, fill_latency, stall = self._fill_to_l1(core, line_addr, now)
            if not is_write:
                self._loads.value += 1
                return fill_latency + stall
            wait = int(fill_latency * self.store_miss_factor) + stall
        wait += self.sink.on_store(core, line, now)
        line.token = token
        # Inlined ``line.dirty = True`` (see CacheLine.dirty): stores are
        # hot enough that the property call shows up in profiles.
        if not line._dirty:
            line._dirty = True
            home = line._home
            if home is not None:
                home._dirty_lines[line_addr] = line
        line.state = LineState.MODIFIED
        vec = l1._vec
        if vec is not None:
            # The scheme's on_store may have retagged the line (PiCL's
            # cross-epoch store); queue the EID refresh for the next sync.
            vec.eidq.append(line)
        self._stores.value += 1
        return wait

    def access_repeat(self, core, line_addr, n_reads, n_writes, last_token, now):
        """Coalesce a run of repeated accesses to one line; None = replay.

        The single-core interpreter calls this for the tail of a same-line
        run after the head reference went through :meth:`access` exactly.
        The fast path is taken only when every tail access is provably an
        L1 hit that changes nothing observable step by step:

        * the line is resident in L1 *and already MRU*, so LRU order is
          untouched (the head access made it MRU; a concurrent core could
          have back-invalidated it, which the probe catches);
        * reads then only bump hit/load counters and cost ``hit_latency``;
        * writes additionally require the line to be dirty and MODIFIED
          (so ``dirty``/``state`` assignments are no-ops) and the scheme
          to batch them as no-ops via ``sink.on_store_repeat`` — PiCL's
          same-epoch stores, a tracked table entry for the redo schemes.
          ``last_token`` (the run's final store token) is then applied;
          intermediate tokens are unobservable because nothing else runs
          between the coalesced stores.

        Returns the total blocked cycles (``(n_reads + n_writes) *
        hit_latency``), or None when the caller must replay the tail
        through the exact path. Nothing is mutated on the None path.
        """
        l1 = self._l1[core]
        # Inlined SetAssocCache.mru_lookup: resident *and* already MRU.
        line = l1._tags.get(line_addr)
        if line is None:
            return None
        if l1._sets[(line_addr >> l1._line_shift) & l1._set_mask][0] is not line:
            return None
        if n_writes:
            if not line._dirty or line.state != LineState.MODIFIED:
                return None
            if self.sink.on_store_repeat(core, line, n_writes, now) is None:
                return None
            line.token = last_token
            self._stores.value += n_writes
        self._l1_hits.value += n_reads + n_writes
        self._loads.value += n_reads
        return (n_reads + n_writes) * l1.hit_latency

    def _fill_to_l1(self, core, line_addr, now):
        """Bring a line into the core's L1; returns (line, latency, stall)."""
        self._l1_misses.value += 1
        l2 = self._l2[core]
        stall = 0
        # Inline tag probe + LRU touch (same shape as the L1 fast path).
        source = l2._tags.get(line_addr)
        if source is not None:
            cache_set = l2._sets[(line_addr >> l2._line_shift) & l2._set_mask]
            if cache_set[0] is not source:
                cache_set.remove(source)
                cache_set.insert(0, source)
            latency = l2.hit_latency
            self._l2_hits.value += 1
        else:
            self._l2_misses.value += 1
            source, latency, stall = self._fill_to_l2(core, line_addr, now)
        line = source.copy_fill(line_addr)
        l1 = self._l1[core]
        # Inlined SetAssocCache.insert (this runs on every L1 miss). The
        # dirty dict is updated at pop time, before any merge can flip
        # the victim's dirty bit — same order as the out-of-line insert.
        cache_set = l1._sets[(line_addr >> l1._line_shift) & l1._set_mask]
        cache_set.insert(0, line)
        l1._tags[line_addr] = line
        line._home = l1
        if line._dirty:
            l1._dirty_lines[line_addr] = line
        vec = l1._vec
        if vec is not None:
            vec.pending.append(line)
        if len(cache_set) > l1.assoc:
            victim = cache_set.pop()
            del l1._tags[victim.addr]
            victim._home = None
            if vec is not None:
                # The eager removed log guards in-flight windows; the slot
                # queue is drained at the next sync.
                vec.removed.append(victim.addr)
                vec.evictq.append(victim)
            l1._evictions.value += 1
            if victim._dirty:
                del l1._dirty_lines[victim.addr]
                self._merge_down(victim, l2, line_addr_level="l2")
        return line, latency + l1.hit_latency, stall

    def _fill_to_l2(self, core, line_addr, now):
        """Bring a line into the core's L2; returns (line, latency, stall)."""
        llc = self.llc
        stall = 0
        # Inline tag probe + LRU touch (same shape as the L1 fast path).
        llc_line = llc._tags.get(line_addr)
        if llc_line is not None:
            cache_set = llc._sets[(line_addr >> llc._line_shift) & llc._set_mask]
            if cache_set[0] is not llc_line:
                cache_set.remove(llc_line)
                cache_set.insert(0, llc_line)
            latency = llc.hit_latency
            self._llc_hits.value += 1
            if llc_line.owner is not None and llc_line.owner != core:
                self._snoop_invalidate(llc_line)
        else:
            self._llc_misses.value += 1
            override = self.sink.fill_token(line_addr)
            mem_latency, token = self.controller.demand_fill(line_addr, now)
            if override is not None:
                token = override
                self.stats.add("llc.fills_from_log")
            llc_line = CacheLine(line_addr, token=token)
            stall += self._insert_llc(llc_line, now)
            latency = llc.hit_latency + mem_latency
        llc_line.owner = core
        line = llc_line.copy_fill(line_addr)
        l2 = self._l2[core]
        # Inlined SetAssocCache.insert; dirty dict updated at pop time,
        # before the L1 merge can re-dirty the victim (see _fill_to_l1).
        cache_set = l2._sets[(line_addr >> l2._line_shift) & l2._set_mask]
        cache_set.insert(0, line)
        l2._tags[line_addr] = line
        line._home = l2
        if line._dirty:
            l2._dirty_lines[line_addr] = line
        l2_vec = l2._vec
        if l2_vec is not None:
            l2_vec.pending.append(line)
        if len(cache_set) > l2.assoc:
            victim = cache_set.pop()
            del l2._tags[victim.addr]
            victim._home = None
            if victim._dirty:
                del l2._dirty_lines[victim.addr]
            if l2_vec is not None:
                l2_vec.removed.append(victim.addr)
                l2_vec.evictq.append(victim)
            l2._evictions.value += 1
            dropped = self._l1[core].remove(victim.addr)
            if dropped is not None and dropped._dirty:
                self._merge_lines(victim, dropped)
            if victim._dirty:
                target = llc._tags.get(victim.addr)
                if target is None:
                    raise SimulationError(
                        "inclusion violated: L2 victim %#x absent from LLC"
                        % victim.addr
                    )
                self._merge_lines(target, victim)
        return line, latency + l2.hit_latency, stall

    def _insert_llc(self, line, now):
        """Insert into the LLC, handling the victim; returns stall cycles."""
        llc = self.llc
        addr = line.addr
        # Inlined SetAssocCache.insert; the back-invalidation below may
        # fold fresher private data into the victim (flipping its dirty
        # bit and retagging it), so the dirty dict and EID index are
        # updated at pop time — once detached (``_home = None``), the
        # victim's later mutations no longer reach either structure.
        cache_set = llc._sets[(addr >> llc._line_shift) & llc._set_mask]
        cache_set.insert(0, line)
        llc._tags[addr] = line
        line._home = llc
        if line._dirty:
            llc._dirty_lines[addr] = line
        index = llc.eid_index
        if index is not None and (line.eid >= 0 or line.sub_eids is not None):
            index.add(line)
        llc_vec = llc._vec
        if llc_vec is not None:
            llc_vec.pending.append(line)
        if len(cache_set) <= llc.assoc:
            return 0
        victim = cache_set.pop()
        del llc._tags[victim.addr]
        victim._home = None
        if llc_vec is not None:
            llc_vec.removed.append(victim.addr)
            llc_vec.evictq.append(victim)
        if victim._dirty:
            del llc._dirty_lines[victim.addr]
        # Inlined EidIndex.discard: under PiCL nearly every victim is
        # tagged, so this runs on every LLC eviction.
        if index is not None:
            if victim.sub_eids is not None:
                index.sub.pop(victim.addr, None)
            elif victim.eid >= 0:
                bucket = index.buckets.get(victim.eid)
                if bucket is not None:
                    bucket.pop(victim.addr, None)
                    if not bucket:
                        del index.buckets[victim.eid]
        llc._evictions.value += 1
        self._back_invalidate(victim)
        if victim._dirty:
            self._llc_dirty_evictions.value += 1
            if self.fault_plan is not None:
                # Crash window: the victim is evicted (private copies
                # folded in, SRAM contents doomed) but the scheme's
                # bloom-guarded log write / write-back has not happened.
                self.fault_plan.notify("llc_eviction")
            return self.sink.write_back(victim.addr, victim.token, now)
        self._llc_clean_evictions.value += 1
        return 0

    # ------------------------------------------------------------------
    # coherence helpers
    # ------------------------------------------------------------------

    def _merge_lines(self, target, source):
        """Fold a dirty upper-level line into its lower-level copy.

        The merge can retag the target (the private copy carries the
        store's EID) or switch it to sub-block tracking, so when the
        target lives in an indexed cache its EID-index membership is
        re-homed afterwards. The guard is inlined — merges run on every
        dirty eviction, and the common cases (private target, unchanged
        EID) must not pay a call into the index.
        """
        target.token = source.token
        target.dirty = True
        old_eid = target.eid
        new_eid = source.eid
        old_had_sub = target.sub_eids is not None
        target.eid = new_eid
        if source.sub_eids is not None:
            target.sub_eids = list(source.sub_eids)
        if new_eid != old_eid or (target.sub_eids is not None and not old_had_sub):
            home = target._home
            if home is not None:
                if home.eid_index is not None:
                    home.eid_index.refresh(target, old_eid, old_had_sub)
                if home._vec is not None:
                    home._vec.eidq.append(target)

    def _merge_down(self, victim, lower_cache, line_addr_level):
        target = lower_cache.lookup(victim.addr, touch=False)
        if target is None:
            raise SimulationError(
                "inclusion violated: L1 victim %#x absent from %s"
                % (victim.addr, line_addr_level)
            )
        self._merge_lines(target, victim)

    def _back_invalidate(self, llc_victim):
        """Remove private copies of an LLC victim, folding in dirty data."""
        owner = llc_victim.owner
        if owner is None:
            return
        addr = llc_victim.addr
        # Inlined SetAssocCache.remove ×2: this runs on every LLC eviction
        # and the private copies are usually long gone, so the common case
        # is two dict probes and nothing else.
        l1 = self._l1[owner]
        l1_copy = l1._tags.pop(addr, None)
        if l1_copy is not None:
            l1._sets[(addr >> l1._line_shift) & l1._set_mask].remove(l1_copy)
            l1_copy._home = None
            if l1_copy._dirty:
                del l1._dirty_lines[addr]
            if l1._vec is not None:
                l1._vec.removed.append(addr)
                l1._vec.evictq.append(l1_copy)
        l2 = self._l2[owner]
        l2_copy = l2._tags.pop(addr, None)
        if l2_copy is not None:
            l2._sets[(addr >> l2._line_shift) & l2._set_mask].remove(l2_copy)
            l2_copy._home = None
            if l2_copy._dirty:
                del l2._dirty_lines[addr]
            if l2._vec is not None:
                l2._vec.removed.append(addr)
                l2._vec.evictq.append(l2_copy)
        # L1 holds the freshest data; fall back to L2.
        if l1_copy is not None and l1_copy._dirty:
            self._merge_lines(llc_victim, l1_copy)
        elif l2_copy is not None and l2_copy._dirty:
            self._merge_lines(llc_victim, l2_copy)
        llc_victim.owner = None

    def _snoop_invalidate(self, llc_line):
        """Another core touches a privately-held line: pull data, release."""
        self._back_invalidate(llc_line)
        self._llc_snoops.value += 1

    def _refresh_copy(self, copy, llc_line):
        """Make a private copy identical to the (now freshest) LLC line.

        Without this, a stale-but-valid L2 copy could later shadow the
        synced LLC data when the fresher L1 copy is silently dropped.
        """
        copy.token = llc_line.token
        copy.eid = llc_line.eid
        home = copy._home
        if home is not None and home._vec is not None:
            home._vec.eidq.append(copy)
        if llc_line.sub_eids is not None:
            copy.sub_eids = list(llc_line.sub_eids)
        copy.dirty = False

    def sync_private_line(self, line_addr):
        """Fold any dirty private copy of a line into the LLC (keep copies clean).

        Used by ACS ("if there are dirty private copies, they would have to
        be snooped and written back") and by full flushes.
        """
        llc_line = self.llc.lookup(line_addr, touch=False)
        if llc_line is None or llc_line.owner is None:
            return llc_line
        owner = llc_line.owner
        # L2 first, then L1: when both hold dirty copies the L1's data is
        # newer and must win the merge.
        copies = []
        for cache in (self._l2[owner], self._l1[owner]):
            copy = cache.lookup(line_addr, touch=False)
            if copy is None:
                continue
            copies.append(copy)
            if copy.dirty:
                self._merge_lines(llc_line, copy)
        for copy in copies:
            self._refresh_copy(copy, llc_line)
        return llc_line

    # ------------------------------------------------------------------
    # flush / scan support
    # ------------------------------------------------------------------

    def sync_all_private(self):
        """Fold every dirty private line into the LLC (before a full flush).

        L2 is folded before L1 so that when both levels hold dirty copies
        of a line, the L1's (newer) data wins; afterwards the private
        copies at the merged addresses are refreshed from the LLC data
        (see :meth:`_refresh_copy`).

        The indexed path walks only the private dirty dicts — O(dirty),
        not O(capacity) — and refreshes only copies at merged addresses.
        That matches the oracle's refresh-everything pass because a clean
        private copy at an unmerged address is already identical to its
        LLC line: merges happen only from the single owner's own copies,
        and every path that diverges an LLC line from its private copies
        (stores, merges, syncs) either dirties a private copy or refreshes
        them all (see sync_private_line), so _refresh_copy would be a
        no-op there. REPRO_BRUTE_SCAN=1 runs the original full sweep.
        """
        if self._brute_scan:
            for core in range(self.n_cores):
                for cache in (self._l2[core], self._l1[core]):
                    for line in cache.iter_lines():
                        if line.dirty:
                            target = self.llc.lookup(line.addr, touch=False)
                            if target is None:
                                raise SimulationError(
                                    "inclusion violated: private dirty %#x"
                                    " not in LLC" % line.addr
                                )
                            self._merge_lines(target, line)
            for core in range(self.n_cores):
                for cache in (self._l2[core], self._l1[core]):
                    for line in cache.iter_lines():
                        target = self.llc.lookup(line.addr, touch=False)
                        if target is not None:
                            self._refresh_copy(line, target)
            return
        llc_tags = self.llc._tags
        for core in range(self.n_cores):
            l2 = self._l2[core]
            l1 = self._l1[core]
            if not (l2._dirty_lines or l1._dirty_lines):
                continue
            synced = {}
            for cache in (l2, l1):
                for addr, line in list(cache._dirty_lines.items()):
                    target = llc_tags.get(addr)
                    if target is None:
                        raise SimulationError(
                            "inclusion violated: private dirty %#x not in LLC"
                            % addr
                        )
                    self._merge_lines(target, line)
                    synced[addr] = target
            for addr, target in synced.items():
                for cache in (l2, l1):
                    copy = cache._tags.get(addr)
                    if copy is not None:
                        self._refresh_copy(copy, target)

    def collect_dirty_lines(self):
        """Snoop everything down and list the dirty LLC lines.

        O(dirty): the sync walks the private dirty dicts and the listing
        reads the LLC's, in the brute-force sweep's exact visit order.
        """
        self.sync_all_private()
        return self.llc.dirty_lines()

    def dirty_line_count(self):
        """Count dirty lines system-wide (LLC view after an implicit sync)."""
        self.sync_all_private()
        return self.llc.dirty_count()

    def invalidate_all(self):
        """Power loss: all SRAM contents vanish."""
        for core in range(self.n_cores):
            self._l1[core].invalidate_all()
            self._l2[core].invalidate_all()
        self.llc.invalidate_all()

    def l1(self, core):
        """The given core's private L1 cache."""
        return self._l1[core]

    def l2(self, core):
        """The given core's private L2 cache."""
        return self._l2[core]
