"""The system container: cores + hierarchy + controller + scheme services.

Schemes interact with the system rather than with the simulator:

* :meth:`new_token` hands out the unique token each store carries (the
  functional stand-in for the stored bytes — see
  :mod:`repro.mem.image`).
* :meth:`record_commit` / :meth:`commit_snapshot` give schemes commit
  bookkeeping plus the architectural reference snapshot that crash-recovery
  tests compare against. Snapshot tracking is optional (it costs memory)
  and bounded.
* :meth:`broadcast_stall` charges a stop-the-world stall to every core,
  which is what a synchronous cache flush does.

The OS epoch-boundary handler cost (saving register files etc. — §V-A:
"a necessary ingredient to all epoch-based checkpointing schemes") is
charged per commit via ``epoch_handler_cycles``.
"""

import collections

from repro.common.stats import StatCounters


class System:
    """Everything a crash-consistency scheme needs to see."""

    def __init__(
        self,
        controller,
        hierarchy,
        cores,
        stats=None,
        epoch_handler_cycles=1000,
        track_reference=False,
        reference_depth=8,
    ):
        self.controller = controller
        self.hierarchy = hierarchy
        self.cores = cores
        self.stats = stats if stats is not None else StatCounters()
        self.epoch_handler_cycles = epoch_handler_cycles
        self.track_reference = track_reference
        self._next_token = 1
        #: Architectural memory state: what a crash-free machine would hold.
        self.arch_image = {}
        #: commit_id -> architectural snapshot at that commit boundary.
        self._commit_snapshots = collections.OrderedDict()
        self._reference_depth = reference_depth
        self.commit_count = 0
        self.total_instructions = 0

    # ------------------------------------------------------------------
    # store tokens and architectural state
    # ------------------------------------------------------------------

    def new_token(self):
        """Unique token for the next store's value."""
        token = self._next_token
        self._next_token += 1
        return token

    def note_store(self, line_addr, token):
        """Record a store in the architectural reference image."""
        if self.track_reference:
            self.arch_image[line_addr] = token

    # ------------------------------------------------------------------
    # commit bookkeeping
    # ------------------------------------------------------------------

    def record_commit(self, commit_id):
        """A scheme committed a checkpoint; snapshot the reference state.

        Called at the instant the commit logically happens — before any
        store of the next epoch is applied — so the snapshot is exactly the
        state recovery must reproduce for this commit.
        """
        self.commit_count += 1
        self.stats.add("commits")
        if self.track_reference:
            self._commit_snapshots[commit_id] = dict(self.arch_image)
            while len(self._commit_snapshots) > self._reference_depth:
                self._commit_snapshots.popitem(last=False)

    def commit_snapshot(self, commit_id):
        """The architectural snapshot taken at ``commit_id`` (or None)."""
        return self._commit_snapshots.get(commit_id)

    def handler_stall(self):
        """Cycles of the OS epoch-boundary interrupt handler per commit."""
        return self.epoch_handler_cycles

    # ------------------------------------------------------------------
    # stop-the-world stalls
    # ------------------------------------------------------------------

    def broadcast_stall(self, cycles):
        """Charge a stop-the-world stall to every core."""
        if cycles <= 0:
            return
        for core in self.cores:
            core.stall_commit(cycles)
        self.stats.add("stall.stop_the_world_cycles", cycles)

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------

    @property
    def n_cores(self):
        """Number of cores in the system."""
        return len(self.cores)

    def max_cycle(self):
        """The finishing core's cycle count (total execution time)."""
        return max(core.cycle for core in self.cores)

    def min_cycle(self):
        """The laggard core's cycle count."""
        return min(core.cycle for core in self.cores)

    def crash(self):
        """Power failure: every volatile structure loses its contents."""
        self.hierarchy.invalidate_all()
