"""CPU model: in-order cores and the system container.

Cores follow Table IV: in-order x86 at 2 GHz, CPI 1 for non-memory
instructions, stores absorbed by a store buffer. The :class:`System` wires
cores, the cache hierarchy, and the memory controller together and provides
the services every crash-consistency scheme needs: store tokens, commit
bookkeeping, architectural reference snapshots, and stop-the-world stalls.
"""

from repro.cpu.core import CoreState
from repro.cpu.system import System

__all__ = ["CoreState", "System"]
