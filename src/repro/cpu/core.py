"""Per-core execution state.

The timing model is the paper's (Table IV): an in-order core retiring one
non-memory instruction per cycle, blocking on loads, and mostly hiding
stores behind the store buffer (the hierarchy charges stores a configurable
fraction of their miss latency). Each core keeps its own cycle clock; the
simulator interleaves cores by advancing whichever is earliest.
"""


class CoreState:
    """Clock and counters for one core."""

    __slots__ = (
        "core_id",
        "cycle",
        "instructions",
        "mem_stall_cycles",
        "commit_stall_cycles",
        "finished",
    )

    def __init__(self, core_id):
        self.core_id = core_id
        self.cycle = 0
        self.instructions = 0
        self.mem_stall_cycles = 0
        self.commit_stall_cycles = 0
        self.finished = False

    def advance_compute(self, instructions):
        """Retire ``instructions`` non-memory instructions (CPI 1)."""
        self.cycle += instructions
        self.instructions += instructions

    def advance_memory(self, wait_cycles):
        """Block on a memory reference for ``wait_cycles``."""
        self.cycle += wait_cycles
        self.instructions += 1
        self.mem_stall_cycles += wait_cycles

    def stall_commit(self, cycles):
        """Stop-the-world stall charged by a synchronous commit."""
        self.cycle += cycles
        self.commit_stall_cycles += cycles

    def __repr__(self):
        return "CoreState(core=%d, cycle=%d, instr=%d)" % (
            self.core_id,
            self.cycle,
            self.instructions,
        )
