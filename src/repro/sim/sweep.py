"""Sweep helpers: the scheme-by-benchmark grids behind every figure.

All helpers accept ``jobs`` (worker-process count, see
:func:`repro.sim.parallel.resolve_jobs`) and ``cache`` (a
:class:`repro.sim.parallel.ResultCache` or None). Parallel runs are
bit-identical to serial ones: every grid point carries its own explicit
seed, so nothing depends on execution order.
"""

from repro.sim.config import SystemConfig
from repro.sim.parallel import RunPoint, run_points
from repro.trace.mixes import MULTIPROGRAM_MIXES


def run_single(config, scheme_name, benchmark, n_instructions, seed=1234, cache=None):
    """One single-core run; returns its :class:`SimulationResult`."""
    point = RunPoint.single(config, scheme_name, benchmark, n_instructions, seed)
    return run_points([point], jobs=1, cache=cache)[0]


def matrix_points(config, scheme_names, benchmarks, n_instructions, seed=1234):
    """The (scheme, benchmark) grid as ``((benchmark, scheme), RunPoint)``
    pairs — the decomposition :func:`run_matrix` executes locally and the
    sweep service schedules remotely. The per-benchmark seed is fixed
    across schemes so every scheme sees the same trace.
    """
    pairs = []
    for bench_index, benchmark in enumerate(benchmarks):
        for scheme_name in scheme_names:
            pairs.append(
                (
                    (benchmark, scheme_name),
                    RunPoint.single(
                        config,
                        scheme_name,
                        benchmark,
                        n_instructions,
                        seed + bench_index * 7919,
                    ),
                )
            )
    return pairs


def run_matrix(
    config, scheme_names, benchmarks, n_instructions, seed=1234, jobs=None, cache=None
):
    """Run every (scheme, benchmark) pair.

    Returns ``{benchmark: {scheme: SimulationResult}}``.
    """
    pairs = matrix_points(config, scheme_names, benchmarks, n_instructions, seed)
    flat = run_points([point for _key, point in pairs], jobs=jobs, cache=cache)
    results = {}
    for ((benchmark, scheme_name), _point), result in zip(pairs, flat):
        results.setdefault(benchmark, {})[scheme_name] = result
    return results


def mix_point(config, scheme_name, mix_name, n_instructions, seed=1234):
    """The :class:`RunPoint` for an eight-core Table V mix run."""
    benchmarks = MULTIPROGRAM_MIXES[mix_name]
    if config.n_cores != len(benchmarks):
        raise ValueError(
            "mix %s needs %d cores, config has %d"
            % (mix_name, len(benchmarks), config.n_cores)
        )
    return RunPoint(config, scheme_name, tuple(benchmarks), n_instructions, seed)


def run_mix(config, scheme_name, mix_name, n_instructions, seed=1234, cache=None):
    """One eight-core multiprogram run of a Table V mix."""
    point = mix_point(config, scheme_name, mix_name, n_instructions, seed)
    return run_points([point], jobs=1, cache=cache)[0]


def default_config(scale=64, **overrides):
    """The paper's system shrunk by ``scale`` (see SystemConfig.scaled)."""
    return SystemConfig().scaled(scale, **overrides)
