"""Sweep helpers: the scheme-by-benchmark grids behind every figure."""

from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulation
from repro.trace.mixes import MULTIPROGRAM_MIXES


def run_single(config, scheme_name, benchmark, n_instructions, seed=1234):
    """One single-core run; returns its :class:`SimulationResult`."""
    sim = Simulation(config, scheme_name, [benchmark], n_instructions, seed=seed)
    return sim.run()


def run_matrix(config, scheme_names, benchmarks, n_instructions, seed=1234):
    """Run every (scheme, benchmark) pair.

    Returns ``{benchmark: {scheme: SimulationResult}}``. The per-benchmark
    seed is fixed across schemes so every scheme sees the same trace.
    """
    results = {}
    for bench_index, benchmark in enumerate(benchmarks):
        per_scheme = {}
        for scheme_name in scheme_names:
            per_scheme[scheme_name] = run_single(
                config,
                scheme_name,
                benchmark,
                n_instructions,
                seed=seed + bench_index * 7919,
            )
        results[benchmark] = per_scheme
    return results


def run_mix(config, scheme_name, mix_name, n_instructions, seed=1234):
    """One eight-core multiprogram run of a Table V mix."""
    benchmarks = MULTIPROGRAM_MIXES[mix_name]
    if config.n_cores != len(benchmarks):
        raise ValueError(
            "mix %s needs %d cores, config has %d"
            % (mix_name, len(benchmarks), config.n_cores)
        )
    sim = Simulation(config, scheme_name, benchmarks, n_instructions, seed=seed)
    return sim.run()


def default_config(scale=64, **overrides):
    """The paper's system shrunk by ``scale`` (see SystemConfig.scaled)."""
    return SystemConfig().scaled(scale, **overrides)
