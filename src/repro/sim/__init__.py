"""Trace-driven simulator tying the substrates together.

:class:`SystemConfig` carries Table IV's parameters plus a coherent
*system scale* knob (caches, translation tables, epoch lengths, and
working sets all shrink together so the paper's capacity ratios survive on
a laptop); :class:`Simulation` drives one or more traces through a system
with a chosen scheme; :mod:`repro.sim.sweep` runs the scheme-by-benchmark
grids the experiment harness is built on.
"""

from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ResultCache,
    RunPoint,
    resolve_jobs,
    run_keyed,
    run_points,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import SCHEME_NAMES, Simulation, build_scheme
from repro.sim.sweep import run_matrix, run_mix, run_single

__all__ = [
    "SystemConfig",
    "Simulation",
    "SimulationResult",
    "SCHEME_NAMES",
    "build_scheme",
    "run_single",
    "run_matrix",
    "run_mix",
    "RunPoint",
    "ResultCache",
    "resolve_jobs",
    "run_points",
    "run_keyed",
]
