"""Simulation results and derived metrics.

A :class:`SimulationResult` carries the raw counters of one run; the
properties compute the quantities the paper's figures report:

* normalized execution time (Fig 9/10/15/16) — ``result.cycles`` relative
  to an Ideal-NVM run of the same workload,
* commits per scheduled epoch (Fig 11's "commits per 30 M instructions"),
* the sequential/random/writeback IOPS split (Fig 12),
* log bytes appended (Fig 13) and observed epoch length (Fig 14).
"""

from repro.mem.nvm import AccessCategory


class SimulationResult:
    """Counters and metadata from one simulation run."""

    def __init__(
        self,
        scheme_name,
        benchmarks,
        config,
        cycles,
        instructions,
        stats,
        per_core_cycles=None,
    ):
        self.scheme_name = scheme_name
        self.benchmarks = list(benchmarks)
        self.config = config
        self.cycles = cycles
        self.instructions = instructions
        self.stats = stats
        self.per_core_cycles = per_core_cycles or []

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self):
        """Instructions per cycle over the whole run."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def normalized_to(self, ideal_result):
        """Execution time relative to an Ideal-NVM run (Fig 9/10 y-axis)."""
        if ideal_result.cycles == 0:
            return float("inf")
        return self.cycles / ideal_result.cycles

    @property
    def commits(self):
        """Total checkpoints committed (scheduled plus forced)."""
        return self.stats.get("commits")

    @property
    def scheduled_epochs(self):
        """How many epochs the default timer would have produced."""
        span = self.config.epoch_instructions * self.config.n_cores
        return max(1, self.instructions // span)

    @property
    def commits_per_epoch(self):
        """Fig 11's metric: commits per default epoch interval (ideal = 1)."""
        return self.commits / self.scheduled_epochs

    @property
    def observed_epoch_instructions(self):
        """Fig 14's metric: instructions per commit actually achieved."""
        if self.commits == 0:
            return self.instructions
        return self.instructions / self.commits / self.config.n_cores

    # ------------------------------------------------------------------
    # NVM traffic (Fig 12)
    # ------------------------------------------------------------------

    def iops(self, category):
        """Operation count for one Fig 12 category."""
        return self.stats.get("nvm.iops.%s" % category)

    @property
    def iops_breakdown(self):
        """Dict of sequential / random / writeback operation counts."""
        return {
            "sequential": self.iops(AccessCategory.SEQUENTIAL),
            "random": self.iops(AccessCategory.RANDOM),
            "writeback": self.iops(AccessCategory.WRITEBACK),
        }

    def iops_normalized_to(self, ideal_result):
        """Fig 12: operation counts relative to Ideal's write-back count."""
        base = ideal_result.iops(AccessCategory.WRITEBACK)
        if base == 0:
            base = 1
        return {
            name: count / base for name, count in self.iops_breakdown.items()
        }

    # ------------------------------------------------------------------
    # logging volume (Fig 13)
    # ------------------------------------------------------------------

    @property
    def log_bytes_appended(self):
        """Bytes of undo/redo log written during the run."""
        return self.stats.get("log.bytes_appended")

    def log_bytes_scaled_to_paper(self):
        """Fig 13 reports MB at full scale; undo volume scales with the
        instruction budget, so multiply back by the system scale."""
        return self.log_bytes_appended * self.config.scale

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def stat(self, name, default=0):
        """Raw counter access (see StatCounters)."""
        return self.stats.get(name, default)

    def stat_items(self):
        """Read-only iteration over every (name, value) counter pair."""
        return self.stats.items()

    def stats_dict(self):
        """Every counter as a plain dict.

        This is the canonical serialized form: the result cache stores it,
        and the determinism tests compare it between parallel and serial
        runs counter by counter.
        """
        return dict(self.stats.items())

    def __repr__(self):
        return (
            "SimulationResult(scheme=%s, benchmarks=%s, cycles=%d, instr=%d, "
            "commits=%d)"
            % (
                self.scheme_name,
                "+".join(self.benchmarks),
                self.cycles,
                self.instructions,
                self.commits,
            )
        )
