"""Interactive single-stepping API.

:class:`InteractiveSystem` builds a full system (controller + hierarchy +
cores + scheme) and lets you drive it one access at a time — store a line,
load a line, end an epoch, pull the plug. It is how the examples
demonstrate crash consistency on concrete scenarios (e.g. the linked-list
append from the paper's introduction) and how the unit tests script exact
sequences like Fig 6.

For trace-driven performance runs use :class:`repro.sim.simulator.Simulation`
instead.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.stats import StatCounters
from repro.cpu.core import CoreState
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_scheme


class InteractiveSystem:
    """A fully built system driven access by access."""

    def __init__(self, scheme_name="picl", config=None):
        self.config = config if config is not None else SystemConfig().scaled(256)
        self.stats = StatCounters()
        self.controller = MemoryController(self.config.nvm, self.stats)
        self.hierarchy = CacheHierarchy(
            self.controller,
            n_cores=self.config.n_cores,
            l1_size=self.config.l1_size,
            l1_assoc=self.config.l1_assoc,
            l1_latency=self.config.l1_latency,
            l2_size=self.config.l2_size,
            l2_assoc=self.config.l2_assoc,
            l2_latency=self.config.l2_latency,
            llc_size_per_core=self.config.llc_size_per_core,
            llc_assoc=self.config.llc_assoc,
            llc_latency=self.config.llc_latency,
            line_size=self.config.line_size,
            store_miss_factor=self.config.store_miss_factor,
            stats=self.stats,
        )
        self.cores = [CoreState(i) for i in range(self.config.n_cores)]
        self.system = System(
            self.controller,
            self.hierarchy,
            self.cores,
            stats=self.stats,
            epoch_handler_cycles=self.config.epoch_handler_cycles,
            track_reference=True,
            reference_depth=self.config.reference_depth,
        )
        self.scheme = build_scheme(scheme_name, self.system, self.config)
        self.now = 0

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def store(self, line_addr, core=0):
        """Store a fresh value to a line; returns its token."""
        token = self.system.new_token()
        wait = self.hierarchy.access(core, line_addr, True, token, self.now)
        self.system.note_store(line_addr, token)
        self.now += wait + 1
        return token

    def load(self, line_addr, core=0):
        """Load a line; returns the token the core observed."""
        wait = self.hierarchy.access(core, line_addr, False, 0, self.now)
        self.now += wait + 1
        line = self.hierarchy.l1(core).lookup(line_addr, touch=False)
        return line.token

    def end_epoch(self):
        """Epoch boundary (the periodic OS timer interrupt); returns stall."""
        stall = self.scheme.on_epoch_boundary(self.now)
        self.system.broadcast_stall(stall)
        self.now += stall
        return stall

    def advance(self, cycles):
        """Let wall-clock time pass without memory activity."""
        self.now += cycles

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash_and_recover(self):
        """Power-fail now; returns (recovered_image, commit_id, reference).

        ``reference`` is the architectural snapshot the recovered image
        must equal ({} when the recovery target is the initial state;
        None when the scheme offers no consistency guarantee).
        """
        self.system.crash()
        image, commit_id = self.scheme.recover()
        if commit_id is None:
            reference = None
        elif commit_id < 0:
            reference = {}
        else:
            reference = self.system.commit_snapshot(commit_id)
        return image, commit_id, reference

    def arch_state(self):
        """The architectural (crash-free) memory image right now."""
        return dict(self.system.arch_image)
