"""Parallel sweep execution and on-disk result caching.

Every figure in the paper is a grid of independent ``(config, scheme,
benchmarks, n_instructions, seed)`` simulation points — embarrassingly
parallel work that the seed plumbing already makes order-independent: each
point builds its own trace from an explicit seed, so running points on
worker processes produces *bit-identical* results to running them in a
loop.

Two pieces live here:

* :func:`run_points` — execute a list of :class:`RunPoint` s, fanning out
  over a ``ProcessPoolExecutor`` when ``jobs > 1``. Results come back in
  input order regardless of completion order.
* :class:`ResultCache` — a content-addressed on-disk cache keyed by a
  hash of the full run description (config included), so re-running a
  figure with warm cache does no simulation at all. Opt out with
  ``REPRO_NO_CACHE=1``; relocate with ``REPRO_CACHE_DIR``.

Select the worker count with ``jobs=N``, ``jobs="auto"`` (one per CPU), or
the ``REPRO_JOBS`` environment variable.
"""

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor

from repro.common.errors import ConfigurationError
from repro.sim.simulator import Simulation

#: Bump when the serialized result format or simulation semantics change
#: incompatibly; old cache entries then miss instead of returning stale data.
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"


@dataclasses.dataclass(frozen=True)
class RunPoint:
    """One independent simulation: everything needed to reproduce it."""

    config: object  # SystemConfig
    scheme_name: str
    benchmarks: tuple
    n_instructions: int
    seed: int
    shared_memory: bool = False

    @classmethod
    def single(cls, config, scheme_name, benchmark, n_instructions, seed):
        """Convenience constructor for the single-core case."""
        return cls(config, scheme_name, (benchmark,), n_instructions, seed)

    def execute(self):
        """Run the simulation described by this point."""
        sim = Simulation(
            self.config,
            self.scheme_name,
            list(self.benchmarks),
            self.n_instructions,
            seed=self.seed,
            shared_memory=self.shared_memory,
        )
        return sim.run()


def _execute_point(point):
    # Module-level so ProcessPoolExecutor can pickle it to workers.
    return point.execute()


def _execute_batch(batch):
    # One task per *trace group*: every point in the batch drives the same
    # reference stream, so the worker's per-process trace memo (see
    # repro.trace.synthetic.make_trace) hits for all but the first point.
    return [point.execute() for point in batch]


#: Largest trace-affinity batch shipped to one worker as a single task.
#: Caps load imbalance when a figure has few distinct traces but many
#: schemes/configs per trace.
_BATCH_CAP = 8


def _trace_batches(points, indices):
    """Group pending point indices into same-trace batches (input order).

    The batch key is exactly what determines the generated stream:
    benchmarks, instruction budget, seed, sharing mode, and the config
    scale (``scale_profile`` shrinks working sets, changing addresses).
    Scheduling a group onto one worker turns the figure-sweep pattern —
    six schemes over one stream — into one generation plus five memo hits
    instead of six generations scattered across workers.
    """
    groups = {}
    for index in indices:
        point = points[index]
        key = (
            point.benchmarks,
            point.n_instructions,
            point.seed,
            point.shared_memory,
            getattr(point.config, "scale", None),
        )
        groups.setdefault(key, []).append(index)
    batches = []
    for group in groups.values():
        for start in range(0, len(group), _BATCH_CAP):
            batches.append(group[start : start + _BATCH_CAP])
    return batches


def resolve_jobs(jobs=None):
    """Normalize a jobs request to a worker count (>= 1).

    ``None`` defers to the ``REPRO_JOBS`` environment variable (default 1);
    ``"auto"`` (or 0) means one worker per CPU.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigurationError(
                    "jobs must be a worker count or 'auto', got %r" % jobs
                )
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


class ResultCache:
    """Content-addressed on-disk cache of :class:`SimulationResult` s.

    The key hashes the *entire* run description — every config field
    (nested dataclasses included), scheme, benchmarks, instruction budget,
    seed, and a schema version — so any change to what would be simulated
    changes the key. Entries that fail to load for any reason (truncated
    file, version skew, hand-edited bytes) are treated as misses and
    overwritten on the next store.
    """

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls):
        """The default cache, honoring REPRO_NO_CACHE / REPRO_CACHE_DIR.

        Returns ``None`` (caching disabled) when ``REPRO_NO_CACHE`` is set
        to anything non-empty.
        """
        if os.environ.get("REPRO_NO_CACHE"):
            return None
        return cls(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))

    def key(self, point):
        """Stable hex digest identifying a run point."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "scheme": point.scheme_name,
            "benchmarks": list(point.benchmarks),
            "n_instructions": point.n_instructions,
            "seed": point.seed,
            "shared_memory": point.shared_memory,
            "config": dataclasses.asdict(point.config),
        }
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def load(self, point):
        """The cached result for ``point``, or None on any kind of miss."""
        path = self._path(self.key(point))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            # Missing, truncated, corrupted, or unpicklable: simulate anew.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, point, result):
        """Persist a result atomically (write-to-temp then rename)."""
        path = self._path(self.key(point))
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def run_points(points, jobs=None, cache=None):
    """Execute every point; returns results in input order.

    Cached points are answered without simulating. The remainder run
    serially when ``jobs`` resolves to 1 (or only one point is pending),
    otherwise on a process pool — either way each point's simulation is
    seeded identically, so the results are bit-identical across modes.
    Pool tasks are same-trace batches (see :func:`_trace_batches`) so each
    worker generates a given reference stream once and memo-replays it for
    the other schemes at that point.
    """
    points = list(points)
    results = [None] * len(points)
    pending = []
    for index, point in enumerate(points):
        if cache is not None:
            cached = cache.load(point)
            if cached is not None:
                results[index] = cached
                continue
        pending.append(index)
    if not pending:
        return results
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pending) == 1:
        for index in pending:
            result = points[index].execute()
            results[index] = result
            if cache is not None:
                cache.store(points[index], result)
        return results
    # Ship same-trace points to one worker as a batch so the worker-local
    # trace memo hits; results land back by index, preserving input order.
    batches = _trace_batches(points, pending)
    workers = min(jobs, len(batches))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        computed_batches = pool.map(
            _execute_batch, [[points[index] for index in batch] for batch in batches]
        )
        for batch, computed in zip(batches, computed_batches):
            for index, result in zip(batch, computed):
                results[index] = result
                if cache is not None:
                    cache.store(points[index], result)
    return results


def run_keyed(pairs, jobs=None, cache=None):
    """Execute ``(key, RunPoint)`` pairs; returns ``{key: result}``."""
    pairs = list(pairs)
    results = run_points([point for _key, point in pairs], jobs=jobs, cache=cache)
    return {key: result for (key, _point), result in zip(pairs, results)}
