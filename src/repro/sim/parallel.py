"""Parallel sweep execution, on-disk result caching, and fault tolerance.

Every figure in the paper is a grid of independent ``(config, scheme,
benchmarks, n_instructions, seed)`` simulation points — embarrassingly
parallel work that the seed plumbing already makes order-independent: each
point builds its own trace from an explicit seed, so running points on
worker processes produces *bit-identical* results to running them in a
loop.

Three pieces live here:

* :func:`run_points` — execute a list of :class:`RunPoint` s, fanning out
  over a ``ProcessPoolExecutor`` when ``jobs > 1``. Results come back in
  input order regardless of completion order. The pool is a fast path
  only: a worker that dies or hangs does not sink the sweep. Failed or
  timed-out batches are retried (bounded, exponential backoff) in
  *isolated* single-batch processes that can be killed precisely and
  attribute the failure to the exact :class:`RunPoint`; if the pool
  cannot even be created the sweep degrades to serial in-process
  execution. Any simulation error is re-raised as
  :class:`PointExecutionError` naming the point that died.
* :class:`ResultCache` — a content-addressed on-disk cache keyed by a
  hash of the full run description (config included), so re-running a
  figure with warm cache does no simulation at all. Entries that exist
  but fail to load are quarantined to ``<cache>/corrupt/`` (counted in
  ``cache.quarantined``) rather than silently overwritten, preserving
  the evidence. Opt out with ``REPRO_NO_CACHE=1``; relocate with
  ``REPRO_CACHE_DIR``.
* :class:`SweepCheckpoint` — an append-only journal of finished points,
  so an interrupted sweep resumes where it stopped instead of starting
  over.

Select the worker count with ``jobs=N``, ``jobs="auto"`` (one per
*available* CPU — the scheduling affinity mask, not the raw core count),
or the ``REPRO_JOBS`` environment variable. Fault-tolerance knobs:
``REPRO_POINT_TIMEOUT`` (seconds per point: unset = no pool deadline but
a :data:`ISOLATED_FALLBACK_TIMEOUT` safety net on isolated retries;
``0`` = timeouts fully disabled) and ``REPRO_RETRIES`` (attempts after
the first failure, default 2).

The building blocks are public so other schedulers can reuse them: the
sweep service (:mod:`repro.service`) drives :func:`trace_batches`,
:func:`execute_batch_with_retry`, :func:`point_digest`,
:class:`ResultCache` and :class:`SweepCheckpoint` directly rather than
going through :func:`run_points`.
"""

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.simulator import Simulation

#: Bump when the serialized result format or simulation semantics change
#: incompatibly; old cache entries then miss instead of returning stale data.
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

#: Attempts after the first failure, for transient (crash/timeout) errors.
DEFAULT_RETRIES = 2

#: First retry delay in seconds; doubles per attempt.
DEFAULT_BACKOFF = 0.25

#: Longest single retry delay, jitter excluded. Without a cap the
#: exponential series (``backoff * 2**(attempt-1)``) grows without bound
#: as soon as a caller raises the retry budget.
MAX_BACKOFF = 30.0

#: Per-point deadline applied to *isolated retry* batches when no timeout
#: was configured at all (``timeout is None``): the retry loop must
#: terminate even against a wedged child. An explicit ``timeout=0``
#: disables deadlines everywhere, safety net included.
ISOLATED_FALLBACK_TIMEOUT = 3600.0

#: Engine escape hatches. These select *how* a point executes — columnar
#: interpreter, batched miss-chain engine, EID-indexed scan — never what
#: it computes: every mode is bit-identical by construction (the
#: differential suites in tests/sim enforce it). They are read from the
#: process environment when a Simulation builds its hierarchy, so a
#: worker process must see the *submitting* client's values, not
#: whatever environment the executing daemon happened to start with —
#: otherwise pinning ``REPRO_BATCH_MISS=0`` to bisect a suspected engine
#: bug would silently stop meaning anything the moment the sweep runs on
#: the service.
ENGINE_FLAGS = (
    "REPRO_VECTOR",
    "REPRO_VECTOR_MC",
    "REPRO_BATCH_MISS",
    "REPRO_BRUTE_SCAN",
    "REPRO_MISS_PROFILE",
)

#: Default remote-worker lease in seconds: a worker that has not
#: heartbeated for this long is presumed dead and its assigned units are
#: requeued. Long enough that a GC pause or a loaded box does not shed
#: work, short enough that a dead host stalls a sweep by seconds, not
#: minutes.
DEFAULT_LEASE = 15.0


def lease_env():
    """The fleet liveness knobs: ``(lease_seconds, heartbeat_interval)``.

    ``REPRO_LEASE`` sets the lease deadline (default
    :data:`DEFAULT_LEASE`); ``REPRO_HEARTBEAT`` the worker's send
    interval (default a third of the lease, so two heartbeats can be
    lost before the lease lapses). Non-positive values fall back to the
    defaults — a zero lease would declare every worker dead on arrival.
    """
    lease = _env_float("REPRO_LEASE")
    if lease is None or lease <= 0:
        lease = DEFAULT_LEASE
    heartbeat = _env_float("REPRO_HEARTBEAT")
    if heartbeat is None or heartbeat <= 0:
        heartbeat = max(lease / 3.0, 0.1)
    return lease, heartbeat


def engine_env(environ=None):
    """The engine-flag bindings present in ``environ`` (default: live env).

    Returns ``{name: value}`` holding only the flags actually set, so the
    dict is a complete description of the caller's engine selection:
    a missing key means "that flag was unset", and :func:`apply_engine_env`
    restores exactly that.
    """
    if environ is None:
        environ = os.environ
    return {name: environ[name] for name in ENGINE_FLAGS if name in environ}


def apply_engine_env(env):
    """Pin a captured engine-flag dict into this process's environment.

    Child-process side of the handoff. ``None`` means "no capture
    travelled with this work" (legacy spool entries, direct callers) and
    leaves the inherited environment alone. A dict — even an empty one —
    is authoritative for *every* flag in :data:`ENGINE_FLAGS`: flags it
    omits are removed, so a daemon started with an engine disabled cannot
    leak that into a client batch that never asked for it.
    """
    if env is None:
        return
    for name in ENGINE_FLAGS:
        if name in env:
            os.environ[name] = env[name]
        else:
            os.environ.pop(name, None)


@dataclasses.dataclass(frozen=True)
class RunPoint:
    """One independent simulation: everything needed to reproduce it."""

    config: object  # SystemConfig
    scheme_name: str
    benchmarks: tuple
    n_instructions: int
    seed: int
    shared_memory: bool = False

    @classmethod
    def single(cls, config, scheme_name, benchmark, n_instructions, seed):
        """Convenience constructor for the single-core case."""
        return cls(config, scheme_name, (benchmark,), n_instructions, seed)

    def describe(self):
        """The point's identity, for failure attribution."""
        return (
            "scheme=%s benchmarks=%s n_instructions=%d seed=%d"
            " shared_memory=%s scale=%s"
            % (
                self.scheme_name,
                ",".join(self.benchmarks),
                self.n_instructions,
                self.seed,
                self.shared_memory,
                getattr(self.config, "scale", "?"),
            )
        )

    def execute(self):
        """Run the simulation described by this point."""
        sim = Simulation(
            self.config,
            self.scheme_name,
            list(self.benchmarks),
            self.n_instructions,
            seed=self.seed,
            shared_memory=self.shared_memory,
        )
        return sim.run()


# ----------------------------------------------------------------------
# failure attribution
# ----------------------------------------------------------------------


class PointExecutionError(SimulationError):
    """A simulation point raised; carries which point and the full repr.

    Deterministic: the same point will raise again, so it is *not*
    retried. ``point_description`` survives pickling across process
    boundaries (workers ship these back over pipes).
    """

    def __init__(self, message, point_description=None):
        super().__init__(message)
        self.point_description = point_description

    def __reduce__(self):
        return (type(self), (self.args[0], self.point_description))


class WorkerCrashError(PointExecutionError):
    """A worker process died (signal/OOM) while running these points.

    Transient from the sweep's perspective: the batch is retried on a
    fresh process.
    """


class PointTimeoutError(PointExecutionError):
    """A batch exceeded its time budget and its process was killed."""


def _attributed(point):
    """Execute ``point``, wrapping any failure with the point's identity."""
    try:
        return point.execute()
    except PointExecutionError:
        raise
    except Exception as exc:
        raise PointExecutionError(
            "point failed [%s]: %s: %s\n  full point: %r"
            % (point.describe(), type(exc).__name__, exc, point),
            point_description=point.describe(),
        ) from exc


def _execute_batch(batch):
    # One task per *trace group*: every point in the batch drives the same
    # reference stream, so the worker's per-process trace memo (see
    # repro.trace.synthetic.make_trace) hits for all but the first point.
    return [_attributed(point) for point in batch]


#: Largest trace-affinity batch shipped to one worker as a single task.
#: Caps load imbalance when a figure has few distinct traces but many
#: schemes/configs per trace.
_BATCH_CAP = 8


def trace_key(point):
    """The trace-identity key of a point: what ``make_trace`` memoizes on.

    Exactly the fields that determine the generated reference stream:
    benchmarks, instruction budget, seed, sharing mode, and the config
    scale (``scale_profile`` shrinks working sets, changing addresses).
    Shared by :func:`trace_batches` and the fleet's same-trace placement
    affinity (:mod:`repro.service.placement`): two units with equal keys
    replay the same stream, so running them on the same worker process
    turns the second generation into a memo hit.
    """
    return (
        point.benchmarks,
        point.n_instructions,
        point.seed,
        point.shared_memory,
        getattr(point.config, "scale", None),
    )


def trace_batches(points, indices):
    """Group pending point indices into same-trace batches (input order).

    Scheduling a group onto one worker turns the figure-sweep pattern —
    six schemes over one stream — into one generation plus five memo hits
    instead of six generations scattered across workers.
    """
    groups = {}
    for index in indices:
        groups.setdefault(trace_key(points[index]), []).append(index)
    batches = []
    for group in groups.values():
        for start in range(0, len(group), _BATCH_CAP):
            batches.append(group[start : start + _BATCH_CAP])
    return batches


def batch_budget(timeout, n_points):
    """The deadline (seconds) for one batch, or None for no deadline.

    ``timeout`` is the per-point setting with three distinct states:

    * ``None`` — nothing configured. Pool futures get no deadline, but
      isolated retry batches fall back to
      :data:`ISOLATED_FALLBACK_TIMEOUT` per point so the retry loop
      cannot wedge forever (this function is only called on that path).
    * ``0`` (or negative) — timeouts *explicitly disabled*; returns None.
      Previously ``timeout or 3600.0`` silently turned the documented
      "disable" value into a one-hour cap.
    * positive — that many seconds per point in the batch.
    """
    if timeout is None:
        return ISOLATED_FALLBACK_TIMEOUT * max(1, n_points)
    if timeout <= 0:
        return None
    return timeout * max(1, n_points)


def retry_delay(attempt, backoff=DEFAULT_BACKOFF, key=None):
    """Backoff before retry ``attempt`` (1-based): capped, jittered.

    The exponential series is clamped to :data:`MAX_BACKOFF`. ``key``
    (any string naming the work, e.g. a batch description) mixes in
    *deterministic* jitter — a 0.5x-1.5x factor seeded from
    ``(key, attempt)`` — so the batches of a crashed pool spread their
    retries out instead of hammering the machine in lockstep, while any
    given batch still waits the exact same amount on every run.
    """
    delay = min(backoff * (2 ** (attempt - 1)), MAX_BACKOFF)
    if key is not None:
        digest = hashlib.sha256(("%s|%d" % (key, attempt)).encode("utf-8"))
        rng = random.Random(int.from_bytes(digest.digest()[:8], "big"))
        delay *= 0.5 + rng.random()
    return delay


def fault_env():
    """The (timeout, retries) pair configured via the environment."""
    timeout = _env_float("REPRO_POINT_TIMEOUT")
    retries = int(os.environ.get("REPRO_RETRIES", DEFAULT_RETRIES))
    return timeout, retries


def resolve_jobs(jobs=None):
    """Normalize a jobs request to a worker count (>= 1).

    ``None`` defers to the ``REPRO_JOBS`` environment variable (default 1);
    ``"auto"`` (or 0) means one worker per *available* CPU: the process
    scheduling affinity when the platform exposes it (cgroup/taskset
    limits make this smaller than ``os.cpu_count()`` on shared CI boxes),
    the raw CPU count otherwise.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigurationError(
                    "jobs must be a worker count or 'auto', got %r" % jobs
                )
    if jobs <= 0:
        jobs = _available_cpus()
    return max(1, jobs)


def available_cpus():
    """CPUs actually available to this process (affinity-mask aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


_available_cpus = available_cpus


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------


def point_digest(point):
    """Stable hex digest identifying a run point.

    Hashes the *entire* run description — every config field (nested
    dataclasses included), scheme, benchmarks, instruction budget, seed,
    and a schema version — so any change to what would be simulated
    changes the digest. Shared by :class:`ResultCache` and
    :class:`SweepCheckpoint`.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "scheme": point.scheme_name,
        "benchmarks": list(point.benchmarks),
        "n_instructions": point.n_instructions,
        "seed": point.seed,
        "shared_memory": point.shared_memory,
        "config": dataclasses.asdict(point.config),
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk cache of :class:`SimulationResult` s.

    Entries that exist but fail to load (truncated file, version skew,
    hand-edited bytes) are treated as misses, and the offending file is
    moved to ``<root>/corrupt/`` — keeping the evidence out of the hot
    path while ``quarantined`` counts how often it happened (surfaced by
    the CLI's ``--verbose``).
    """

    #: Process-wide aggregates across every cache instance, so the CLI can
    #: report totals without plumbing cache objects out of experiments.
    total_hits = 0
    total_misses = 0
    total_quarantined = 0

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    @classmethod
    def summary(cls):
        """One-line process-wide cache statistics (for ``--verbose``)."""
        return (
            "result cache: %d hits, %d misses, %d corrupt entries quarantined"
            % (cls.total_hits, cls.total_misses, cls.total_quarantined)
        )

    @classmethod
    def from_env(cls):
        """The default cache, honoring REPRO_NO_CACHE / REPRO_CACHE_DIR.

        Returns ``None`` (caching disabled) when ``REPRO_NO_CACHE`` is set
        to anything non-empty.
        """
        if os.environ.get("REPRO_NO_CACHE"):
            return None
        return cls(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))

    def key(self, point):
        """Stable hex digest identifying a run point."""
        return point_digest(point)

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def _quarantine(self, path):
        """Move an unloadable entry aside instead of deleting it."""
        corrupt_dir = os.path.join(self.root, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, os.path.join(corrupt_dir, os.path.basename(path)))
        except OSError:
            # Quarantine is best-effort; a store() will overwrite in place.
            return
        self.quarantined += 1
        ResultCache.total_quarantined += 1

    def load(self, point):
        """The cached result for ``point``, or None on any kind of miss."""
        path = self._path(self.key(point))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            ResultCache.total_misses += 1
            return None
        except Exception:
            # The entry exists but cannot be loaded: corrupted on disk.
            self._quarantine(path)
            self.misses += 1
            ResultCache.total_misses += 1
            return None
        self.hits += 1
        ResultCache.total_hits += 1
        return result

    def store(self, point, result):
        """Persist a result atomically (write-to-temp then rename)."""
        path = self._path(self.key(point))
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


class SweepCheckpoint:
    """Append-only journal of finished points for sweep resumption.

    Each record is one pickled ``(digest, result)`` pair; a process
    killed mid-append leaves a truncated tail that loading skips — and
    *truncates away*, so that subsequent :meth:`record` appends land
    where the pickle stream actually ends. (Appending after torn bytes
    would frame every later record as garbage: the next ``_load`` stops
    at the tear and everything written post-resume is unreachable.)
    Unlike :class:`ResultCache` (shared, content-addressed, survives
    forever) a checkpoint belongs to one sweep invocation and is deleted
    when the sweep completes.
    """

    def __init__(self, path):
        self.path = path
        self._results = {}
        self._load()

    def _load(self):
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return
        good_offset = 0
        with handle:
            while True:
                try:
                    digest, result = pickle.load(handle)
                except EOFError:
                    # Clean end *or* a record truncated mid-frame — the
                    # size check below tells them apart.
                    break
                except Exception:
                    # Torn tail record: everything before it is intact,
                    # everything after is unreadable framing.
                    break
                self._results[digest] = result
                good_offset = handle.tell()
        try:
            if os.path.getsize(self.path) > good_offset:
                os.truncate(self.path, good_offset)
        except OSError:
            # Can't repair (permissions, vanished file); appends may be
            # unreachable on the next load, but nothing already journaled
            # is lost.
            pass

    def lookup(self, point):
        """The journaled result for ``point``, or None."""
        return self._results.get(point_digest(point))

    def get(self, digest):
        """The journaled result for an already-computed digest, or None."""
        return self._results.get(digest)

    def __len__(self):
        return len(self._results)

    def record(self, point, result):
        """Append one finished point; durable once the call returns."""
        self.record_digest(point_digest(point), result)

    def record_digest(self, digest, result):
        """Append one finished ``(digest, result)``; durable on return."""
        with open(self.path, "ab") as handle:
            pickle.dump((digest, result), handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        self._results[digest] = result

    def done(self):
        """The sweep completed: remove the journal."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# isolated (killable, attributable) batch execution
# ----------------------------------------------------------------------


def _isolated_main(conn, batch, env=None):
    """Child entry point: run a batch, ship back the results or the error.

    ``env`` is the submitting client's engine-flag capture (see
    :data:`ENGINE_FLAGS`); it is pinned before the first simulation is
    built so the batch runs under the client's engine selection.
    """
    try:
        apply_engine_env(env)
        results = _execute_batch(batch)
    except PointExecutionError as exc:
        conn.send(("error", exc))
    except BaseException as exc:  # belt and braces: never die silently
        conn.send(("error", PointExecutionError(repr(exc))))
    else:
        conn.send(("ok", results))
    finally:
        conn.close()


#: Live isolated-batch child processes, so an embedding daemon can tear
#: everything down promptly (see :func:`kill_isolated_processes`).
_LIVE_PROCS = set()
_LIVE_LOCK = threading.Lock()

#: Serializes fork() when isolated batches are launched from multiple
#: threads (the sweep service does), shrinking the window in which a
#: child could inherit another thread's held locks.
_SPAWN_LOCK = threading.Lock()


def kill_isolated_processes():
    """Kill every live isolated batch child (daemon shutdown path).

    The waiting callers see the death as :class:`WorkerCrashError`; pair
    with a ``should_retry`` hook that answers False so they surface it
    instead of relaunching.
    """
    with _LIVE_LOCK:
        procs = list(_LIVE_PROCS)
    for proc in procs:
        try:
            proc.kill()
        except Exception:
            pass


def _run_batch_isolated(batch, budget, env=None):
    """Run one batch in its own process; kill it past ``budget`` seconds.

    ``budget`` is the whole-batch deadline (``None`` = wait forever).
    Unlike a pool task, an isolated batch can be killed precisely and its
    death attributed to exactly these points. ``env`` travels to the
    child as an argument (not via the parent's environment) so daemons
    can run concurrent batches under different engine selections.
    """
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_isolated_main, args=(child_conn, batch, env), daemon=True
    )
    with _SPAWN_LOCK:
        proc.start()
    with _LIVE_LOCK:
        _LIVE_PROCS.add(proc)
    child_conn.close()
    described = "; ".join(point.describe() for point in batch)
    try:
        if not parent_conn.poll(budget):
            proc.kill()
            proc.join()
            raise PointTimeoutError(
                "batch exceeded %.1fs and was killed [%s]" % (budget, described),
                point_description=described,
            )
        try:
            status, payload = parent_conn.recv()
        except EOFError:
            proc.join()
            raise WorkerCrashError(
                "worker died (exit code %s) while running [%s]"
                % (proc.exitcode, described),
                point_description=described,
            ) from None
        if status == "error":
            raise payload
        return payload
    finally:
        with _LIVE_LOCK:
            _LIVE_PROCS.discard(proc)
        parent_conn.close()
        if proc.is_alive():
            proc.kill()
        proc.join()


def execute_batch_with_retry(
    batch,
    timeout=None,
    retries=None,
    backoff=DEFAULT_BACKOFF,
    on_retry=None,
    should_retry=None,
    env=None,
):
    """Isolated execution with bounded retry for *transient* failures.

    Deterministic failures (:class:`PointExecutionError` raised by the
    simulation itself) are re-raised immediately — the same point would
    fail the same way again. Crashes and timeouts get ``retries`` more
    attempts (default ``REPRO_RETRIES``), each after a capped, jittered
    :func:`retry_delay`. ``timeout`` follows :func:`batch_budget`
    semantics (None = safety-net deadline, 0 = none at all).

    ``on_retry(attempt, delay, exc)`` is called before each sleep (the
    sweep service logs these as events); ``should_retry()`` returning
    False aborts the loop — used at daemon shutdown so deliberately
    killed children aren't relaunched. ``env`` is an engine-flag capture
    (:func:`engine_env`) pinned inside every child attempt.
    """
    if retries is None:
        retries = int(os.environ.get("REPRO_RETRIES", DEFAULT_RETRIES))
    budget = batch_budget(timeout, len(batch))
    key = "; ".join(point.describe() for point in batch)
    attempt = 0
    while True:
        attempt += 1
        try:
            return _run_batch_isolated(batch, budget, env=env)
        except (WorkerCrashError, PointTimeoutError) as exc:
            if attempt > retries:
                raise
            if should_retry is not None and not should_retry():
                raise
            delay = retry_delay(attempt, backoff, key=key)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            print(
                "repro: transient failure (attempt %d/%d, retrying in %.2fs):"
                " %s" % (attempt, retries + 1, delay, exc),
                file=sys.stderr,
            )
            time.sleep(delay)


def _kill_pool(pool):
    """Best-effort teardown of a pool whose workers may be stuck."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _env_float(name):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError("%s must be a number, got %r" % (name, raw))


# ----------------------------------------------------------------------
# the sweep driver
# ----------------------------------------------------------------------


def resolve_precomputed(points, cache=None, checkpoint=None):
    """Answer points from the checkpoint journal and result cache.

    Returns ``(results, pending)``: a results list (input order, None
    where nothing precomputed was found) and the indices still needing
    execution. Cache hits are recorded into the checkpoint so a later
    resume is journal-local.
    """
    results = [None] * len(points)
    pending = []
    for index, point in enumerate(points):
        if checkpoint is not None:
            journaled = checkpoint.lookup(point)
            if journaled is not None:
                results[index] = journaled
                continue
        if cache is not None:
            cached = cache.load(point)
            if cached is not None:
                results[index] = cached
                if checkpoint is not None:
                    checkpoint.record(point, cached)
                continue
        pending.append(index)
    return results, pending


def run_points(
    points,
    jobs=None,
    cache=None,
    checkpoint=None,
    timeout=None,
    retries=None,
    backoff=DEFAULT_BACKOFF,
):
    """Execute every point; returns results in input order.

    Cached or checkpointed points are answered without simulating. The
    remainder run serially when ``jobs`` resolves to 1 (or only one point
    is pending), otherwise on a process pool — either way each point's
    simulation is seeded identically, so the results are bit-identical
    across modes. Pool tasks are same-trace batches (see
    :func:`trace_batches`) so each worker generates a given reference
    stream once and memo-replays it for the other schemes at that point.

    Fault tolerance (pool mode): a broken pool (worker killed by signal /
    OOM) or a batch exceeding ``timeout`` seconds per point tears the pool
    down and re-runs the unfinished batches in isolated single-batch
    processes — killable on timeout, retried up to ``retries`` times with
    capped, jittered exponential ``backoff``, and any terminal failure
    names the exact points that died. If the pool cannot be created at
    all the sweep degrades to serial in-process execution. ``timeout``
    defaults to ``REPRO_POINT_TIMEOUT`` (unset = no pool deadline,
    ``0`` = timeouts disabled everywhere — see :func:`batch_budget`),
    ``retries`` to ``REPRO_RETRIES`` (default 2).
    """
    points = list(points)
    env_timeout, env_retries = fault_env()
    if timeout is None:
        timeout = env_timeout
    if retries is None:
        retries = env_retries
    results, pending = resolve_precomputed(points, cache, checkpoint)
    if not pending:
        return results

    def finish(index, result):
        results[index] = result
        if cache is not None:
            cache.store(points[index], result)
        if checkpoint is not None:
            checkpoint.record(points[index], result)

    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pending) == 1:
        for index in pending:
            finish(index, _attributed(points[index]))
        return results
    # Ship same-trace points to one worker as a batch so the worker-local
    # trace memo hits; results land back by index, preserving input order.
    batches = trace_batches(points, pending)
    workers = min(jobs, len(batches))
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except OSError as exc:
        # No room for worker processes at all: degrade to serial rather
        # than failing a sweep whose work is perfectly runnable in-process.
        print(
            "repro: cannot create %d-worker pool (%s); running serially"
            % (workers, exc),
            file=sys.stderr,
        )
        for index in pending:
            finish(index, _attributed(points[index]))
        return results

    unfinished = list(batches)
    pool_broken = False
    try:
        futures = [
            (batch, pool.submit(_execute_batch, [points[i] for i in batch]))
            for batch in batches
        ]
        for batch, future in futures:
            if pool_broken:
                break
            # 0 (explicitly disabled) and None (unset) both mean no pool
            # deadline; only a positive timeout arms one.
            budget = timeout * len(batch) if timeout and timeout > 0 else None
            try:
                computed = future.result(timeout=budget)
            except PointExecutionError:
                # Deterministic simulation failure: retrying cannot help.
                raise
            except (BrokenExecutor, FutureTimeoutError, OSError):
                # A worker died or a batch blew its deadline; the pool's
                # other workers (and task attribution) are now suspect.
                pool_broken = True
                break
            for index, result in zip(batch, computed):
                finish(index, result)
            unfinished.remove(batch)
    finally:
        if pool_broken:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    if unfinished:
        print(
            "repro: pool failed with %d batch(es) unfinished; re-running"
            " them in isolated processes" % len(unfinished),
            file=sys.stderr,
        )
        for batch in unfinished:
            computed = execute_batch_with_retry(
                [points[i] for i in batch],
                timeout=timeout,
                retries=retries,
                backoff=backoff,
            )
            for index, result in zip(batch, computed):
                finish(index, result)
    return results


def run_keyed(pairs, jobs=None, cache=None, **kwargs):
    """Execute ``(key, RunPoint)`` pairs; returns ``{key: result}``."""
    pairs = list(pairs)
    results = run_points(
        [point for _key, point in pairs], jobs=jobs, cache=cache, **kwargs
    )
    return {key: result for (key, _point), result in zip(pairs, results)}
