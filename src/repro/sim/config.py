"""System configuration (Table IV) and coherent scaling.

``SystemConfig()`` reproduces the paper's system: 2 GHz in-order cores,
32 KB L1 / 256 KB L2 private, 2 MB-per-core shared LLC, a 12.8 GB/s link
to an NVM with 128/368 ns row read/write, 30 M-instruction epochs, and the
prior-work translation tables at 6144 (Journaling, Shadow) and 2048+4096
(ThyNVM) entries.

Running SPEC-length traces (the paper simulates 1 B cycles per benchmark)
is not feasible in a pure-Python model, so :meth:`SystemConfig.scaled`
shrinks the *whole* system by one power-of-two factor: cache capacities,
translation tables, epoch lengths, and (via
:meth:`repro.trace.profiles.WorkloadProfile.scaled`) working sets. Because
every capacity shrinks together, the capacity *ratios* that produce the
paper's effects — flush cost relative to epoch length, write set relative
to table capacity — are preserved. NVM latencies, the undo buffer, the
row buffer, and the bloom filter stay at hardware scale (they are device
properties, not capacities to shrink).
"""

import dataclasses

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB, is_power_of_two
from repro.core.picl import PiclConfig
from repro.mem.timing import NvmTimings


@dataclasses.dataclass
class SystemConfig:
    """Everything needed to build one simulated system."""

    n_cores: int = 1

    # --- cache hierarchy (Table IV) -----------------------------------
    l1_size: int = 32 * KB
    l1_assoc: int = 4
    l1_latency: int = 1
    l2_size: int = 256 * KB
    l2_assoc: int = 8
    l2_latency: int = 4
    llc_size_per_core: int = 2 * MB
    llc_assoc: int = 8
    llc_latency: int = 30
    line_size: int = 64
    store_miss_factor: float = 0.5

    # --- epochs ---------------------------------------------------------
    #: Default epoch length ("epoch length is set to 30-million
    #: instructions by default to be consistent with prior work").
    epoch_instructions: int = 30_000_000
    epoch_handler_cycles: int = 1000

    # --- NVM --------------------------------------------------------------
    nvm: NvmTimings = dataclasses.field(default_factory=NvmTimings)

    # --- prior-work translation tables (paper methodology) ---------------
    journal_table_entries: int = 6144
    shadow_table_entries: int = 6144
    thynvm_block_entries: int = 2048
    thynvm_page_entries: int = 4096
    table_assoc: int = 16

    # --- PiCL -------------------------------------------------------------
    picl: PiclConfig = dataclasses.field(default_factory=PiclConfig)

    # --- bookkeeping --------------------------------------------------------
    #: System scale divisor applied (1 = the paper's full-size system).
    scale: int = 1
    #: Track architectural snapshots for recovery checking (costs memory).
    track_reference: bool = False
    reference_depth: int = 12

    def __post_init__(self):
        if self.n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        if self.epoch_instructions <= 0:
            raise ConfigurationError("epoch_instructions must be positive")
        if not is_power_of_two(self.scale):
            raise ConfigurationError("scale must be a power of two")

    def scaled(self, scale, **overrides):
        """Return a copy of this config shrunk by a power-of-two ``scale``."""
        if not is_power_of_two(scale):
            raise ConfigurationError("scale must be a power of two")

        def shrink_cache(size, floor):
            """Divide a cache size by the scale, respecting its floor."""
            # Private caches keep a minimum size: a sub-kilobyte L1 would
            # lose the hot-set filtering that every real hierarchy has,
            # distorting miss rates far more than the capacity ratios the
            # scaling is meant to preserve.
            return max(floor, size // scale)

        def shrink_table(entries):
            """Divide a table's entry count by the scale (min four sets)."""
            # Keep at least four sets: a one-set table's conflict behaviour
            # is pathological in a way the full-size table's is not.
            return max(4 * self.table_assoc, entries // scale)

        fields = dict(
            l1_size=shrink_cache(self.l1_size, 4 * KB),
            l2_size=shrink_cache(self.l2_size, 16 * KB),
            llc_size_per_core=shrink_cache(self.llc_size_per_core, 32 * KB),
            epoch_instructions=max(1000, self.epoch_instructions // scale),
            journal_table_entries=shrink_table(self.journal_table_entries),
            shadow_table_entries=shrink_table(self.shadow_table_entries),
            thynvm_block_entries=shrink_table(self.thynvm_block_entries),
            thynvm_page_entries=shrink_table(self.thynvm_page_entries),
            scale=self.scale * scale,
        )
        fields.update(overrides)
        return dataclasses.replace(self, **fields)

    def scale_profile(self, profile):
        """Shrink a workload profile consistently with this config."""
        if self.scale == 1:
            return profile
        return profile.scaled(self.scale)
